"""Setuptools shim.

The project is configured through ``pyproject.toml``; this file exists so
that fully offline environments (no access to PyPI for build isolation, no
``wheel`` package) can still do an editable install with::

    pip install -e . --no-build-isolation --no-use-pep517
"""

from setuptools import setup

setup()
