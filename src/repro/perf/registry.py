"""The benchmark registry: one ``Benchmark`` protocol for every experiment.

A benchmark is three phases plus declarations:

* ``setup(scale)`` — build workloads, temp dirs, warm pools; returns the
  state object the other phases receive;
* ``measure(state)`` — the timed body; returns ``(values, extra)`` where
  *values* maps declared metric names to numbers (plain floats,
  ``(value, mad)`` pairs from a timing loop, or ready :class:`MetricValue`
  objects) and *extra* is free-form detail for the record;
* ``teardown(state)`` — optional cleanup, always run.

:func:`run_registered` drives the phases, wraps each in a ``repro.obs`` span
(so ``repro bench run --trace`` attributes wall time per phase for free),
stamps the environment fingerprint, checks the declared absolute gates and
returns the finished ``repro-bench-1`` record.

Benchmarks self-register at import of :mod:`repro.perf.suites`; everything
else (CLI, compare, legacy shim) looks them up here by name.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..obs import runtime as obs
from .env import environment_fingerprint
from .schema import BenchRecord, MetricSpec, MetricValue, check_gates

#: Suite every registered benchmark belongs to implicitly.
SUITE_ALL = "all"

#: The CI suite: what `repro bench run --suite ci` executes.
SUITE_CI = "ci"

MeasureOutput = Tuple[Dict[str, object], Dict[str, object]]


@dataclass(frozen=True)
class Benchmark:
    """One registered benchmark (see the module docstring for the phases)."""

    name: str
    title: str
    suites: Tuple[str, ...]
    metrics: Tuple[MetricSpec, ...]
    setup: Callable[[str], object]
    measure: Callable[[object], MeasureOutput]
    teardown: Optional[Callable[[object], None]] = None
    description: str = ""

    def spec(self, metric_name: str) -> Optional[MetricSpec]:
        for spec in self.metrics:
            if spec.name == metric_name:
                return spec
        return None


@dataclass
class RunOutcome:
    """Result of one :func:`run_registered` invocation."""

    record: BenchRecord
    problems: List[str] = field(default_factory=list)
    seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.problems

    def summary(self) -> str:
        """Human-readable run summary (the benchmark scripts print this)."""
        status = "ok" if self.ok else "FAIL"
        lines = [
            f"{self.record.benchmark} (scale={self.record.scale}): "
            f"{status} in {self.seconds:.1f}s"
        ]
        for name, value in sorted(self.record.metrics.items()):
            unit = f" {value.unit}" if value.unit else ""
            mad = f" (±{value.mad:g})" if value.mad is not None else ""
            lines.append(f"  {name:36s} {value.value:g}{unit}{mad}")
        lines.extend(f"  problem: {problem}" for problem in self.problems)
        return "\n".join(lines)


_REGISTRY: Dict[str, Benchmark] = {}
_BUILTIN_LOADED = False


def register(benchmark: Benchmark, replace: bool = False) -> Benchmark:
    """Add *benchmark* to the registry (rejects duplicate names)."""
    if not replace and benchmark.name in _REGISTRY:
        raise ValueError(f"benchmark {benchmark.name!r} is already registered")
    _REGISTRY[benchmark.name] = benchmark
    return benchmark


def unregister(name: str) -> None:
    """Remove a registration (test helper)."""
    _REGISTRY.pop(name, None)


def _load_builtin() -> None:
    global _BUILTIN_LOADED
    if not _BUILTIN_LOADED:
        _BUILTIN_LOADED = True
        # Import for the registration side effect; the suites pull in the
        # engine/frontend stacks, so this stays off the plain-CLI import path.
        from . import suites  # noqa: F401


def get_benchmark(name: str) -> Benchmark:
    _load_builtin()
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "(none)"
        raise KeyError(f"no benchmark {name!r} registered (known: {known})")


def benchmark_names(suite: Optional[str] = None) -> List[str]:
    """Registered names, optionally restricted to one suite."""
    _load_builtin()
    if suite is None or suite == SUITE_ALL:
        return sorted(_REGISTRY)
    return sorted(
        name for name, bench in _REGISTRY.items() if suite in bench.suites
    )


def suite_names() -> List[str]:
    _load_builtin()
    names = {SUITE_ALL}
    for bench in _REGISTRY.values():
        names.update(bench.suites)
    return sorted(names)


def _coerce_metric(
    bench: Benchmark, name: str, raw: object
) -> MetricValue:
    """Lift a measured value onto :class:`MetricValue` using its declaration."""
    spec = bench.spec(name)
    unit = spec.unit if spec is not None else ""
    better = spec.better if spec is not None else "none"
    if isinstance(raw, MetricValue):
        return raw
    if isinstance(raw, tuple):
        value, mad = raw
        return MetricValue(float(value), unit, better, mad=float(mad))
    if isinstance(raw, (int, float)) and not isinstance(raw, bool):
        return MetricValue(float(raw), unit, better)
    raise TypeError(
        f"benchmark {bench.name!r} produced a non-numeric value for metric "
        f"{name!r}: {raw!r}"
    )


def run_registered(name: str, scale: str = "small") -> RunOutcome:
    """Run one registered benchmark end to end and gate-check the record."""
    bench = get_benchmark(name)
    start = time.perf_counter()
    with obs.tracer().span("bench.run", cat="bench", benchmark=name, scale=scale):
        with obs.tracer().span("bench.setup", cat="bench", benchmark=name):
            state = bench.setup(scale)
        try:
            with obs.tracer().span("bench.measure", cat="bench", benchmark=name):
                values, extra = bench.measure(state)
        finally:
            if bench.teardown is not None:
                with obs.tracer().span("bench.teardown", cat="bench", benchmark=name):
                    bench.teardown(state)
    seconds = time.perf_counter() - start

    declared = {spec.name for spec in bench.metrics}
    undeclared = sorted(set(values) - declared)
    metrics = {
        metric_name: _coerce_metric(bench, metric_name, raw)
        for metric_name, raw in values.items()
    }
    record = BenchRecord(
        benchmark=bench.name,
        scale=scale,
        env=environment_fingerprint(scale),
        metrics=metrics,
        extra=dict(extra),
        created_unix=time.time(),
    )
    problems = check_gates(record, bench.metrics)
    if undeclared:
        problems.append(
            f"benchmark {bench.name!r} emitted undeclared metric(s): "
            + ", ".join(undeclared)
        )
    obs.metrics().inc(
        "bench.runs_total", benchmark=name, ok=str(not problems).lower()
    )
    return RunOutcome(record=record, problems=problems, seconds=seconds)
