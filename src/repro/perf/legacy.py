"""Legacy-record shim: lift pre-schema ``BENCH_*.json`` files onto ``repro-bench-1``.

Six committed records predate the unified schema (BENCH_batch_runner,
BENCH_core_baseline, BENCH_frontend, BENCH_memo, BENCH_obs,
BENCH_streaming; BENCH_core was re-baselined onto the native schema), each
with its own ad-hoc layout.  This shim reads them so

* ``repro bench compare --against-committed`` can gate fresh runs against
  them without waiting for a re-baselining commit, and
* the history ledger starts populated with the perf trajectory the previous
  eight PRs actually recorded, instead of empty.

The lift is declaration-driven: a legacy top-level numeric field whose name
matches a registered :class:`~repro.perf.schema.MetricSpec` of the same
benchmark becomes that metric; the only special case is BENCH_core's nested
per-family speedup medians.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional, Union

from .registry import get_benchmark
from .schema import BENCH_SCHEMA, BenchRecord, MetricValue

#: Legacy file stem -> registered benchmark name (stems that differ).
LEGACY_ALIASES = {"core_baseline": "core"}

#: Per-family medians nested under BENCH_core's ``families`` object.
_CORE_FAMILIES = ("trees", "mibench", "corpus")


def _legacy_env(data: Dict[str, object]) -> Dict[str, object]:
    env: Dict[str, object] = {}
    for key in ("python", "platform", "cpu_count", "scale"):
        if key in data:
            env[key] = data[key]
    return env


def legacy_to_record(name: str, data: Dict[str, object]) -> BenchRecord:
    """Lift one pre-schema record dict onto the unified schema."""
    benchmark = LEGACY_ALIASES.get(name, name)
    bench = get_benchmark(benchmark)
    metrics: Dict[str, MetricValue] = {}
    for spec in bench.metrics:
        raw = data.get(spec.name)
        if isinstance(raw, (int, float)) and not isinstance(raw, bool):
            metrics[spec.name] = MetricValue(float(raw), spec.unit, spec.better)
    if benchmark == "core":
        families = data.get("families")
        if isinstance(families, dict):
            for family in _CORE_FAMILIES:
                median = families.get(family, {}).get("median_speedup_vs_legacy")
                if isinstance(median, (int, float)):
                    spec = bench.spec(f"median_speedup_{family}")
                    if spec is not None:
                        metrics[spec.name] = MetricValue(
                            float(median), spec.unit, spec.better
                        )
    if not metrics:
        raise ValueError(
            f"legacy record for {name!r} contains no fields matching the "
            f"registered metrics of benchmark {benchmark!r}"
        )
    return BenchRecord(
        benchmark=benchmark,
        scale=str(data.get("scale", "small")),
        env=_legacy_env(data),
        metrics=metrics,
        extra={"legacy_source": f"BENCH_{name}.json"},
        legacy=True,
    )


def load_committed_record(
    name: str, records_dir: Union[str, Path]
) -> Optional[BenchRecord]:
    """Load ``BENCH_<name>.json`` — native schema or legacy, transparently."""
    path = Path(records_dir) / f"BENCH_{name}.json"
    if not path.exists():
        return None
    data = json.loads(path.read_text(encoding="utf-8"))
    if isinstance(data, dict) and data.get("schema") == BENCH_SCHEMA:
        return BenchRecord.from_dict(data)
    return legacy_to_record(name, data)


def load_record_file(path: Union[str, Path]) -> BenchRecord:
    """Load a record from an explicit path (native schema or legacy).

    Legacy files are identified by their ``BENCH_<name>.json`` stem or a
    top-level ``benchmark`` field.
    """
    path = Path(path)
    data = json.loads(path.read_text(encoding="utf-8"))
    if isinstance(data, dict) and data.get("schema") == BENCH_SCHEMA:
        return BenchRecord.from_dict(data)
    stem = path.stem
    name = stem[len("BENCH_"):] if stem.startswith("BENCH_") else stem
    raw_name = data.get("benchmark") if isinstance(data, dict) else None
    if name not in _known_legacy_names() and isinstance(raw_name, str):
        name = raw_name
    return legacy_to_record(name, data)


def _known_legacy_names() -> set:
    from .registry import benchmark_names

    return set(benchmark_names()) | set(LEGACY_ALIASES)


def ingest_legacy_directory(records_dir: Union[str, Path]) -> Dict[str, BenchRecord]:
    """Every ingestible legacy ``BENCH_*.json`` under *records_dir*.

    Returns ``{file stem: record}``; native-schema files and files with no
    matching registration are skipped (they need no shim).
    """
    ingested: Dict[str, BenchRecord] = {}
    for path in sorted(Path(records_dir).glob("BENCH_*.json")):
        name = path.stem[len("BENCH_"):]
        data = json.loads(path.read_text(encoding="utf-8"))
        if not isinstance(data, dict) or data.get("schema") == BENCH_SCHEMA:
            continue
        try:
            ingested[name] = legacy_to_record(name, data)
        except (KeyError, ValueError):
            continue
    return ingested
