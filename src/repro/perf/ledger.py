"""The regression ledger: ``BENCH_history.jsonl``, one record per line.

The committed ``BENCH_*.json`` files only ever show the *latest* number;
the trajectory across PRs — the thing a perf claim actually rests on — was
lost on every overwrite.  The ledger is append-only: every ``repro bench
run`` adds its records here, the legacy shim seeds it with the pre-schema
committed records, and ``repro bench history`` renders the trajectory.

Appends are deduplicated on a content key (benchmark + metric values +
environment digest): re-running an identical measurement on an identical
machine records nothing new, so seeding and CI re-runs are idempotent.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Iterable, List, Optional, Tuple, Union

from .env import fingerprint_digest
from .schema import BenchRecord

#: Default ledger location, relative to the records directory.
LEDGER_NAME = "BENCH_history.jsonl"


def record_key(record: BenchRecord) -> str:
    """Content key used for ledger dedup (ignores the run timestamp)."""
    payload = {
        "benchmark": record.benchmark,
        "scale": record.scale,
        "env": fingerprint_digest(record.env),
        "metrics": {
            name: value.value for name, value in sorted(record.metrics.items())
        },
    }
    text = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


def load_history(
    path: Union[str, Path], strict: bool = False
) -> Tuple[List[BenchRecord], List[str]]:
    """Parse the ledger; returns ``(records, problems)``.

    Malformed lines are reported, not fatal (``strict=True`` raises instead):
    an append-only file shared across PRs must survive one bad writer.
    """
    records: List[BenchRecord] = []
    problems: List[str] = []
    ledger = Path(path)
    if not ledger.exists():
        return records, problems
    for lineno, line in enumerate(
        ledger.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if not line.strip():
            continue
        try:
            records.append(BenchRecord.from_dict(json.loads(line)))
        except ValueError as exc:
            message = f"{ledger}:{lineno}: {exc}"
            if strict:
                raise ValueError(message)
            problems.append(message)
    return records, problems


def append_records(
    path: Union[str, Path], records: Iterable[BenchRecord]
) -> Tuple[int, int]:
    """Append *records*, skipping content-identical entries.

    Returns ``(appended, deduplicated)``.
    """
    ledger = Path(path)
    existing, _ = load_history(ledger)
    seen = {record_key(record) for record in existing}
    appended = deduplicated = 0
    lines: List[str] = []
    for record in records:
        key = record_key(record)
        if key in seen:
            deduplicated += 1
            continue
        seen.add(key)
        lines.append(json.dumps(record.to_dict(), sort_keys=True))
        appended += 1
    if lines:
        ledger.parent.mkdir(parents=True, exist_ok=True)
        with ledger.open("a", encoding="utf-8") as handle:
            for line in lines:
                handle.write(line + "\n")
    return appended, deduplicated


def latest_by_benchmark(
    records: List[BenchRecord], benchmark: Optional[str] = None
) -> List[BenchRecord]:
    """The newest record per benchmark (ledger order breaks timestamp ties)."""
    newest: dict = {}
    for record in records:
        if benchmark is not None and record.benchmark != benchmark:
            continue
        current = newest.get(record.benchmark)
        # Later ledger lines win at equal timestamps (legacy records carry 0).
        if current is None or record.created_unix >= current.created_unix:
            newest[record.benchmark] = record
    return [newest[name] for name in sorted(newest)]


def history_table(
    records: List[BenchRecord],
    benchmark: Optional[str] = None,
    limit: Optional[int] = None,
) -> str:
    """Render the trajectory: one line per run, key metrics inline."""
    rows = [r for r in records if benchmark is None or r.benchmark == benchmark]
    if limit is not None:
        rows = rows[-limit:]
    if not rows:
        return "(no history)"
    lines = []
    for record in rows:
        gated = {
            name: value
            for name, value in record.metrics.items()
            if value.better != "none"
        } or record.metrics
        shown = ", ".join(
            f"{name}={value.value:g}{('' if not value.unit else ' ' + value.unit)}"
            for name, value in sorted(gated.items())[:4]
        )
        origin = "legacy" if record.legacy else (record.env.get("git_sha") or "?")
        lines.append(
            f"{record.benchmark:<24s} scale={record.scale:<5s} "
            f"[{origin}] {shown}"
        )
    return "\n".join(lines)
