"""Built-in benchmark registrations.

Importing this package registers every repo benchmark with
:mod:`repro.perf.registry`; each module groups one layer of the system:

* :mod:`.engine` — the engine-stack gates (core hot path, batch dispatch,
  streaming scheduler, memo store, observability overhead);
* :mod:`.frontend` — the compiler frontend;
* :mod:`.insearch` — the in-search memoization A/B gates (repetition-corpus
  speedup, non-repetitive overhead ceiling, bit-identity);
* :mod:`.paper` — the paper-reproduction experiments (dominator kernel,
  Figure 4/5, pruning ablation, complexity scaling, ISE speedups);
* :mod:`.selfcheck` — a millisecond-scale harness self-check (suite
  ``dev``), used by the tests and as the CONTRIBUTING example.
"""

from . import engine, frontend, insearch, paper, selfcheck  # noqa: F401
