"""In-search memoization benchmark: A/B gates for :mod:`repro.memo.insearch`.

Two corpora, two gates:

* a **repetition-heavy** corpus (:func:`repro.workloads.repetition_suite` —
  tiled 4–8-operation idioms, several renamed copies per idiom) where the
  memo must deliver a real speedup (``gate_min`` on ``repetition_speedup``);
* a **non-repetitive control** corpus (independent random blocks, every
  shape distinct) where the memo must be close to free (``gate_max`` on
  ``control_overhead``).

Both measurements interleave memo-on and memo-off rounds
(:func:`~repro.perf.measure.interleaved_timings`) so machine drift biases
neither variant, and both assert bit-identical cut sets between the on and
off runs — a memo that changes the answer must fail loudly, not report a
speedup.
"""

from __future__ import annotations

import time
from typing import Dict, List, Tuple

from ...core import Constraints
from ...engine import BatchRunner
from ...memo.insearch import insearch_disabled
from ...workloads import generate_suite, repetition_suite
from ..measure import interleaved_timings, ratio_of
from ..registry import Benchmark, MeasureOutput, register
from ..schema import MetricSpec

#: The paper's experimental constraints, as everywhere else in the suite.
CONSTRAINTS = Constraints(max_inputs=4, max_outputs=2)


def _cut_keys(report) -> List[Tuple]:
    """Bit-level identity: per block, the cut list in discovery order."""
    return [
        (
            item.graph_name,
            [
                (cut.sorted_nodes(), tuple(sorted(cut.inputs)), tuple(sorted(cut.outputs)))
                for cut in item.result.cuts
            ],
        )
        for item in report.items
    ]


def _insearch_setup(scale: str) -> object:
    if scale == "small":
        repetition = repetition_suite(copies_per_idiom=3, repetitions=8)
        control = generate_suite(sizes=(12, 16, 20, 24), blocks_per_size=3, base_seed=7)
        repeats = 5
    else:
        repetition = repetition_suite(copies_per_idiom=4, repetitions=10)
        control = generate_suite(sizes=(12, 16, 20, 24, 28), blocks_per_size=4, base_seed=7)
        repeats = 7
    return {"repetition": repetition, "control": control, "repeats": repeats}


def _run(blocks):
    """One full batch enumeration with a fresh runner (fresh memo)."""
    return BatchRunner(constraints=CONSTRAINTS, jobs=1).run(blocks)


def _run_disabled(blocks):
    with insearch_disabled():
        return _run(blocks)


def _check_and_time(blocks, repeats):
    """Correctness assertions, then interleaved on/off CPU timings.

    Memo-on and memo-off must agree bit for bit, the off run must report
    zero memo traffic, the on run nonzero traffic.  Timing uses CPU time,
    not wall time: both variants are pure in-process compute (jobs=1), and
    on shared runners the wall clock drifts by more per round than the 5%
    overhead ceiling this benchmark gates.  Under ``process_time`` noise is
    strictly additive (a sample cannot come in below the variant's true
    cost — neighbour cache contention only adds CPU seconds), so the ratio
    of per-variant minima is the estimator that survives a busy co-tenant;
    the interleaving still keeps slow drift from biasing one variant's
    minimum.
    """
    on_report = _run(blocks)
    off_report = _run_disabled(blocks)
    assert all(item.ok for item in on_report.items)
    assert _cut_keys(on_report) == _cut_keys(off_report)
    on_stats = on_report.total_stats()
    off_stats = off_report.total_stats()
    assert on_stats.insearch_hits + on_stats.insearch_misses > 0
    assert off_stats.insearch_hits == off_stats.insearch_misses == 0
    timings = interleaved_timings(
        {"on": lambda: _run(blocks), "off": lambda: _run_disabled(blocks)},
        repeats=repeats,
        warmup=1,
        clock=time.process_time,
        # Collect outside each window but do NOT quiesce: memo-on allocates
        # more (the tables), and with the GC disabled that variant pays
        # disproportionate allocator costs a running GC amortizes away.
        gc_collect=True,
    )
    return (on_stats.insearch_hits, on_stats.insearch_misses), timings


def _insearch_measure(state: object) -> MeasureOutput:
    assert isinstance(state, dict)
    repeats = state["repeats"]

    # The control corpus is measured FIRST, on a clean heap: the
    # repetition phase churns tens of thousands of memo-table entries
    # through the allocator, and running the control rounds in that
    # fragmented heap inflates the measured on/off ratio by several
    # percent — contamination of the measurement, not memo cost.
    ctl_stats, ctl_timings = _check_and_time(state["control"], repeats)
    ctl_ratio, overhead_mad = ratio_of(ctl_timings["on"], ctl_timings["off"])
    overhead = ctl_ratio - 1.0

    rep_stats, rep_timings = _check_and_time(state["repetition"], repeats)
    speedup, speedup_mad = ratio_of(rep_timings["off"], rep_timings["on"])
    stats_on = {"repetition": rep_stats, "control": ctl_stats}

    rep_hits, rep_misses = stats_on["repetition"]
    values: Dict[str, object] = {
        "repetition_speedup": round(speedup, 3),
        "control_overhead": round(overhead, 4),
        "repetition_hit_rate": round(rep_hits / max(rep_hits + rep_misses, 1), 4),
        "repetition_on_seconds": round(rep_timings["on"].best, 4),
        "repetition_off_seconds": round(rep_timings["off"].best, 4),
    }
    extra = {
        "repetition_blocks": len(state["repetition"]),
        "control_blocks": len(state["control"]),
        "repetition_hits": rep_hits,
        "repetition_misses": rep_misses,
        "control_hits": stats_on["control"][0],
        "control_misses": stats_on["control"][1],
        "speedup_mad": round(speedup_mad, 4),
        "overhead_mad": round(overhead_mad, 4),
        "bit_identical": True,
    }
    return values, extra


register(
    Benchmark(
        name="insearch",
        title="In-search memoization: repetition speedup vs control overhead",
        suites=("ci", "engine"),
        metrics=(
            MetricSpec(
                "repetition_speedup",
                "x",
                better="higher",
                gate_min=1.3,
                description="memo-off vs memo-on CPU time on the tiled-idiom "
                "corpus (the in-search memo acceptance bar)",
            ),
            MetricSpec(
                "control_overhead",
                "ratio",
                better="lower",
                gate_max=0.05,
                description="median paired on/off overhead on distinct-shape "
                "random blocks — the memo must be near-free when nothing repeats",
            ),
            MetricSpec(
                "repetition_hit_rate",
                "ratio",
                better="higher",
                description="view-level hit rate on the repetition corpus",
            ),
            MetricSpec("repetition_on_seconds", "s", better="lower"),
            MetricSpec("repetition_off_seconds", "s", better="lower"),
        ),
        setup=_insearch_setup,
        measure=_insearch_measure,
        description="Interleaved memo-on/memo-off batch runs over a "
        "repetition-heavy corpus and a non-repetitive control, bit-identity "
        "asserted on both.",
    )
)
