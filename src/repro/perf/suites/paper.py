"""Paper-reproduction benchmarks: the experiments behind the paper's claims.

Ports of the measurement bodies of the six paper-experiment scripts
(bench_dominators, bench_fig4_tree_worst_case, bench_fig5_runtime_comparison,
bench_ise_speedup, bench_pruning_ablation, bench_scaling).  These had no
committed records before the unified harness — their numbers evaporated with
every CI log.  Registration gives each one a ``BENCH_<name>.json`` baseline
and a ledger trajectory.

Where a gate exists it rides on **machine-independent work counters**
(dominator computations, candidate checks, cut counts, growth exponents) or
on speedup ratios — never on absolute wall-clock, which varies by runner.
"""

from __future__ import annotations

import math
import statistics
import time
from typing import Dict, List

from ...analysis import compare_on_suite
from ...baselines import enumerate_cuts_exhaustive
from ...core import FULL_PRUNING, NO_PRUNING, Constraints, PruningConfig, enumerate_cuts
from ...dfg import augment
from ...dominators import immediate_dominators, immediate_dominators_iterative
from ...ise import BlockProfile, SelectionConfig, identify_instruction_set_extension
from ...workloads import (
    SuiteConfig,
    SyntheticBlockSpec,
    build_kernel,
    build_suite,
    generate_basic_block,
    kernel_names,
    size_cluster,
    tree_dfg,
)
from ..measure import interleaved_timings
from ..registry import Benchmark, MeasureOutput, register
from ..schema import MetricSpec

#: The microarchitectural constraint used throughout the paper's evaluation.
PAPER_CONSTRAINTS = Constraints(max_inputs=4, max_outputs=2)


# --------------------------------------------------------------------------- #
# dominators — the Lengauer–Tarjan kernel (TAB-DOM, Section 5.4)
# --------------------------------------------------------------------------- #
_DOM_KERNEL_SIZE = 400


def _dominators_setup(scale: str) -> object:
    graph = generate_basic_block(
        SyntheticBlockSpec(
            num_operations=_DOM_KERNEL_SIZE, num_external_inputs=8, seed=3
        )
    )
    augmented = augment(graph)
    successors = [
        list(augmented.graph.successors(v)) for v in augmented.graph.node_ids()
    ]
    fraction_graph = generate_basic_block(
        SyntheticBlockSpec(num_operations=20, num_external_inputs=4, seed=9)
    )
    return {
        "augmented": augmented,
        "successors": successors,
        "fraction_graph": fraction_graph,
    }


def _dominators_measure(state: object) -> MeasureOutput:
    assert isinstance(state, dict)
    augmented, successors = state["augmented"], state["successors"]
    num_nodes, source = augmented.graph.num_nodes, augmented.source

    # --- single-computation cost, LT vs the iterative data-flow variant ---- #
    idom_lt = immediate_dominators(num_nodes, successors, source)
    idom_it = immediate_dominators_iterative(num_nodes, successors, source)
    assert idom_lt[source] == source
    assert idom_lt == idom_it
    timings = interleaved_timings(
        {
            "lt": lambda: immediate_dominators(num_nodes, successors, source),
            "iterative": lambda: immediate_dominators_iterative(
                num_nodes, successors, source
            ),
        },
        repeats=3,
    )

    # --- share of the full enumeration spent in dominator computations ----- #
    graph = state["fraction_graph"]
    result = enumerate_cuts(graph, PAPER_CONSTRAINTS)
    frac_augmented = augment(graph)
    frac_successors = [
        list(frac_augmented.graph.successors(v))
        for v in frac_augmented.graph.node_ids()
    ]
    start = time.perf_counter()
    repetitions = max(1, result.stats.lt_calls)
    for _ in range(repetitions):
        immediate_dominators(
            frac_augmented.graph.num_nodes, frac_successors, frac_augmented.source
        )
    lt_time = time.perf_counter() - start
    fraction = lt_time / max(result.stats.elapsed_seconds, 1e-9)
    assert fraction > 0.3

    values: Dict[str, object] = {
        "lt_fraction": round(fraction, 4),
        "lt_single_seconds": (
            round(timings["lt"].best, 6),
            round(timings["lt"].mad, 6),
        ),
        "iterative_single_seconds": (
            round(timings["iterative"].best, 6),
            round(timings["iterative"].mad, 6),
        ),
    }
    extra = {
        "kernel_graph_nodes": num_nodes,
        "fraction_graph_lt_calls": result.stats.lt_calls,
        "fraction_graph_seconds": round(result.stats.elapsed_seconds, 4),
        "paper_reference": "Section 5.4: >= 70% of time in LT (C implementation)",
    }
    return values, extra


register(
    Benchmark(
        name="dominators",
        title="Lengauer-Tarjan kernel cost and enumeration share",
        suites=("ci", "paper"),
        metrics=(
            MetricSpec(
                "lt_fraction",
                "ratio",
                better="higher",
                gate_min=0.3,
                description="share of enumeration wall time replayable as "
                "bare LT calls; the paper reports >= 70% in C, we gate a "
                "generous Python floor",
            ),
            MetricSpec("lt_single_seconds", "s", better="lower"),
            MetricSpec("iterative_single_seconds", "s", better="lower"),
        ),
        setup=_dominators_setup,
        measure=_dominators_measure,
        description="One 400-node dominator computation (LT vs the iterative "
        "data-flow algorithm, interleaved) plus the LT share of a full "
        "enumeration.",
    )
)


# --------------------------------------------------------------------------- #
# fig4_tree_worst_case — trees, the exhaustive search's worst case (Figure 4)
# --------------------------------------------------------------------------- #
def _fig4_setup(scale: str) -> object:
    return (2, 3, 4, 5) if scale == "full" else (2, 3, 4)


def _fig4_measure(state: object) -> MeasureOutput:
    depths = state
    assert isinstance(depths, tuple)
    rows: List[Dict[str, object]] = []
    for depth in depths:
        graph = tree_dfg(depth)
        poly = enumerate_cuts(graph, PAPER_CONSTRAINTS)
        exhaustive = enumerate_cuts_exhaustive(graph, PAPER_CONSTRAINTS)
        # Both algorithms must agree on the tree (completeness sanity check).
        assert poly.node_sets() == exhaustive.node_sets()
        rows.append(
            {
                "depth": depth,
                "nodes": graph.num_nodes,
                "cuts": len(exhaustive),
                "poly_work": poly.stats.lt_calls + poly.stats.candidates_checked,
                "poly_seconds": round(poly.stats.elapsed_seconds, 4),
                "exhaustive_search_nodes": exhaustive.stats.pick_output_calls,
                "exhaustive_seconds": round(exhaustive.stats.elapsed_seconds, 4),
            }
        )
    # Growth between the two deepest trees: exact counters, stable anywhere.
    prev, last = rows[-2], rows[-1]
    poly_growth = last["poly_work"] / max(prev["poly_work"], 1)
    exhaustive_growth = last["exhaustive_search_nodes"] / max(
        prev["exhaustive_search_nodes"], 1
    )
    values: Dict[str, object] = {
        "poly_work_growth": round(poly_growth, 3),
        "exhaustive_work_growth": round(exhaustive_growth, 3),
        "growth_advantage": round(exhaustive_growth / poly_growth, 3),
        "poly_seconds_total": round(sum(r["poly_seconds"] for r in rows), 4),
        "exhaustive_seconds_total": round(
            sum(r["exhaustive_seconds"] for r in rows), 4
        ),
    }
    extra = {"depths": list(depths), "rows": rows}
    return values, extra


register(
    Benchmark(
        name="fig4_tree_worst_case",
        title="Figure 4: growth on tree-shaped worst-case DFGs",
        suites=("ci", "paper"),
        metrics=(
            MetricSpec(
                "growth_advantage",
                "x",
                better="higher",
                description="exhaustive-work growth over polynomial-work "
                "growth between the two deepest trees, on exact counters; "
                "the figure's divergence only sets in at full-scale depths, "
                "so it is tracked, not gated",
            ),
            MetricSpec("poly_work_growth", "x", better="lower"),
            MetricSpec("exhaustive_work_growth", "x", better="none"),
            MetricSpec("poly_seconds_total", "s", better="lower"),
            MetricSpec("exhaustive_seconds_total", "s", better="none"),
        ),
        setup=_fig4_setup,
        measure=_fig4_measure,
        description="Work-counter growth of the polynomial enumeration vs "
        "the exhaustive search across tree depths, with completeness "
        "asserted per tree.",
    )
)


# --------------------------------------------------------------------------- #
# fig5_runtime_comparison — polynomial vs pruned exhaustive scatter (Figure 5)
# --------------------------------------------------------------------------- #
def _fig5_setup(scale: str) -> object:
    if scale == "full":
        config = SuiteConfig(
            num_blocks=40,
            min_operations=10,
            max_operations=60,
            include_kernels=True,
            tree_depths=(4, 5),
        )
    else:
        config = SuiteConfig(
            num_blocks=10,
            min_operations=8,
            max_operations=24,
            include_kernels=False,
            include_trees=True,
            tree_depths=(3,),
        )
    return build_suite(config)


def _fig5_measure(state: object) -> MeasureOutput:
    suite = state
    assert isinstance(suite, list)
    report = compare_on_suite(suite, PAPER_CONSTRAINTS, cluster_of=size_cluster)
    ratios: List[float] = []
    poly_total = exhaustive_total = 0.0
    wins = 0
    paired = report.paired("poly-enum-incremental", "exhaustive")
    for row in paired:
        # The polynomial algorithm never reports cuts the baseline misses.
        assert row["poly-enum-incremental_cuts"] <= row["exhaustive_cuts"]
        poly_s = row["poly-enum-incremental_seconds"]
        exhaustive_s = row["exhaustive_seconds"]
        poly_total += poly_s
        exhaustive_total += exhaustive_s
        ratios.append(exhaustive_s / max(poly_s, 1e-9))
        if poly_s <= exhaustive_s:
            wins += 1
    values: Dict[str, object] = {
        "median_runtime_ratio": round(statistics.median(ratios), 3),
        "poly_wins_fraction": round(wins / len(paired), 3),
        "poly_seconds_total": round(poly_total, 4),
        "exhaustive_seconds_total": round(exhaustive_total, 4),
    }
    extra = {
        "blocks": len(paired),
        "clusters": sorted({size_cluster(graph) for graph in suite}),
        "paper_reference": "Figure 5: the polynomial algorithm is 'in "
        "general better' and never explodes",
    }
    return values, extra


register(
    Benchmark(
        name="fig5_runtime_comparison",
        title="Figure 5: polynomial vs pruned exhaustive run time",
        suites=("ci", "paper"),
        metrics=(
            MetricSpec(
                "median_runtime_ratio",
                "x",
                better="higher",
                description="median exhaustive/polynomial run-time ratio over "
                "the suite (the scatter's central tendency)",
            ),
            MetricSpec("poly_wins_fraction", "ratio", better="higher"),
            MetricSpec("poly_seconds_total", "s", better="lower"),
            MetricSpec("exhaustive_seconds_total", "s", better="none"),
        ),
        setup=_fig5_setup,
        measure=_fig5_measure,
        description="One pass over the MiBench-like suite with both "
        "algorithms, completeness checked pairwise, scatter summarised as "
        "ratios.",
    )
)


# --------------------------------------------------------------------------- #
# ise_speedup — custom-instruction speedups across I/O budgets (TAB-ISE)
# --------------------------------------------------------------------------- #
_ISE_IO_BUDGETS = ((2, 1), (4, 2), (6, 3))


def _ise_setup(scale: str) -> object:
    return tuple(kernel_names())


def _ise_measure(state: object) -> MeasureOutput:
    kernels = state
    assert isinstance(kernels, tuple)
    rows: List[Dict[str, object]] = []
    best: Dict[str, float] = {}
    for name in kernels:
        row: Dict[str, object] = {"kernel": name}
        for nin, nout in _ISE_IO_BUDGETS:
            constraints = Constraints(max_inputs=nin, max_outputs=nout)
            result = identify_instruction_set_extension(
                [BlockProfile(build_kernel(name), execution_count=1000)],
                constraints,
                selection=SelectionConfig(max_instructions=2),
            )
            row[f"{nin}in/{nout}out"] = round(result.application_speedup, 2)
            best[name] = max(best.get(name, 1.0), result.application_speedup)
        rows.append(row)
    speedups = list(best.values())
    # Every kernel benefits at some budget, several benefit substantially.
    assert all(s >= 1.0 for s in speedups)
    values: Dict[str, object] = {
        "best_speedup": round(max(speedups), 3),
        "median_best_speedup": round(statistics.median(speedups), 3),
        "kernels_gaining": float(sum(1 for s in speedups if s >= 1.5)),
    }
    extra = {
        "kernels": list(kernels),
        "io_budgets": [list(budget) for budget in _ISE_IO_BUDGETS],
        "table": rows,
        "paper_reference": "conclusion: 'speedups up to 6x' on full "
        "applications",
    }
    return values, extra


register(
    Benchmark(
        name="ise_speedup",
        title="Per-kernel speedup from identified custom instructions",
        suites=("ci", "paper"),
        metrics=(
            MetricSpec(
                "best_speedup",
                "x",
                better="higher",
                gate_min=1.5,
                description="best estimated speedup over all kernels and I/O "
                "budgets; deterministic scoring, stable across machines",
            ),
            MetricSpec("median_best_speedup", "x", better="higher"),
            MetricSpec(
                "kernels_gaining",
                "count",
                better="higher",
                gate_min=3.0,
                description="kernels whose best-budget speedup reaches 1.5x",
            ),
        ),
        setup=_ise_setup,
        measure=_ise_measure,
        description="The full enumerate -> score -> select pipeline on every "
        "hand-written kernel under three register-file port budgets.",
    )
)


# --------------------------------------------------------------------------- #
# pruning_ablation — Section 5.3 pruning rules, each off in isolation
# --------------------------------------------------------------------------- #
_PRUNING_FLAGS = (
    "output_output",
    "prune_while_building",
    "output_input",
    "input_input",
    "connected_recovery",
)


def _pruning_setup(scale: str) -> object:
    if scale == "full":
        config = SuiteConfig(
            num_blocks=6,
            min_operations=20,
            max_operations=40,
            include_kernels=False,
            include_trees=True,
            tree_depths=(4,),
        )
    else:
        config = SuiteConfig(
            num_blocks=3,
            min_operations=10,
            max_operations=22,
            include_kernels=False,
            include_trees=True,
            tree_depths=(3,),
        )
    return build_suite(config)


def _pruning_total_work(workload, pruning: PruningConfig) -> Dict[str, object]:
    lt_calls = candidates = cuts = 0
    seconds = 0.0
    for graph in workload:
        result = enumerate_cuts(graph, PAPER_CONSTRAINTS, pruning=pruning)
        lt_calls += result.stats.lt_calls
        candidates += result.stats.candidates_checked
        cuts += len(result)
        seconds += result.stats.elapsed_seconds
    return {
        "lt_calls": lt_calls,
        "candidates": candidates,
        "cuts": cuts,
        "seconds": round(seconds, 4),
    }


def _pruning_measure(state: object) -> MeasureOutput:
    workload = state
    assert isinstance(workload, list)
    baseline = _pruning_total_work(workload, FULL_PRUNING)
    rows = [{"configuration": "all prunings", **baseline}]
    for flag in _PRUNING_FLAGS:
        rows.append(
            {
                "configuration": f"without {flag}",
                **_pruning_total_work(workload, FULL_PRUNING.disable(flag)),
            }
        )
    nothing = _pruning_total_work(workload, NO_PRUNING)
    rows.append({"configuration": "no pruning (plain Figure 3)", **nothing})
    # Pruning must never increase the amount of work.  (Cut counts are NOT
    # compared: connected_recovery legitimately changes the emitted set.)
    assert baseline["lt_calls"] <= nothing["lt_calls"]
    assert baseline["candidates"] <= nothing["candidates"]
    values: Dict[str, object] = {
        "lt_calls_saved_fraction": round(
            1.0 - baseline["lt_calls"] / max(nothing["lt_calls"], 1), 4
        ),
        "candidates_saved_fraction": round(
            1.0 - baseline["candidates"] / max(nothing["candidates"], 1), 4
        ),
        "no_pruning_slowdown": round(
            nothing["seconds"] / max(baseline["seconds"], 1e-9), 3
        ),
        "full_pruning_seconds": baseline["seconds"],
    }
    extra = {"blocks": len(workload), "table": rows}
    return values, extra


register(
    Benchmark(
        name="pruning_ablation",
        title="Section 5.3 pruning-rule ablation",
        suites=("ci", "paper"),
        metrics=(
            MetricSpec(
                "lt_calls_saved_fraction",
                "ratio",
                better="higher",
                gate_min=0.0,
                description="dominator computations removed by full pruning "
                "vs none; exact counters, may never go negative",
            ),
            MetricSpec(
                "candidates_saved_fraction", "ratio", better="higher", gate_min=0.0
            ),
            MetricSpec("no_pruning_slowdown", "x", better="higher"),
            MetricSpec("full_pruning_seconds", "s", better="lower"),
        ),
        setup=_pruning_setup,
        measure=_pruning_measure,
        description="Each pruning rule disabled in isolation (and all "
        "together) over the ablation workload; work saved recorded as exact "
        "counter fractions.",
    )
)


# --------------------------------------------------------------------------- #
# scaling — polynomial growth in block size and I/O budget (TAB-COMPLEXITY)
# --------------------------------------------------------------------------- #
_SCALING_IO_BUDGETS = ((2, 1), (3, 1), (3, 2), (4, 2))


def _scaling_graph(size: int, seed: int = 11):
    return generate_basic_block(
        SyntheticBlockSpec(
            num_operations=size,
            num_external_inputs=max(2, size // 6),
            memory_fraction=0.15,
            seed=seed,
            name=f"scaling_n{size}",
        )
    )


def _scaling_setup(scale: str) -> object:
    return (10, 20, 30, 45, 60) if scale == "full" else (8, 12, 16, 24)


def _scaling_measure(state: object) -> MeasureOutput:
    sizes = state
    assert isinstance(sizes, tuple)
    rows: List[Dict[str, object]] = []
    for size in sizes:
        result = enumerate_cuts(_scaling_graph(size), PAPER_CONSTRAINTS)
        rows.append(
            {
                "operations": size,
                "cuts": len(result),
                "lt_calls": result.stats.lt_calls,
                "seconds": round(result.stats.elapsed_seconds, 4),
            }
        )
    # Empirical growth exponent between the smallest and the largest block:
    # work ~ n^k  =>  k = log(ratio_work) / log(ratio_n).  Exact counters.
    first, last = rows[0], rows[-1]
    size_ratio = math.log(last["operations"] / first["operations"])
    exponent = (
        math.log(max(last["lt_calls"], 1) / max(first["lt_calls"], 1)) / size_ratio
    )
    cut_exponent = (
        math.log(max(last["cuts"], 1) / max(first["cuts"], 1)) / size_ratio
    )

    # Growth with the I/O budget at a fixed block size: monotone cut counts.
    io_rows: List[Dict[str, object]] = []
    for nin, nout in _SCALING_IO_BUDGETS:
        result = enumerate_cuts(
            _scaling_graph(14), Constraints(max_inputs=nin, max_outputs=nout)
        )
        io_rows.append(
            {
                "Nin": nin,
                "Nout": nout,
                "cuts": len(result),
                "lt_calls": result.stats.lt_calls,
            }
        )
    cut_counts = [row["cuts"] for row in io_rows]
    assert cut_counts == sorted(cut_counts), "a larger I/O budget can only add cuts"

    values: Dict[str, object] = {
        "empirical_exponent": round(exponent, 3),
        "cut_exponent": round(cut_exponent, 3),
        "largest_block_seconds": rows[-1]["seconds"],
    }
    extra = {
        "sizes": list(sizes),
        "size_rows": rows,
        "io_budget_rows": io_rows,
        "paper_reference": "Section 5: O(n^(Nin+Nout+1)) = n^7 at Nin=4/Nout=2",
    }
    return values, extra


register(
    Benchmark(
        name="scaling",
        title="Polynomial growth in block size and I/O budget",
        suites=("ci", "paper"),
        metrics=(
            MetricSpec(
                "empirical_exponent",
                "exp",
                better="lower",
                gate_max=7.0,
                description="fitted growth exponent of dominator computations "
                "with block size; must stay under the paper's n^7 bound",
            ),
            MetricSpec(
                "cut_exponent",
                "exp",
                better="lower",
                gate_max=6.0,
                description="fitted growth exponent of the cut count itself",
            ),
            MetricSpec("largest_block_seconds", "s", better="lower"),
        ),
        setup=_scaling_setup,
        measure=_scaling_measure,
        description="Enumeration work across block sizes (exponent fit on "
        "exact counters) and across I/O budgets (cut-count monotonicity "
        "asserted).",
    )
)
