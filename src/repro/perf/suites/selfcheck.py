"""A millisecond-scale harness self-check (suite ``dev``, not in CI's).

Exists so the CLI round-trip tests — and anyone following the CONTRIBUTING
add-a-benchmark recipe — have a benchmark that runs in milliseconds while
exercising every phase of the protocol: setup state, a min-of-N timing loop,
a declared gate, free-form extra detail.
"""

from __future__ import annotations

from typing import Dict

from ...core import Constraints, enumerate_cuts
from ...workloads import tree_dfg
from ..measure import time_callable
from ..registry import Benchmark, MeasureOutput, register
from ..schema import MetricSpec

_CONSTRAINTS = Constraints(max_inputs=4, max_outputs=2)


def _selfcheck_setup(scale: str) -> object:
    return tree_dfg(3)


def _selfcheck_measure(state: object) -> MeasureOutput:
    graph = state
    result = enumerate_cuts(graph, _CONSTRAINTS)
    assert len(result.cuts) > 0
    timing = time_callable(
        lambda: enumerate_cuts(graph, _CONSTRAINTS), repeats=3, warmup=1
    )
    values: Dict[str, object] = {
        "enumeration_seconds": (round(timing.best, 6), round(timing.mad, 6)),
        "cuts": float(len(result.cuts)),
    }
    extra = {"graph": graph.name, "nodes": graph.num_nodes}
    return values, extra


register(
    Benchmark(
        name="harness-selfcheck",
        title="Harness self-check on a depth-3 tree",
        suites=("dev",),
        metrics=(
            MetricSpec("enumeration_seconds", "s", better="lower"),
            MetricSpec(
                "cuts",
                "count",
                better="higher",
                gate_min=1.0,
                description="the depth-3 tree must keep yielding cuts",
            ),
        ),
        setup=_selfcheck_setup,
        measure=_selfcheck_measure,
        description="Min-of-3 enumeration of tree_dfg(3); milliseconds end "
        "to end, used by the tests and the CONTRIBUTING example.",
    )
)
