"""Engine-stack benchmarks: core hot path, batch dispatch, streaming, memo, obs.

These five carried hand-written CI gates before the harness existed
(``REQUIRED_SPEEDUP`` in bench_core, ``MAX_DISPATCH_OVERHEAD`` in
bench_batch_runner, ...).  The same thresholds now live on the registered
:class:`~repro.perf.schema.MetricSpec` declarations, so ``repro bench run``
enforces them and ``repro bench compare --against-committed`` reproduces the
old scripts' pass/fail verdicts from the committed records.

Correctness cross-checks (bit-identity vs the frozen legacy enumerator,
sequential-vs-pool parity, zero false timeouts) stay hard assertions inside
``measure`` — a benchmark that measures a wrong answer must fail loudly, not
emit a fast number.
"""

from __future__ import annotations

import gc
import os
import shutil
import statistics
import tempfile
import time
from typing import Dict, List, Tuple

from ...baselines.legacy_incremental import enumerate_cuts_legacy
from ...core import Constraints
from ...core.context import EnumerationContext
from ...core.enumeration import enumerate_cuts_basic
from ...core.incremental import enumerate_cuts
from ...engine import BatchRunner
from ...frontend import build_corpus_suite
from ...ise import BlockProfile, SelectionConfig, identify_instruction_set_extension
from ...memo import ResultStore, enumerate_deduplicated, permute_graph
from ...obs import runtime as obs
from ...obs import span_coverage, validate_trace_records
from ...workloads import SuiteConfig, build_suite, tree_dfg
from ...workloads.kernels import build_kernel
from ...workloads.synthetic import SyntheticBlockSpec, generate_basic_block
from ..measure import TimingResult, interleaved_timings, paired_overhead
from ..registry import Benchmark, MeasureOutput, register
from ..schema import MetricSpec

#: The paper's experimental constraints, shared by every engine benchmark.
CONSTRAINTS = Constraints(max_inputs=4, max_outputs=2)


def _cut_keys(result) -> List[Tuple]:
    """Bit-level identity key: vertex sets with their inputs and outputs."""
    return sorted(
        (cut.sorted_nodes(), tuple(sorted(cut.inputs)), tuple(sorted(cut.outputs)))
        for cut in result.cuts
    )


# --------------------------------------------------------------------------- #
# core — enumeration hot-path speedup vs the frozen pre-optimization snapshot
# --------------------------------------------------------------------------- #
#: Blocks smaller than this enter the bit-identity checks but not the
#: speedup medians (they measure call overhead, not the kernel).
MIN_GATE_NODES = 8

#: poly-enum-basic is the O(n^{2Nout+2}) reference; skipped above this size.
MAX_BASIC_NODES = 26


def _core_families(scale: str) -> Dict[str, List]:
    if scale == "small":
        tree_depths = (2, 3, 4)
        suite_config = SuiteConfig(
            num_blocks=6,
            min_operations=10,
            max_operations=24,
            include_kernels=True,
            include_trees=False,
        )
    else:
        tree_depths = (2, 3, 4, 5)
        suite_config = SuiteConfig(
            num_blocks=14,
            min_operations=12,
            max_operations=32,
            include_kernels=True,
            include_trees=False,
        )
    mibench = build_suite(suite_config)
    if scale == "small":
        # The replicated `_x3` kernels (70+ vertices) cost minutes on the
        # legacy baseline alone; the small scale (the CI configuration)
        # stays in the tens of seconds without them.
        mibench = [graph for graph in mibench if graph.num_nodes <= 48]
    return {
        "trees": [tree_dfg(depth) for depth in tree_depths],
        "mibench": mibench,
        "corpus": list(build_corpus_suite(profile=False)),
    }


#: Below this single-shot legacy wall time the (legacy, optimized) pair is
#: re-timed and the per-algorithm minimum taken: ms-scale runs — the trees
#: family, the smallest corpus blocks — are otherwise at the mercy of a
#: single scheduler hiccup, which shows up as a 30% family-median swing.
#: Kernel-scale graphs run for 100s of ms and self-average, so one shot
#: keeps the benchmark in the tens of seconds.
RETIME_UNDER_SECONDS = 0.3
RETIME_REPEATS = 2


def _timed_fresh_context(algorithm, graph) -> Tuple[float, object]:
    """Run *algorithm* against a fresh context; return (seconds, result)."""
    context = EnumerationContext.build(graph, CONSTRAINTS)
    start = time.perf_counter()
    result = algorithm(graph, CONSTRAINTS, context=context)
    return time.perf_counter() - start, result


def _core_measure(state: object) -> MeasureOutput:
    families = state
    assert isinstance(families, dict)
    family_rows: Dict[str, object] = {}
    values: Dict[str, object] = {}
    gate_speedups: List[float] = []
    for family_name, graphs in families.items():
        rows = []
        family_speedups = []
        for graph in graphs:
            legacy_seconds, legacy_result = _timed_fresh_context(
                enumerate_cuts_legacy, graph
            )
            new_seconds, new_result = _timed_fresh_context(enumerate_cuts, graph)
            if legacy_seconds < RETIME_UNDER_SECONDS:
                for _ in range(RETIME_REPEATS):
                    retimed_legacy, _ = _timed_fresh_context(
                        enumerate_cuts_legacy, graph
                    )
                    retimed_new, _ = _timed_fresh_context(enumerate_cuts, graph)
                    legacy_seconds = min(legacy_seconds, retimed_legacy)
                    new_seconds = min(new_seconds, retimed_new)
            assert _cut_keys(new_result) == _cut_keys(legacy_result), (
                f"optimized enumerator diverged from the pre-PR snapshot on "
                f"{graph.name!r}"
            )
            speedup = round(legacy_seconds / max(new_seconds, 1e-9), 3)
            row: Dict[str, object] = {
                "graph": graph.name,
                "num_nodes": graph.num_nodes,
                "optimized_seconds": round(new_seconds, 6),
                "legacy_seconds": round(legacy_seconds, 6),
                "speedup_vs_legacy": speedup,
                "lt_calls": new_result.stats.lt_calls,
                "cuts": len(new_result.cuts),
            }
            if graph.num_nodes <= MAX_BASIC_NODES:
                _, basic_result = _timed_fresh_context(enumerate_cuts_basic, graph)
                matches_basic = basic_result.node_sets() == new_result.node_sets()
                legacy_matched = basic_result.node_sets() == legacy_result.node_sets()
                # The optimisation may not change the basic-vs-incremental
                # relationship in either direction (the two polynomial
                # variants legitimately differ on borderline cuts).
                assert matches_basic == legacy_matched, graph.name
                row["matches_basic"] = matches_basic
            rows.append(row)
            if graph.num_nodes >= MIN_GATE_NODES:
                family_speedups.append(speedup)
                if family_name in ("corpus", "mibench"):
                    gate_speedups.append(speedup)
        family_rows[family_name] = rows
        if family_speedups:
            values[f"median_speedup_{family_name}"] = round(
                statistics.median(family_speedups), 3
            )
    values["median_speedup_corpus_mibench"] = round(
        statistics.median(gate_speedups), 3
    )
    extra = {
        "families": family_rows,
        "min_gate_nodes": MIN_GATE_NODES,
        "constraints": {"max_inputs": 4, "max_outputs": 2},
        "bit_identical": True,
    }
    return values, extra


register(
    Benchmark(
        name="core",
        title="Enumeration hot-path speedup vs the frozen legacy snapshot",
        suites=("ci", "engine"),
        metrics=(
            MetricSpec(
                "median_speedup_corpus_mibench",
                "x",
                better="higher",
                gate_min=3.0,
                rel_tolerance=0.2,
                description="median optimized/legacy speedup on kernel-scale "
                "corpus+mibench blocks (the PR 5 acceptance floor)",
            ),
            MetricSpec(
                "median_speedup_trees", "x", better="higher", rel_tolerance=0.2
            ),
            MetricSpec(
                "median_speedup_mibench", "x", better="higher", rel_tolerance=0.2
            ),
            MetricSpec(
                "median_speedup_corpus", "x", better="higher", rel_tolerance=0.2
            ),
        ),
        setup=_core_families,
        measure=_core_measure,
        description="Times poly-enum-incremental against the frozen pre-PR-5 "
        "snapshot on trees, mibench-like and frontend-corpus graphs, with "
        "bit-identity asserted on every graph.",
    )
)


# --------------------------------------------------------------------------- #
# batch_runner — chunked persistent-pool dispatch overhead + jobs=2 speedup
# --------------------------------------------------------------------------- #
def _batch_setup(scale: str) -> object:
    num_blocks = 10 if scale == "small" else 24
    max_operations = 26 if scale == "small" else 40
    suite = build_suite(
        SuiteConfig(
            num_blocks=num_blocks,
            min_operations=12,
            max_operations=max_operations,
            include_kernels=False,
            include_trees=False,
        )
    )
    assert len(suite) >= 8
    return {"suite": suite, "corpus": list(build_corpus_suite())}


def _batch_measure(state: object) -> MeasureOutput:
    assert isinstance(state, dict)
    suite, corpus = state["suite"], state["corpus"]

    # --- determinism: block-for-block, bit-for-bit ------------------------- #
    with BatchRunner(constraints=CONSTRAINTS, jobs=1) as runner:
        sequential = runner.run(suite)
    with BatchRunner(constraints=CONSTRAINTS, jobs=2) as runner:
        parallel = runner.run(suite)
    with BatchRunner(constraints=CONSTRAINTS, jobs=1, force_pool=True) as runner:
        forced = runner.run(suite)
    for seq_item, par_item, fp_item in zip(
        sequential.items, parallel.items, forced.items
    ):
        assert seq_item.ok and par_item.ok and fp_item.ok
        assert _cut_keys(seq_item.result) == _cut_keys(par_item.result)
        assert _cut_keys(seq_item.result) == _cut_keys(fp_item.result)

    # --- determinism through the full ISE pipeline ------------------------- #
    blocks = [BlockProfile(graph, execution_count=1000.0) for graph in suite]
    selection = SelectionConfig(max_instructions=2)
    pipe_seq = identify_instruction_set_extension(
        blocks, CONSTRAINTS, selection=selection, jobs=1
    )
    pipe_par = identify_instruction_set_extension(
        blocks, CONSTRAINTS, selection=selection, jobs=2
    )
    assert pipe_seq.application_speedup == pipe_par.application_speedup

    # --- dispatch overhead, interleaved sequential vs warmed forced pool --- #
    with BatchRunner(constraints=CONSTRAINTS, jobs=1) as seq_runner:
        with BatchRunner(
            constraints=CONSTRAINTS, jobs=1, force_pool=True
        ) as pool_runner:
            pool_runner.warm_pool()
            timings = interleaved_timings(
                {
                    "sequential": lambda: seq_runner.run(corpus),
                    "forced_pool": lambda: pool_runner.run(corpus),
                },
                repeats=3,
            )
            corpus_seq = seq_runner.run(corpus)
            corpus_pool = pool_runner.run(corpus)
    for seq_item, pool_item in zip(corpus_seq.items, corpus_pool.items):
        assert seq_item.ok and pool_item.ok
        assert _cut_keys(seq_item.result) == _cut_keys(pool_item.result)
    sequential_t = timings["sequential"]
    pool_t = timings["forced_pool"]
    dispatch_overhead, overhead_noise = paired_overhead(pool_t, sequential_t)

    # --- jobs=2 throughput on the frontend corpus -------------------------- #
    with BatchRunner(constraints=CONSTRAINTS, jobs=2) as runner:
        runner.warm_pool()
        par_timing = interleaved_timings(
            {"parallel": lambda: runner.run(corpus)}, repeats=3
        )["parallel"]
    speedup = sequential_t.best / max(par_timing.best, 1e-9)
    cpu_count = os.cpu_count() or 1
    if cpu_count >= 2:
        assert speedup > 1.5, (
            f"jobs=2 speedup {speedup:.2f}x on the frontend corpus is below "
            f"the 1.5x target on a {cpu_count}-CPU machine"
        )

    values: Dict[str, object] = {
        "dispatch_overhead": (round(dispatch_overhead, 4), round(overhead_noise, 4)),
        "parallel_speedup": round(speedup, 3),
        "sequential_seconds": (round(sequential_t.best, 4), round(sequential_t.mad, 4)),
        "forced_pool_seconds": (round(pool_t.best, 4), round(pool_t.mad, 4)),
        "parallel_seconds": (round(par_timing.best, 4), round(par_timing.mad, 4)),
    }
    extra = {
        "suite_blocks": len(suite),
        "corpus_blocks": len(corpus),
        "corpus_cuts": corpus_seq.total_cuts(),
        "speedup_gated": cpu_count >= 2,
        "bit_identical": True,
    }
    return values, extra


register(
    Benchmark(
        name="batch_runner",
        title="Persistent-pool dispatch overhead and jobs=2 speedup",
        suites=("ci", "engine"),
        metrics=(
            MetricSpec(
                "dispatch_overhead",
                "ratio",
                better="lower",
                gate_max=0.15,
                description="warmed forced-pool jobs=1 cost over sequential on "
                "the frontend corpus (the PR 6 gate)",
            ),
            MetricSpec("parallel_speedup", "x", better="higher"),
            MetricSpec("sequential_seconds", "s", better="lower"),
            MetricSpec("forced_pool_seconds", "s", better="lower"),
            MetricSpec("parallel_seconds", "s", better="lower"),
        ),
        setup=_batch_setup,
        measure=_batch_measure,
        description="Bit-identity across jobs/pool configurations, then the "
        "interleaved dispatch-overhead and jobs=2 throughput measurement.",
    )
)


# --------------------------------------------------------------------------- #
# streaming — bounded-window scheduler: throughput, latency, timeout accounting
# --------------------------------------------------------------------------- #
STREAMING_JOBS = 2


def _streaming_setup(scale: str) -> object:
    num_blocks = 12 if scale == "small" else 24
    operations = 14 if scale == "small" else 24
    return [
        generate_basic_block(
            SyntheticBlockSpec(num_operations=operations, seed=seed)
        )
        for seed in range(num_blocks)
    ]


def _streaming_measure(state: object) -> MeasureOutput:
    blocks = state
    assert isinstance(blocks, list)

    start = time.perf_counter()
    sequential = BatchRunner(constraints=CONSTRAINTS, jobs=1).run(blocks)
    sequential_seconds = time.perf_counter() - start
    assert all(item.ok for item in sequential.items)

    with BatchRunner(constraints=CONSTRAINTS, jobs=STREAMING_JOBS) as runner:
        runner.warm_pool()
        chunk_capacity = runner._chunk_capacity(len(blocks))
        start = time.perf_counter()
        first_result_seconds = None
        streamed = []
        for item in runner.iter_run(blocks):
            if first_result_seconds is None:
                first_result_seconds = time.perf_counter() - start
            streamed.append(item)
        streamed_seconds = time.perf_counter() - start
    streamed.sort(key=lambda item: item.index)
    assert all(item.ok for item in streamed)
    for seq_item, par_item in zip(sequential.items, streamed):
        assert _cut_keys(seq_item.result) == _cut_keys(par_item.result)

    # Timeout accounting at jobs < blocks: a correct scheduler charges queue
    # wait to nobody, so a budget far above the slowest block flags nothing.
    slowest = max(item.elapsed_seconds for item in sequential.items)
    budget = max(10.0 * slowest, 0.25)
    with BatchRunner(
        constraints=CONSTRAINTS, jobs=STREAMING_JOBS, timeout=budget
    ) as timed_runner:
        timed = timed_runner.run(blocks)
    false_timeouts = [item for item in timed.items if item.timed_out]
    assert not false_timeouts, (
        f"{len(false_timeouts)} healthy block(s) flagged timed out under a "
        f"{budget:.2f}s budget (slowest block: {slowest:.3f}s)"
    )
    assert all(item.ok for item in timed.items)

    assert first_result_seconds is not None
    values: Dict[str, object] = {
        "false_timeout_rate": 0.0,
        "parallel_speedup": round(
            sequential_seconds / max(streamed_seconds, 1e-9), 3
        ),
        "throughput_sequential_blocks_per_s": round(
            len(blocks) / max(sequential_seconds, 1e-9), 2
        ),
        "throughput_streamed_blocks_per_s": round(
            len(blocks) / max(streamed_seconds, 1e-9), 2
        ),
        "first_result_seconds": round(first_result_seconds, 4),
        "first_result_vs_barrier": round(
            first_result_seconds / max(streamed_seconds, 1e-9), 3
        ),
    }
    extra = {
        "blocks": len(blocks),
        "jobs": STREAMING_JOBS,
        "chunk_capacity": chunk_capacity,
        "total_cuts": sequential.total_cuts(),
        "timeout_budget_seconds": round(budget, 4),
        "slowest_block_seconds": round(slowest, 4),
        "bit_identical": True,
    }
    return values, extra


register(
    Benchmark(
        name="streaming",
        title="Streaming scheduler throughput and timeout accounting",
        suites=("ci", "engine"),
        metrics=(
            MetricSpec(
                "false_timeout_rate",
                "ratio",
                better="lower",
                gate_max=0.0,
                description="healthy blocks flagged timed-out at jobs < blocks "
                "(the PR 3 accounting fix: must stay exactly zero)",
            ),
            MetricSpec("parallel_speedup", "x", better="higher"),
            MetricSpec("throughput_sequential_blocks_per_s", "blocks/s", better="higher"),
            MetricSpec("throughput_streamed_blocks_per_s", "blocks/s", better="higher"),
            MetricSpec("first_result_seconds", "s", better="lower"),
            MetricSpec("first_result_vs_barrier", "ratio", better="lower"),
        ),
        setup=_streaming_setup,
        measure=_streaming_measure,
        description="Drives more blocks than workers through iter_run(): "
        "time-to-first-result, throughput, and zero false timeouts asserted.",
    )
)


# --------------------------------------------------------------------------- #
# memo — canonical-form memoization: hit rate and warm-run speedup
# --------------------------------------------------------------------------- #
def _memo_setup(scale: str) -> object:
    num_bases = 4 if scale == "small" else 8
    operations = 18 if scale == "small" else 28
    copies = 3 if scale == "small" else 4
    bases = [build_kernel("crc32_step"), build_kernel("bitcount")]
    bases += [
        generate_basic_block(SyntheticBlockSpec(num_operations=operations, seed=seed))
        for seed in range(num_bases - len(bases))
    ]
    blocks = []
    for base in bases:
        blocks.append(base)
        for copy in range(copies):
            shift = copy + 1
            permutation = [(v + shift) % base.num_nodes for v in range(base.num_nodes)]
            blocks.append(
                permute_graph(base, permutation, name=f"{base.name}_copy{copy}")
            )
    return {
        "blocks": blocks,
        "num_classes": len(bases),
        "cache_dir": tempfile.mkdtemp(prefix="repro-bench-memo-"),
    }


def _memo_teardown(state: object) -> None:
    assert isinstance(state, dict)
    shutil.rmtree(state["cache_dir"], ignore_errors=True)


def _memo_measure(state: object) -> MeasureOutput:
    assert isinstance(state, dict)
    blocks, num_classes = state["blocks"], state["num_classes"]
    cache_dir = state["cache_dir"]

    def cut_sets(report):
        return [item.result.node_sets() for item in report.items]

    start = time.perf_counter()
    uncached = BatchRunner(constraints=CONSTRAINTS).run(blocks)
    uncached_seconds = time.perf_counter() - start
    assert all(item.ok for item in uncached.items)
    reference = cut_sets(uncached)

    cold_store = ResultStore(cache_dir)
    start = time.perf_counter()
    cold = BatchRunner(constraints=CONSTRAINTS, store=cold_store).run(blocks)
    cold_seconds = time.perf_counter() - start
    assert cut_sets(cold) == reference

    warm_store = ResultStore(cache_dir)
    start = time.perf_counter()
    warm = BatchRunner(constraints=CONSTRAINTS, store=warm_store).run(blocks)
    warm_seconds = time.perf_counter() - start
    assert cut_sets(warm) == reference
    assert all(item.cached for item in warm.items)
    assert warm_store.stats.hit_rate == 1.0

    start = time.perf_counter()
    dedup = enumerate_deduplicated(blocks, constraints=CONSTRAINTS)
    dedup_seconds = time.perf_counter() - start
    assert [item.result.node_sets() for item in dedup.items] == reference
    assert dedup.num_classes == num_classes

    values: Dict[str, object] = {
        "warm_speedup": round(uncached_seconds / max(warm_seconds, 1e-9), 3),
        "cold_speedup": round(uncached_seconds / max(cold_seconds, 1e-9), 3),
        "dedup_speedup": round(uncached_seconds / max(dedup_seconds, 1e-9), 3),
        "warm_hit_rate": warm_store.stats.hit_rate,
        "uncached_seconds": round(uncached_seconds, 4),
        "warm_cache_seconds": round(warm_seconds, 4),
    }
    extra = {
        "blocks": len(blocks),
        "isomorphism_classes": num_classes,
        "total_cuts": uncached.total_cuts(),
        "dedup_saved_runs": dedup.saved_runs,
        "bit_identical": True,
    }
    return values, extra


register(
    Benchmark(
        name="memo",
        title="Result-store warm speedup and isomorphism dedup",
        suites=("ci", "engine"),
        metrics=(
            MetricSpec(
                "warm_speedup",
                "x",
                better="higher",
                gate_min=2.0,
                description="warm cache vs recomputation on a duplicated/"
                "permuted suite (the PR 2 acceptance bar)",
            ),
            MetricSpec("cold_speedup", "x", better="higher"),
            MetricSpec("dedup_speedup", "x", better="higher"),
            MetricSpec("warm_hit_rate", "ratio", better="higher", gate_min=1.0),
            MetricSpec("uncached_seconds", "s", better="lower"),
            MetricSpec("warm_cache_seconds", "s", better="lower"),
        ),
        setup=_memo_setup,
        measure=_memo_measure,
        teardown=_memo_teardown,
        description="Uncached vs cold-cache vs warm-cache vs dedup runs over "
        "a suite of duplicated and permuted blocks, all bit-identical.",
    )
)


# --------------------------------------------------------------------------- #
# obs — instrumentation overhead, enabled vs disabled
# --------------------------------------------------------------------------- #
OBS_REPEATS = 7


def _obs_setup(scale: str) -> object:
    # The benchmark swaps the process-global recorders in and out; an outer
    # observability session (e.g. `repro bench run --trace`) must be saved
    # here and restored in teardown or the bench would destroy it.
    outer = (obs.metrics(), obs.tracer()) if obs.enabled() else None
    return {"corpus": list(build_corpus_suite()), "outer": outer}


def _obs_teardown(state: object) -> None:
    assert isinstance(state, dict)
    outer = state["outer"]
    if outer is not None:
        obs.activate(*outer)
    else:
        obs.deactivate()


def _gc_quiesced(fn) -> float:
    """Time ``fn()`` with the cyclic GC off and pending garbage collected.

    The enabled runs allocate span dicts, so a collection triggered by
    garbage left over from *earlier* work (other benchmarks in the same
    process) would land disproportionately inside the enabled timing
    windows and fake an instrumentation overhead.
    """
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        fn()
        return time.perf_counter() - start
    finally:
        gc.enable()


def _obs_interleaved(runner: BatchRunner, graphs, repeats: int = OBS_REPEATS):
    """Min wall-clock of disabled and enabled runs, interleaved per repeat."""
    runner.run(graphs)  # un-timed warm-up
    disabled_samples: List[float] = []
    enabled_samples: List[float] = []
    best_records: List[dict] = []
    for _ in range(repeats):
        disabled_samples.append(_gc_quiesced(lambda: runner.run(graphs)))

        _registry, recorder = obs.activate()
        elapsed = _gc_quiesced(lambda: runner.run(graphs))
        records = recorder.records
        obs.deactivate()
        if not enabled_samples or elapsed < min(enabled_samples):
            best_records = records
        enabled_samples.append(elapsed)
    return disabled_samples, enabled_samples, best_records


def _obs_measure(state: object) -> MeasureOutput:
    assert isinstance(state, dict)
    corpus = state["corpus"]
    obs.deactivate()

    with BatchRunner(constraints=CONSTRAINTS, jobs=1) as runner:
        disabled, enabled, records = _obs_interleaved(runner, corpus)
    disabled_best, enabled_best = min(disabled), min(enabled)
    overhead, overhead_mad = paired_overhead(
        TimingResult.from_samples(enabled), TimingResult.from_samples(disabled)
    )

    assert validate_trace_records(records) == []
    coverage = span_coverage(records)
    assert coverage is not None

    with BatchRunner(constraints=CONSTRAINTS, jobs=1, force_pool=True) as runner:
        runner.warm_pool()
        pool_disabled, pool_enabled, pool_records = _obs_interleaved(runner, corpus)
    pool_overhead, pool_overhead_mad = paired_overhead(
        TimingResult.from_samples(pool_enabled),
        TimingResult.from_samples(pool_disabled),
    )
    assert validate_trace_records(pool_records) == []
    worker_spans = sum(1 for r in pool_records if r["name"] == "worker.block")
    assert worker_spans == len(corpus)

    values: Dict[str, object] = {
        "obs_overhead": (round(overhead, 4), round(overhead_mad, 4)),
        "span_coverage": round(coverage["coverage"], 4),
        "pool_obs_overhead": (round(pool_overhead, 4), round(pool_overhead_mad, 4)),
        "disabled_seconds": round(disabled_best, 4),
        "enabled_seconds": round(enabled_best, 4),
    }
    extra = {
        "corpus_blocks": len(corpus),
        "repeats": OBS_REPEATS,
        "worker_spans": worker_spans,
        "pool_disabled_seconds": round(min(pool_disabled), 4),
        "pool_enabled_seconds": round(min(pool_enabled), 4),
    }
    return values, extra


register(
    Benchmark(
        name="obs",
        title="Observability overhead, enabled vs disabled",
        suites=("ci", "engine"),
        metrics=(
            MetricSpec(
                "obs_overhead",
                "ratio",
                better="lower",
                gate_max=0.03,
                description="live registry+tracer cost over the uninstrumented "
                "sequential run (the PR 7 <3% promise)",
            ),
            MetricSpec(
                "span_coverage",
                "ratio",
                better="higher",
                gate_min=0.95,
                description="fraction of the batch root span accounted for by "
                "named child spans",
            ),
            MetricSpec("pool_obs_overhead", "ratio", better="lower"),
            MetricSpec("disabled_seconds", "s", better="lower"),
            MetricSpec("enabled_seconds", "s", better="lower"),
        ),
        setup=_obs_setup,
        measure=_obs_measure,
        teardown=_obs_teardown,
        description="Seven GC-quiesced interleaved enabled-vs-disabled rounds "
        "on the frontend corpus, overhead as the median of per-round ratios, "
        "plus schema validity and span coverage of the enabled run's "
        "telemetry.",
    )
)
