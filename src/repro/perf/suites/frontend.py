"""Frontend benchmark: corpus shape, DFG build throughput, end-to-end ISE.

Port of the former standalone ``benchmarks/bench_frontend.py`` measurement
body.  The corpus-shape counters double as rot detection: a shrinking corpus
or a translation regression shows up in the record diff even when no timing
gate fires.
"""

from __future__ import annotations

import time
from typing import Dict

from ...core import Constraints
from ...frontend import (
    CORPUS,
    build_corpus_suite,
    corpus_block_profiles,
    corpus_names,
    function_to_dfgs,
)
from ...ise.pipeline import identify_instruction_set_extension
from ..registry import Benchmark, MeasureOutput, register
from ..schema import MetricSpec

CONSTRAINTS = Constraints(max_inputs=4, max_outputs=2)


def _frontend_setup(scale: str) -> object:
    return {"names": corpus_names(), "build_rounds": 5 if scale == "small" else 25}


def _frontend_measure(state: object) -> MeasureOutput:
    assert isinstance(state, dict)
    names, build_rounds = state["names"], state["build_rounds"]

    # --- corpus shape ------------------------------------------------------ #
    start = time.perf_counter()
    suite = build_corpus_suite(profile=True)
    profiled_build_seconds = time.perf_counter() - start
    total_ops = sum(len(g.operation_nodes()) for g in suite)
    assert len(suite) >= 10

    # --- DFG build throughput (translate-only, repeated) ------------------- #
    start = time.perf_counter()
    translations = 0
    ops_emitted = 0
    for _ in range(build_rounds):
        for name in names:
            dfgs = function_to_dfgs(CORPUS[name].fn)
            translations += len(dfgs.blocks)
            ops_emitted += sum(e.num_operations for e in dfgs.blocks)
    translate_seconds = time.perf_counter() - start

    # --- end-to-end ISE over the profiled corpus --------------------------- #
    blocks = corpus_block_profiles(profile=True)
    start = time.perf_counter()
    result = identify_instruction_set_extension(
        blocks, CONSTRAINTS, application_name="frontend-corpus"
    )
    ise_seconds = time.perf_counter() - start
    selected = sum(len(block.selected) for block in result.blocks)
    assert selected >= 1, "the corpus must yield at least one custom instruction"

    values: Dict[str, object] = {
        "ise_application_speedup": round(result.application_speedup, 3),
        "ise_selected_instructions": float(selected),
        "dfg_blocks_per_second": round(translations / max(translate_seconds, 1e-9), 1),
        "dfg_ops_per_second": round(ops_emitted / max(translate_seconds, 1e-9), 1),
        "profiled_build_seconds": round(profiled_build_seconds, 4),
        "ise_seconds": round(ise_seconds, 4),
    }
    extra = {
        "corpus_kernels": len(names),
        "corpus_blocks": len(suite),
        "corpus_operations": total_ops,
        "translate_rounds": build_rounds,
        "ise_blocks": len(blocks),
    }
    return values, extra


register(
    Benchmark(
        name="frontend",
        title="Frontend corpus throughput and end-to-end ISE",
        suites=("ci", "frontend"),
        metrics=(
            MetricSpec(
                "ise_application_speedup",
                "x",
                better="higher",
                gate_min=1.0,
                description="full corpus -> enumerate -> score -> select "
                "pipeline speedup; the corpus must keep yielding profitable "
                "custom instructions",
            ),
            MetricSpec(
                "ise_selected_instructions", "count", better="higher", gate_min=1.0
            ),
            MetricSpec("dfg_blocks_per_second", "blocks/s", better="higher"),
            MetricSpec("dfg_ops_per_second", "ops/s", better="higher"),
            MetricSpec("profiled_build_seconds", "s", better="lower"),
            MetricSpec("ise_seconds", "s", better="lower"),
        ),
        setup=_frontend_setup,
        measure=_frontend_measure,
        description="Bytecode->DFG translation throughput on the bundled "
        "reference corpus plus the end-to-end ISE pipeline wall time.",
    )
)
