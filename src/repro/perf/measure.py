"""Robust timing: min-of-N with warmup, interleaved variant ordering, MAD.

Every pre-harness ``bench_*.py`` hand-rolled its own timing loop; the two
that gated ratios (BENCH-BATCH, BENCH-OBS) independently re-invented
interleaving and min-of-N.  This module is the single implementation:

* **min-of-N** — the minimum of repeated runs is the standard
  micro-benchmark estimator (noise is strictly additive on a quiet machine);
* **warmup** — un-timed leading runs absorb cold caches, worker spawn and
  allocator warm-up;
* **interleaving** — when timing *variants against each other* (enabled vs
  disabled, pooled vs sequential), each repetition runs every variant once,
  in order, so machine drift hits all variants equally instead of whichever
  ran last;
* **MAD** — the median absolute deviation of the samples rides along as the
  noise estimate, and comparisons widen their thresholds by it.
"""

from __future__ import annotations

import gc
import statistics
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Tuple

from ..obs.report import median_abs_deviation

#: Default timed repetitions and un-timed warmup runs.
DEFAULT_REPEATS = 3
DEFAULT_WARMUP = 1


@dataclass
class TimingResult:
    """Samples of one timed callable, with the robust summaries attached."""

    best: float
    samples: List[float]
    mad: float

    @classmethod
    def from_samples(cls, samples: List[float]) -> "TimingResult":
        if not samples:
            raise ValueError("TimingResult needs at least one sample")
        return cls(best=min(samples), samples=samples, mad=median_abs_deviation(samples))


def time_callable(
    fn: Callable[[], object],
    repeats: int = DEFAULT_REPEATS,
    warmup: int = DEFAULT_WARMUP,
) -> TimingResult:
    """Min-of-*repeats* wall time of ``fn()`` after *warmup* un-timed runs."""
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    for _ in range(warmup):
        fn()
    samples: List[float] = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return TimingResult.from_samples(samples)


def interleaved_timings(
    variants: Mapping[str, Callable[[], object]],
    repeats: int = DEFAULT_REPEATS,
    warmup: int = DEFAULT_WARMUP,
    clock: Callable[[], float] = time.perf_counter,
    gc_collect: bool = False,
    gc_quiesce: bool = False,
) -> Dict[str, TimingResult]:
    """Time every variant min-of-*repeats*, one round-robin pass per repeat.

    Each repetition runs every variant once in declaration order, so slow
    drift (thermal throttling, a neighbour container waking up) biases no
    single variant.  Warmup rounds run every variant too.

    *clock* defaults to wall time; pass ``time.process_time`` for
    CPU-bound in-process comparisons on shared machines, where wall-clock
    drift between rounds can exceed the effect being measured.

    *gc_collect* collects pending garbage **outside** each timed window, so
    a collection triggered by the *previous* round's garbage cannot land in
    whichever variant runs next and fake an overhead.  *gc_quiesce*
    additionally disables the cyclic GC inside the window (implies the
    collect).  Beware of quiescing variant *comparisons* where one variant
    allocates much more than the other: with the GC off, the heavier
    variant pays disproportionate allocator costs that a normally-running
    GC would amortize, skewing the ratio — prefer plain *gc_collect* there.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    if not variants:
        raise ValueError("interleaved_timings() needs at least one variant")
    for _ in range(warmup):
        for fn in variants.values():
            fn()
    samples: Dict[str, List[float]] = {name: [] for name in variants}
    for _ in range(repeats):
        for name, fn in variants.items():
            if gc_collect or gc_quiesce:
                gc.collect()
            if gc_quiesce:
                gc.disable()
            try:
                start = clock()
                fn()
                samples[name].append(clock() - start)
            finally:
                if gc_quiesce:
                    gc.enable()
    return {name: TimingResult.from_samples(values) for name, values in samples.items()}


def paired_overhead(
    numerator: TimingResult, denominator: TimingResult
) -> Tuple[float, float]:
    """``(overhead, mad)``: median of per-round ratios minus one.

    For two variants timed in the *same* interleaved rounds, the median of
    the per-round ratios ``numerator_i / denominator_i`` is robust against
    a lone lucky-fast or unlucky-slow round in either variant — unlike
    ``min(numerator) / min(denominator)``, which a single fast denominator
    sample inflates arbitrarily.  The MAD of the round ratios rides along
    as the noise estimate.
    """
    if len(numerator.samples) != len(denominator.samples):
        raise ValueError("paired_overhead() needs samples from the same rounds")
    ratios = [
        a / max(b, 1e-12)
        for a, b in zip(numerator.samples, denominator.samples)
    ]
    return statistics.median(ratios) - 1.0, median_abs_deviation(ratios)


def ratio_of(
    numerator: TimingResult, denominator: TimingResult
) -> Tuple[float, float]:
    """``(ratio, mad)`` of two timings — e.g. a speedup with its noise.

    The ratio is of the two minima; the attached MAD propagates the larger
    *relative* spread of the operands onto the ratio, which is what a
    noise-aware comparison threshold needs.
    """
    denom = max(denominator.best, 1e-12)
    ratio = numerator.best / denom
    rel_noise = max(
        numerator.mad / max(numerator.best, 1e-12),
        denominator.mad / max(denominator.best, 1e-12),
    )
    return ratio, ratio * rel_noise
