"""Unified benchmark harness: registry, robust measurement, regression ledger.

One ``Benchmark`` protocol for every experiment in ``benchmarks/``, one
versioned record schema (``repro-bench-1``), one append-only history file
(``BENCH_history.jsonl``) and one comparison mechanism replacing the five
hand-written CI gates.  Driven by ``repro bench run|compare|history|list|env``.
"""

from .compare import (
    MetricDelta,
    compare_records,
    compare_with_committed,
    comparison_problems,
    format_compare,
)
from .env import comparability_warnings, environment_fingerprint, fingerprint_digest
from .ledger import (
    LEDGER_NAME,
    append_records,
    history_table,
    latest_by_benchmark,
    load_history,
    record_key,
)
from .legacy import (
    ingest_legacy_directory,
    legacy_to_record,
    load_committed_record,
    load_record_file,
)
from .measure import TimingResult, interleaved_timings, paired_overhead, time_callable
from .registry import (
    SUITE_ALL,
    SUITE_CI,
    Benchmark,
    RunOutcome,
    benchmark_names,
    get_benchmark,
    register,
    run_registered,
    suite_names,
    unregister,
)
from .schema import BENCH_SCHEMA, BenchRecord, MetricSpec, MetricValue, validate_record

__all__ = [
    "BENCH_SCHEMA",
    "LEDGER_NAME",
    "SUITE_ALL",
    "SUITE_CI",
    "BenchRecord",
    "Benchmark",
    "MetricDelta",
    "MetricSpec",
    "MetricValue",
    "RunOutcome",
    "TimingResult",
    "append_records",
    "benchmark_names",
    "comparability_warnings",
    "compare_records",
    "compare_with_committed",
    "comparison_problems",
    "environment_fingerprint",
    "fingerprint_digest",
    "format_compare",
    "get_benchmark",
    "history_table",
    "ingest_legacy_directory",
    "interleaved_timings",
    "latest_by_benchmark",
    "legacy_to_record",
    "load_committed_record",
    "load_history",
    "load_record_file",
    "paired_overhead",
    "record_key",
    "register",
    "run_registered",
    "suite_names",
    "time_callable",
    "unregister",
    "validate_record",
]
