"""Environment fingerprinting: what machine produced a benchmark record.

A performance number without its provenance is noise: the committed records
span at least two container kernels and two CPython versions already.  Every
``repro-bench-1`` record carries the fingerprint, ``repro bench env`` prints
it, and ``--metrics-json`` run reports are stamped with it too, so any two
artifacts can be checked for comparability before their numbers are.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import socket
import subprocess
from typing import Dict, Optional

#: Fields two fingerprints must share for their timings to be comparable at
#: all; the digest (and the compare warning) is computed over exactly these.
COMPARABILITY_FIELDS = ("python", "implementation", "machine", "cpu_count", "scale")


def git_revision(cwd: Optional[str] = None) -> Optional[str]:
    """The current git commit sha, or ``None`` outside a work tree."""
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "--short=12", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    sha = completed.stdout.strip()
    return sha if completed.returncode == 0 and sha else None


def environment_fingerprint(scale: Optional[str] = None) -> Dict[str, object]:
    """The provenance stamp carried by every benchmark record."""
    env: Dict[str, object] = {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count() or 1,
        "hostname": socket.gethostname(),
        "git_sha": git_revision(),
    }
    if scale is not None:
        env["scale"] = scale
    return env


def fingerprint_digest(env: Dict[str, object]) -> str:
    """Short stable digest of the comparability-relevant fingerprint fields."""
    subset = {key: env.get(key) for key in COMPARABILITY_FIELDS}
    payload = json.dumps(subset, sort_keys=True, default=str)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:12]


def comparability_warnings(
    baseline_env: Dict[str, object], current_env: Dict[str, object]
) -> list:
    """Human-readable mismatches that make a timing comparison suspect."""
    warnings = []
    for key in COMPARABILITY_FIELDS:
        a, b = baseline_env.get(key), current_env.get(key)
        if a is not None and b is not None and a != b:
            warnings.append(f"{key} differs: baseline {a!r} vs current {b!r}")
    return warnings
