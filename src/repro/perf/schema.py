"""The ``repro-bench-1`` record schema: metrics with units and directions.

Every benchmark run — whatever it measures — produces one
:class:`BenchRecord`: a named set of :class:`MetricValue` entries (value,
unit, better-direction, optional noise estimate) plus the environment
fingerprint of the machine that produced it.  The twelve historically
incompatible ``BENCH_*.json`` layouts collapse onto this one shape; the
committed pre-schema files are lifted onto it by :mod:`repro.perf.legacy`.

Gate thresholds live on :class:`MetricSpec`, the *declaration* a benchmark
registers for each metric it emits:

* ``gate_min`` / ``gate_max`` — absolute bounds checked on every run
  (``dispatch_overhead <= 0.15``, ``median speedup >= 3x``, ...);
* ``rel_tolerance`` — the allowed fractional move in the *worse* direction
  when comparing two records (``None`` = the metric is informational for
  comparisons; absolute seconds on shared runners are the usual case).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: Version tag carried by every record this package writes.
BENCH_SCHEMA = "repro-bench-1"

#: Accepted better-direction values.  ``none`` marks a purely informational
#: metric (e.g. a growth ratio recorded for the trend) that is never gated.
BETTER_DIRECTIONS = ("higher", "lower", "none")


@dataclass(frozen=True)
class MetricSpec:
    """Declaration of one metric a benchmark emits."""

    name: str
    unit: str
    better: str = "lower"
    #: Absolute gates, enforced on every run of the owning benchmark.
    gate_min: Optional[float] = None
    gate_max: Optional[float] = None
    #: Allowed fractional regression vs a baseline record; ``None`` means the
    #: metric is never a comparison gate (recorded for the trend only).
    rel_tolerance: Optional[float] = None
    description: str = ""

    def __post_init__(self) -> None:
        if self.better not in BETTER_DIRECTIONS:
            raise ValueError(
                f"metric {self.name!r}: better must be one of "
                f"{BETTER_DIRECTIONS}, got {self.better!r}"
            )
        if self.better == "none" and (
            self.gate_min is not None
            or self.gate_max is not None
            or self.rel_tolerance is not None
        ):
            raise ValueError(
                f"metric {self.name!r}: an informational (better='none') "
                "metric cannot carry gates"
            )


@dataclass
class MetricValue:
    """One measured metric inside a record."""

    value: float
    unit: str = ""
    better: str = "lower"
    #: Median absolute deviation of the underlying samples, when the value
    #: came from a repeated timing loop; comparisons widen their tolerance
    #: by it (see :mod:`repro.perf.compare`).
    mad: Optional[float] = None

    def to_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "value": self.value,
            "unit": self.unit,
            "better": self.better,
        }
        if self.mad is not None:
            data["mad"] = self.mad
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "MetricValue":
        return cls(
            value=float(data["value"]),  # type: ignore[arg-type]
            unit=str(data.get("unit", "")),
            better=str(data.get("better", "lower")),
            mad=None if data.get("mad") is None else float(data["mad"]),  # type: ignore[arg-type]
        )


@dataclass
class BenchRecord:
    """One benchmark run in the ``repro-bench-1`` schema."""

    benchmark: str
    scale: str
    env: Dict[str, object]
    metrics: Dict[str, MetricValue]
    extra: Dict[str, object] = field(default_factory=dict)
    #: Unix timestamp of the run (0.0 for records lifted from legacy files,
    #: which never carried one).
    created_unix: float = 0.0
    #: True when the record was ingested from a pre-schema ``BENCH_*.json``.
    legacy: bool = False
    schema: str = BENCH_SCHEMA

    def metric(self, name: str) -> Optional[MetricValue]:
        return self.metrics.get(name)

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": self.schema,
            "benchmark": self.benchmark,
            "scale": self.scale,
            "created_unix": self.created_unix,
            "legacy": self.legacy,
            "env": dict(self.env),
            "metrics": {
                name: value.to_dict() for name, value in sorted(self.metrics.items())
            },
            "extra": self.extra,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "BenchRecord":
        problems = validate_record(data)
        if problems:
            raise ValueError(
                f"not a valid {BENCH_SCHEMA} record: " + "; ".join(problems[:3])
            )
        metrics_raw = data["metrics"]
        assert isinstance(metrics_raw, dict)
        return cls(
            benchmark=str(data["benchmark"]),
            scale=str(data["scale"]),
            env=dict(data.get("env", {})),  # type: ignore[call-overload]
            metrics={
                str(name): MetricValue.from_dict(entry)
                for name, entry in metrics_raw.items()
            },
            extra=dict(data.get("extra", {})),  # type: ignore[call-overload]
            created_unix=float(data.get("created_unix", 0.0)),  # type: ignore[arg-type]
            legacy=bool(data.get("legacy", False)),
            schema=str(data["schema"]),
        )


def validate_record(data: object) -> List[str]:
    """Schema problems of one record dict (empty list = valid)."""
    problems: List[str] = []
    if not isinstance(data, dict):
        return [f"record must be an object, got {type(data).__name__}"]
    if data.get("schema") != BENCH_SCHEMA:
        problems.append(f"schema is {data.get('schema')!r}, expected {BENCH_SCHEMA!r}")
    for key in ("benchmark", "scale"):
        if not isinstance(data.get(key), str) or not data.get(key):
            problems.append(f"{key!r} must be a non-empty string")
    env = data.get("env")
    if not isinstance(env, dict):
        problems.append("'env' must be an object (the environment fingerprint)")
    metrics = data.get("metrics")
    if not isinstance(metrics, dict) or not metrics:
        problems.append("'metrics' must be a non-empty object")
    else:
        for name, entry in metrics.items():
            if not isinstance(entry, dict):
                problems.append(f"metric {name!r} must be an object")
                continue
            value = entry.get("value")
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                problems.append(f"metric {name!r}: 'value' must be a number")
            if entry.get("better") not in BETTER_DIRECTIONS:
                problems.append(
                    f"metric {name!r}: 'better' must be one of {BETTER_DIRECTIONS}"
                )
    return problems


#: Noise widening: gates and relative tolerances grow by this many MADs.
NOISE_SIGMAS = 3.0


def check_gates(
    record: BenchRecord, specs: Tuple[MetricSpec, ...]
) -> List[str]:
    """Absolute-gate violations of *record* against its declared specs.

    A metric that carries a noise estimate fails only when it is past the
    gate by more than ``NOISE_SIGMAS`` MADs — the same widening the relative
    comparison applies, so a jittery shared runner cannot trip a ceiling
    (e.g. a 3% overhead gate measured with ±2% round-to-round spread) that
    the underlying code never actually crossed.
    """
    problems: List[str] = []
    by_name = {spec.name: spec for spec in specs}
    for name, spec in by_name.items():
        measured = record.metrics.get(name)
        if measured is None:
            if spec.gate_min is not None or spec.gate_max is not None:
                problems.append(f"gated metric {name!r} is missing from the record")
            continue
        margin = NOISE_SIGMAS * abs(measured.mad) if measured.mad else 0.0
        if spec.gate_min is not None and measured.value + margin < spec.gate_min:
            problems.append(
                f"{name} = {measured.value:g} {spec.unit} is below the "
                f"{spec.gate_min:g} floor"
                + (f" (noise margin {margin:g})" if margin else "")
            )
        if spec.gate_max is not None and measured.value - margin > spec.gate_max:
            problems.append(
                f"{name} = {measured.value:g} {spec.unit} exceeds the "
                f"{spec.gate_max:g} ceiling"
                + (f" (noise margin {margin:g})" if margin else "")
            )
    return problems
