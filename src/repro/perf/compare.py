"""Record comparison: per-metric deltas, noise-aware regression verdicts.

Replaces the five hand-written CI gate re-checks (bench_core,
bench_batch_runner, bench_obs, bench_memo, bench_streaming) with one
mechanism.  For each metric shared by a baseline and a current record:

* the **absolute gates** declared on the registered :class:`MetricSpec`
  (floor/ceiling) are applied to the current value — this is what the old
  per-script asserts did;
* metrics with a ``rel_tolerance`` additionally may not move in their
  *worse* direction by more than that fraction of the baseline — widened by
  the recorded noise (3x the larger relative MAD), so a jittery sample set
  cannot produce a confident-looking regression verdict.

Only ``regressed`` verdicts (and gate violations) make
:func:`comparison_problems` non-empty; everything else is trend data.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from .registry import get_benchmark
from .schema import NOISE_SIGMAS, BenchRecord, MetricSpec, check_gates

#: Verdicts a delta can carry.  Only ``regressed`` fails a comparison.
VERDICTS = ("improved", "regressed", "ok", "info", "new", "missing")


@dataclass
class MetricDelta:
    """One metric's movement between a baseline and a current record."""

    metric: str
    unit: str
    better: str
    baseline: Optional[float]
    current: Optional[float]
    #: Fractional change relative to the baseline (sign follows raw values).
    change: Optional[float]
    #: The effective threshold the verdict used (tolerance + noise), if any.
    threshold: Optional[float]
    verdict: str


def _effective_tolerance(
    spec: Optional[MetricSpec],
    baseline: BenchRecord,
    current: BenchRecord,
    name: str,
) -> Optional[float]:
    if spec is None or spec.rel_tolerance is None:
        return None
    tolerance = spec.rel_tolerance
    for record in (baseline, current):
        value = record.metrics.get(name)
        if value is not None and value.mad is not None and value.value != 0:
            tolerance = max(
                tolerance,
                spec.rel_tolerance + NOISE_SIGMAS * abs(value.mad / value.value),
            )
    return tolerance


def compare_records(
    baseline: BenchRecord,
    current: BenchRecord,
    specs: Optional[Tuple[MetricSpec, ...]] = None,
) -> List[MetricDelta]:
    """Per-metric deltas of *current* against *baseline*.

    *specs* defaults to the registered declarations of the current record's
    benchmark (falling back to no relative gating when it is unregistered).
    """
    if specs is None:
        try:
            specs = get_benchmark(current.benchmark).metrics
        except KeyError:
            specs = ()
    by_name = {spec.name: spec for spec in specs}
    deltas: List[MetricDelta] = []
    for name in sorted(set(baseline.metrics) | set(current.metrics)):
        base = baseline.metrics.get(name)
        cur = current.metrics.get(name)
        spec = by_name.get(name)
        unit = cur.unit if cur is not None else (base.unit if base else "")
        better = cur.better if cur is not None else (base.better if base else "none")
        if base is None or cur is None:
            deltas.append(
                MetricDelta(
                    metric=name,
                    unit=unit,
                    better=better,
                    baseline=None if base is None else base.value,
                    current=None if cur is None else cur.value,
                    change=None,
                    threshold=None,
                    verdict="new" if base is None else "missing",
                )
            )
            continue
        change = (
            (cur.value - base.value) / abs(base.value) if base.value != 0 else None
        )
        tolerance = _effective_tolerance(spec, baseline, current, name)
        verdict = "info"
        if better in ("higher", "lower") and change is not None:
            worse = change < 0 if better == "higher" else change > 0
            if tolerance is None:
                verdict = "ok"
            elif worse and abs(change) > tolerance:
                verdict = "regressed"
            elif not worse and abs(change) > tolerance:
                verdict = "improved"
            else:
                verdict = "ok"
        deltas.append(
            MetricDelta(
                metric=name,
                unit=unit,
                better=better,
                baseline=base.value,
                current=cur.value,
                change=change,
                threshold=tolerance,
                verdict=verdict,
            )
        )
    return deltas


def comparison_problems(
    baseline: BenchRecord,
    current: BenchRecord,
    specs: Optional[Tuple[MetricSpec, ...]] = None,
) -> List[str]:
    """Everything that should fail a comparison: gates first, then deltas."""
    if specs is None:
        try:
            specs = get_benchmark(current.benchmark).metrics
        except KeyError:
            specs = ()
    problems = [
        f"{current.benchmark}: {problem}" for problem in check_gates(current, specs)
    ]
    for delta in compare_records(baseline, current, specs):
        if delta.verdict == "regressed":
            assert delta.change is not None and delta.threshold is not None
            problems.append(
                f"{current.benchmark}: {delta.metric} regressed "
                f"{delta.change:+.1%} (baseline {delta.baseline:g}, now "
                f"{delta.current:g}, tolerance {delta.threshold:.1%})"
            )
    return problems


def format_compare(
    deltas: List[MetricDelta], env_warnings: Optional[List[str]] = None
) -> str:
    """Human-readable delta table (stderr-safe: plain text, no JSON)."""
    lines: List[str] = []
    for warning in env_warnings or []:
        lines.append(f"note: {warning}")
    width = max((len(d.metric) for d in deltas), default=10)
    for delta in deltas:
        base = "-" if delta.baseline is None else f"{delta.baseline:g}"
        cur = "-" if delta.current is None else f"{delta.current:g}"
        move = "" if delta.change is None else f" ({delta.change:+.1%})"
        lines.append(
            f"  {delta.metric:<{width}s} {base:>12s} -> {cur:>12s}{move:<10s} "
            f"[{delta.verdict}]"
        )
    return "\n".join(lines)


def compare_with_committed(
    current: BenchRecord, records_dir: Union[str, Path]
) -> Tuple[Optional[BenchRecord], List[str], List[MetricDelta]]:
    """Compare one fresh record against its committed ``BENCH_<name>.json``.

    Returns ``(baseline, problems, deltas)``; a missing committed baseline is
    itself a problem (a gate that silently stops gating is a regression in
    the measurement layer).
    """
    from .legacy import load_committed_record

    baseline = load_committed_record(current.benchmark, records_dir)
    if baseline is None:
        return (
            None,
            [
                f"{current.benchmark}: no committed baseline "
                f"BENCH_{current.benchmark}.json in {records_dir}"
            ],
            [],
        )
    # Environment drift is surfaced by the caller (via
    # comparability_warnings) but does not fail the comparison: the gated
    # metrics are ratios, which are stable across runners by design.
    problems = comparison_problems(baseline, current)
    return baseline, problems, compare_records(baseline, current)
