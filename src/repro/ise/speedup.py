"""Merit (speedup) estimation for enumerated cuts.

Combines the latency model with an execution-frequency profile to rank the
candidate custom instructions, following the merit function used in the
optimal ISE identification literature the paper builds on: the gain of a cut
is the number of cycles it saves per execution of its basic block, weighted by
how often the block executes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

from ..core.context import EnumerationContext
from ..core.cut import Cut
from .latency import DEFAULT_LATENCY_MODEL, LatencyModel, cut_area, total_software_cycles


@dataclass(frozen=True)
class ScoredCut:
    """A cut together with its estimated merit.

    Attributes
    ----------
    cut:
        The candidate custom instruction.
    saved_cycles_per_execution:
        Cycles saved each time the surrounding basic block executes.
    weighted_gain:
        Saved cycles multiplied by the basic-block execution count.
    hardware_cycles / software_cycles:
        The two sides of the comparison, for reporting.
    area:
        Relative area of the custom functional unit datapath.
    """

    cut: Cut
    saved_cycles_per_execution: float
    weighted_gain: float
    hardware_cycles: float
    software_cycles: float
    area: float

    @property
    def gain_per_area(self) -> float:
        """Merit density used by the area-constrained selection heuristics."""
        if self.area <= 0:
            return float("inf") if self.weighted_gain > 0 else 0.0
        return self.weighted_gain / self.area


def score_cut(
    cut: Cut,
    context: EnumerationContext,
    execution_count: float = 1.0,
    model: LatencyModel = DEFAULT_LATENCY_MODEL,
) -> ScoredCut:
    """Estimate the merit of a single cut."""
    software = model.software_cost(cut, context)
    hardware = model.hardware_cost(cut, context)
    saved = software - hardware
    return ScoredCut(
        cut=cut,
        saved_cycles_per_execution=saved,
        weighted_gain=saved * execution_count,
        hardware_cycles=hardware,
        software_cycles=software,
        area=cut_area(cut, context),
    )


def score_cuts(
    cuts: Iterable[Cut],
    context: EnumerationContext,
    execution_count: float = 1.0,
    model: LatencyModel = DEFAULT_LATENCY_MODEL,
    keep_only_profitable: bool = True,
) -> List[ScoredCut]:
    """Score a collection of cuts and sort them by decreasing weighted gain."""
    scored = [
        score_cut(cut, context, execution_count=execution_count, model=model)
        for cut in cuts
    ]
    if keep_only_profitable:
        scored = [entry for entry in scored if entry.saved_cycles_per_execution > 0]
    scored.sort(key=lambda entry: entry.weighted_gain, reverse=True)
    return scored


def estimate_block_speedup(
    selected: Iterable[ScoredCut],
    context: EnumerationContext,
    model: LatencyModel = DEFAULT_LATENCY_MODEL,
) -> float:
    """Speedup of the basic block when the selected custom instructions are used.

    ``speedup = T_sw / (T_sw - sum(saved))`` where ``T_sw`` is the software
    execution time of the whole block.  The selected cuts are assumed to be
    vertex-disjoint (as produced by :mod:`repro.ise.selection`).
    """
    baseline = total_software_cycles(context, model)
    if baseline <= 0:
        return 1.0
    saved = sum(entry.saved_cycles_per_execution for entry in selected)
    remaining = max(baseline - saved, 1e-9)
    return baseline / remaining
