"""End-to-end instruction-set-extension identification pipeline.

The conclusion of the paper notes that the enumeration algorithm "was
successfully used in our compiler toolchain; full subgraph enumeration allows
detection of high-performance custom instruction sets, yielding speedups up to
6x".  This module reproduces that downstream flow: given one or more basic
blocks (with execution counts), it enumerates the cuts, scores them, selects a
non-overlapping subset, and reports the resulting custom instructions and the
estimated application speedup.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Union

from ..core.constraints import Constraints
from ..core.pruning import FULL_PRUNING, PruningConfig
from ..dfg.graph import DataFlowGraph
from ..engine.batch import BatchRunner
from ..engine.registry import DEFAULT_ALGORITHM
from ..memo.store import ResultStore
from ..obs import runtime as obs
from .isa import InstructionSetExtension, make_instruction
from .latency import DEFAULT_LATENCY_MODEL, LatencyModel, total_software_cycles
from .selection import SelectionConfig, select_cuts
from .speedup import ScoredCut, score_cuts


@dataclass
class BlockProfile:
    """A basic block together with its execution count."""

    graph: DataFlowGraph
    execution_count: float = 1.0


@dataclass
class BlockResult:
    """Per-block outcome of the pipeline."""

    graph_name: str
    execution_count: float
    num_candidate_cuts: int
    selected: List[ScoredCut] = field(default_factory=list)
    software_cycles: float = 0.0
    saved_cycles: float = 0.0

    @property
    def block_speedup(self) -> float:
        """Speedup of this basic block in isolation."""
        if self.software_cycles <= 0:
            return 1.0
        remaining = max(self.software_cycles - self.saved_cycles, 1e-9)
        return self.software_cycles / remaining


@dataclass
class PipelineResult:
    """Outcome of :func:`identify_instruction_set_extension`."""

    extension: InstructionSetExtension
    blocks: List[BlockResult] = field(default_factory=list)

    @property
    def application_speedup(self) -> float:
        """Amdahl-style overall speedup across all profiled blocks."""
        total = sum(b.software_cycles * b.execution_count for b in self.blocks)
        saved = sum(b.saved_cycles * b.execution_count for b in self.blocks)
        if total <= 0:
            return 1.0
        return total / max(total - saved, 1e-9)

    def summary(self) -> str:
        """Multi-line report of the identified extension."""
        lines = [self.extension.datasheet(), ""]
        for block in self.blocks:
            lines.append(
                f"block {block.graph_name}: {len(block.selected)} instruction(s) "
                f"selected out of {block.num_candidate_cuts} candidates, "
                f"block speedup {block.block_speedup:.2f}x"
            )
        lines.append(f"application speedup: {self.application_speedup:.2f}x")
        return "\n".join(lines)


def identify_instruction_set_extension(
    blocks: Iterable[BlockProfile],
    constraints: Optional[Constraints] = None,
    selection: SelectionConfig = SelectionConfig(),
    latency_model: LatencyModel = DEFAULT_LATENCY_MODEL,
    pruning: PruningConfig = FULL_PRUNING,
    application_name: str = "application",
    algorithm: str = DEFAULT_ALGORITHM,
    jobs: Union[int, str] = 1,
    timeout: Optional[float] = None,
    store: Optional[ResultStore] = None,
    batch_runner: Optional[BatchRunner] = None,
    progress=None,
) -> PipelineResult:
    """Run the full enumeration → scoring → selection pipeline.

    The enumeration of the profiled blocks goes through the engine's
    :class:`~repro.engine.batch.BatchRunner` streaming scheduler
    (:meth:`~repro.engine.batch.BatchRunner.iter_run`), so whole-application
    ISE identification parallelizes across worker processes with
    ``jobs >= 2`` while producing results identical to the sequential run,
    and — with a *store* attached — every finished block's result is
    persisted as it completes: a crash mid-application loses none of the
    already-enumerated blocks.

    Parameters
    ----------
    blocks:
        Profiled basic blocks of the application.
    constraints:
        Microarchitectural I/O constraints for the custom instructions.
    selection:
        How many instructions / how much area may be spent.
    latency_model:
        Software/hardware timing model.
    pruning:
        Pruning configuration for the enumerator (ignored by algorithms that
        do not support one).
    application_name:
        Name used in the generated datasheet.
    algorithm:
        Registry name of the enumeration algorithm.
    jobs:
        Number of enumeration worker processes (1 = in-process), or
        ``"auto"`` for the machine's CPU count.
    timeout:
        Optional per-block enumeration budget in seconds, charged from the
        moment the block's task starts (queue wait is excluded).  With
        ``jobs >= 2`` a block still running at its deadline is abandoned and
        contributes no candidate cuts; a block that *completes* over budget
        (always the case with ``jobs == 1``, where the run cannot be
        interrupted) is only flagged and its cuts are kept.
    store:
        Optional persistent memoization store
        (:class:`~repro.memo.store.ResultStore`); previously enumerated
        blocks — including isomorphic ones — skip enumeration.
    batch_runner:
        Pre-configured runner to use instead of building one from the
        preceding arguments (e.g. to share a context cache across calls).
    progress:
        Optional per-block callback ``progress(item, completed, total)``,
        invoked as each block's enumeration finishes (completion order).
    """
    constraints = constraints or Constraints()
    runner = batch_runner or BatchRunner(
        algorithm=algorithm,
        constraints=constraints,
        pruning=pruning,
        jobs=jobs,
        timeout=timeout,
        store=store,
    )
    block_list = list(blocks)
    with obs.tracer().span(
        "ise.pipeline",
        cat="ise",
        application=application_name,
        blocks=len(block_list),
    ) as pipeline_span:
        # run() drains the stream (store write-back happens per chunk inside
        # it) and restores input order: instruction naming below is
        # deterministic.
        try:
            with obs.tracer().span("ise.enumerate", cat="ise"):
                items = runner.run(block_list, progress=progress).items
        finally:
            if batch_runner is None:
                runner.close()  # release the worker pool of a runner we own

        extension = InstructionSetExtension(application=application_name)
        block_results: List[BlockResult] = []
        instruction_index = 0

        with obs.tracer().span("ise.score_select", cat="ise"):
            for item in items:
                if item.error is not None:
                    raise RuntimeError(
                        f"enumeration failed for block {item.graph_name!r}: "
                        f"{item.error}"
                    )
                context = item.context or runner.cache.get(item.graph, constraints)
                if item.result is None:  # timed out: the block stays in software
                    block_results.append(
                        BlockResult(
                            graph_name=item.graph_name,
                            execution_count=item.execution_count,
                            num_candidate_cuts=0,
                            software_cycles=total_software_cycles(
                                context, latency_model
                            ),
                        )
                    )
                    continue
                scored = score_cuts(
                    item.result.cuts,
                    context,
                    execution_count=item.execution_count,
                    model=latency_model,
                )
                selected = select_cuts(scored, selection)
                result = BlockResult(
                    graph_name=item.graph_name,
                    execution_count=item.execution_count,
                    num_candidate_cuts=len(item.result.cuts),
                    selected=selected,
                    software_cycles=total_software_cycles(context, latency_model),
                    saved_cycles=sum(s.saved_cycles_per_execution for s in selected),
                )
                block_results.append(result)
                for scored_cut in selected:
                    extension.instructions.append(
                        make_instruction(
                            f"cust{instruction_index}",
                            scored_cut,
                            context,
                            latency_model,
                        )
                    )
                    instruction_index += 1

        outcome = PipelineResult(extension=extension, blocks=block_results)
        metrics = obs.metrics()
        metrics.inc(
            "ise.instructions_selected_total", len(extension.instructions)
        )
        metrics.inc("ise.blocks_total", len(block_results))
        metrics.set_gauge("ise.application_speedup", outcome.application_speedup)
        pipeline_span.note(
            instructions=len(extension.instructions),
            speedup=round(outcome.application_speedup, 4),
        )
    return outcome
