"""Selection of a non-overlapping subset of the enumerated cuts.

Enumerating all valid cuts is the paper's contribution; turning them into an
instruction set extension additionally requires choosing which cuts to
implement.  Exact selection is NP-hard once more than one instruction is
allowed (the paper cites [15] on this), so the standard approaches are:

* **greedy selection** — repeatedly pick the cut with the highest weighted
  gain that does not overlap the already selected ones (and, optionally, still
  fits in the remaining area budget);
* **iterative / knapsack-aware selection** — the same greedy loop driven by
  gain density (gain per unit area) when an area budget is the binding
  constraint, which corresponds to the classic fractional-knapsack heuristic.

Both operate on :class:`~repro.ise.speedup.ScoredCut` objects and return the
selected subset in selection order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

from .speedup import ScoredCut


@dataclass(frozen=True)
class SelectionConfig:
    """Parameters of the selection pass.

    Attributes
    ----------
    max_instructions:
        Upper bound on the number of custom instructions (``None`` = no bound).
        Commercial flows typically restrict this to a handful per application.
    area_budget:
        Total area available for custom functional units, in the same relative
        units as :func:`repro.ise.latency.cut_area` (``None`` = unlimited).
    by_density:
        When ``True`` cuts are ranked by gain density (gain / area) instead of
        raw gain, which is the better heuristic under a tight area budget.
    """

    max_instructions: Optional[int] = None
    area_budget: Optional[float] = None
    by_density: bool = False


def select_cuts(
    scored_cuts: Iterable[ScoredCut],
    config: SelectionConfig = SelectionConfig(),
) -> List[ScoredCut]:
    """Greedy non-overlapping selection of custom instructions.

    The input does not need to be sorted; cuts with non-positive gain are
    never selected.
    """
    candidates = [entry for entry in scored_cuts if entry.weighted_gain > 0]
    # Ties are broken by the cut's vertex set, not by list position, so the
    # selection is independent of discovery order — a result rebuilt from the
    # memoization store (whose cuts may arrive in an isomorphic writer's
    # order) selects the same instructions as a direct enumeration.
    if config.by_density:
        candidates.sort(
            key=lambda entry: (-entry.gain_per_area, entry.cut.sorted_nodes())
        )
    else:
        candidates.sort(
            key=lambda entry: (-entry.weighted_gain, entry.cut.sorted_nodes())
        )

    selected: List[ScoredCut] = []
    used_vertices: set = set()
    remaining_area = config.area_budget

    for entry in candidates:
        if config.max_instructions is not None and len(selected) >= config.max_instructions:
            break
        if entry.cut.nodes & used_vertices:
            continue
        if remaining_area is not None and entry.area > remaining_area:
            continue
        selected.append(entry)
        used_vertices |= entry.cut.nodes
        if remaining_area is not None:
            remaining_area -= entry.area
    return selected


def selection_covers(selected: Iterable[ScoredCut]) -> set:
    """Union of the vertices covered by the selected cuts (for reporting/tests)."""
    covered: set = set()
    for entry in selected:
        covered |= entry.cut.nodes
    return covered


def is_disjoint_selection(selected: List[ScoredCut]) -> bool:
    """``True`` if no two selected cuts share a vertex (selection invariant)."""
    seen: set = set()
    for entry in selected:
        if entry.cut.nodes & seen:
            return False
        seen |= entry.cut.nodes
    return True
