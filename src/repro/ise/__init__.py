"""Instruction-set-extension layer built on top of the enumeration core.

Latency models, cut merit (speedup) estimation, greedy/density-based selection
of non-overlapping custom instructions, and the end-to-end identification
pipeline that the paper's compiler toolchain uses the enumeration for.
"""

from .isa import CustomInstruction, InstructionSetExtension, make_instruction
from .latency import DEFAULT_LATENCY_MODEL, LatencyModel, cut_area, total_software_cycles
from .pipeline import (
    BlockProfile,
    BlockResult,
    PipelineResult,
    identify_instruction_set_extension,
)
from .selection import SelectionConfig, is_disjoint_selection, select_cuts, selection_covers
from .speedup import ScoredCut, estimate_block_speedup, score_cut, score_cuts

__all__ = [
    "CustomInstruction",
    "InstructionSetExtension",
    "make_instruction",
    "DEFAULT_LATENCY_MODEL",
    "LatencyModel",
    "cut_area",
    "total_software_cycles",
    "BlockProfile",
    "BlockResult",
    "PipelineResult",
    "identify_instruction_set_extension",
    "SelectionConfig",
    "is_disjoint_selection",
    "select_cuts",
    "selection_covers",
    "ScoredCut",
    "estimate_block_speedup",
    "score_cut",
    "score_cuts",
]
