"""Description of the extended instruction set produced by the ISE pipeline.

Once cuts have been enumerated, scored and selected, each selected cut becomes
a :class:`CustomInstruction`: a named opcode with an operand/result signature
(bounded by the register-file port constraints) and a latency.  The collection
of custom instructions generated for an application is an
:class:`InstructionSetExtension`, which can be rendered as a human-readable
datasheet — the artefact a designer would hand to the RTL implementation team
of a Tensilica/ARC-style customizable core.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Sequence

from ..core.context import EnumerationContext
from ..core.cut import Cut
from .latency import DEFAULT_LATENCY_MODEL, LatencyModel
from .speedup import ScoredCut


@dataclass(frozen=True)
class CustomInstruction:
    """One custom instruction of the extension.

    Attributes
    ----------
    name:
        Mnemonic assigned to the instruction (e.g. ``cust0``).
    cut:
        The data-flow subgraph the instruction implements.
    num_operands / num_results:
        Register-file reads and writes of the instruction.
    latency_cycles:
        Latency of the instruction on the extended processor.
    saved_cycles:
        Cycles saved per execution compared with the software sequence.
    opcodes:
        Multiset (sorted list) of the operation opcodes fused into the
        instruction, for documentation.
    """

    name: str
    cut: Cut
    num_operands: int
    num_results: int
    latency_cycles: int
    saved_cycles: float
    opcodes: Sequence[str]

    def describe(self) -> str:
        """One-line datasheet entry."""
        ops = ", ".join(self.opcodes)
        return (
            f"{self.name}: {self.num_operands} in / {self.num_results} out, "
            f"{self.latency_cycles} cycle(s), saves {self.saved_cycles:.1f} "
            f"cycles/exec [{ops}]"
        )


@dataclass
class InstructionSetExtension:
    """A set of custom instructions generated for one application."""

    application: str
    instructions: List[CustomInstruction] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self):
        return iter(self.instructions)

    def total_saved_cycles(self) -> float:
        """Cycles saved per execution of the covered basic blocks."""
        return sum(instr.saved_cycles for instr in self.instructions)

    def datasheet(self) -> str:
        """Multi-line human-readable description of the extension."""
        lines = [f"Instruction set extension for {self.application!r} "
                 f"({len(self.instructions)} instructions)"]
        for instr in self.instructions:
            lines.append("  " + instr.describe())
        return "\n".join(lines)


def make_instruction(
    name: str,
    scored: ScoredCut,
    context: EnumerationContext,
    model: LatencyModel = DEFAULT_LATENCY_MODEL,
) -> CustomInstruction:
    """Turn a scored cut into a :class:`CustomInstruction` record."""
    cut = scored.cut
    graph = context.augmented.graph
    opcodes = sorted(graph.node(v).opcode.value for v in cut.nodes)
    return CustomInstruction(
        name=name,
        cut=cut,
        num_operands=cut.num_inputs,
        num_results=cut.num_outputs,
        latency_cycles=max(1, int(math.ceil(scored.hardware_cycles))),
        saved_cycles=scored.saved_cycles_per_execution,
        opcodes=opcodes,
    )
