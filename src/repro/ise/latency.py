"""Latency models for custom-instruction merit estimation.

The paper defers speedup evaluation to prior work ([4], [7], [10]); this module
implements the standard model those papers use so that the enumerated cuts can
be turned into an actual instruction-set extension:

* **software cost** of a cut: the sum of the software latencies of its
  operations — the cycles the baseline processor spends executing them one by
  one;
* **hardware latency** of a cut: the length, in normalised operator delays, of
  the critical path through the cut when it is implemented as a single
  combinational datapath inside a custom functional unit, rounded up to an
  integer number of processor cycles;
* **transfer cost**: extra cycles needed when the cut needs more operands or
  results than the register file ports of the base ISA can provide in one
  instruction (Atasu et al. model each extra pair of reads or extra write as
  one additional cycle).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from ..core.context import EnumerationContext
from ..core.cut import Cut
from ..dfg.opcodes import hardware_latency, software_latency


@dataclass(frozen=True)
class LatencyModel:
    """Parameters of the software/hardware timing model.

    Attributes
    ----------
    base_isa_read_ports:
        Register-file read ports a standard instruction can use (2 in a
        classic RISC ISA).
    base_isa_write_ports:
        Register-file write ports a standard instruction can use (1).
    cycles_per_extra_transfer:
        Cycles charged for every operand read beyond the base read ports and
        every result write beyond the base write ports.
    hw_cycle_granularity:
        The hardware critical path is rounded up to a multiple of this
        fraction of a cycle (1.0 reproduces the whole-cycle rounding used by
        Atasu et al.).
    """

    base_isa_read_ports: int = 2
    base_isa_write_ports: int = 1
    cycles_per_extra_transfer: float = 1.0
    hw_cycle_granularity: float = 1.0

    # ------------------------------------------------------------------ #
    def software_cost(self, cut: Cut, context: EnumerationContext) -> float:
        """Cycles spent by the baseline processor executing the cut's operations."""
        graph = context.augmented.graph
        return sum(software_latency(graph.node(v).opcode) for v in cut.nodes)

    def hardware_critical_path(self, cut: Cut, context: EnumerationContext) -> float:
        """Normalised delay of the longest path through the cut's datapath."""
        graph = context.augmented.graph
        mask = cut.node_mask()
        order = [v for v in graph.topological_order() if (mask >> v) & 1]
        finish: Dict[int, float] = {}
        longest = 0.0
        for vertex in order:
            delay = hardware_latency(graph.node(vertex).opcode)
            start = 0.0
            for pred in context.predecessor_lists[vertex]:
                if (mask >> pred) & 1 and finish.get(pred, 0.0) > start:
                    start = finish[pred]
            finish[vertex] = start + delay
            if finish[vertex] > longest:
                longest = finish[vertex]
        return longest

    def hardware_cost(self, cut: Cut, context: EnumerationContext) -> float:
        """Cycles the custom instruction takes, including I/O transfer overhead."""
        critical = self.hardware_critical_path(cut, context)
        granularity = self.hw_cycle_granularity
        compute_cycles = max(
            granularity, math.ceil(critical / granularity) * granularity
        )
        extra_reads = max(0, cut.num_inputs - self.base_isa_read_ports)
        extra_writes = max(0, cut.num_outputs - self.base_isa_write_ports)
        transfer_cycles = self.cycles_per_extra_transfer * (extra_reads + extra_writes)
        return compute_cycles + transfer_cycles

    def saved_cycles(self, cut: Cut, context: EnumerationContext) -> float:
        """Cycles saved each time the custom instruction replaces the cut."""
        return self.software_cost(cut, context) - self.hardware_cost(cut, context)


DEFAULT_LATENCY_MODEL = LatencyModel()


def total_software_cycles(context: EnumerationContext, model: LatencyModel = DEFAULT_LATENCY_MODEL) -> float:
    """Software cycles of the whole basic block (all operation vertices)."""
    graph = context.original_graph
    return sum(
        software_latency(node.opcode) for node in graph.nodes() if node.is_operation
    )


def cut_area(cut: Cut, context: EnumerationContext) -> float:
    """Relative silicon area of the cut's datapath (sum of operator areas)."""
    from ..dfg.opcodes import area_cost

    graph = context.augmented.graph
    return sum(area_cost(graph.node(v).opcode) for v in cut.nodes)
