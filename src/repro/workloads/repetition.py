"""Repetition-heavy synthetic blocks: the in-search memo's target workload.

The frontend corpus that motivates :mod:`repro.memo.insearch` is dominated
by *tiled* computation — the same 4–8-operation idiom (a multiply-accumulate
step, an unpack/mask sequence, a rotate-xor mixing round) stamped out many
times per basic block by loop unrolling and vectorization.  The generic
:mod:`repro.workloads.synthetic` generator draws every operation
independently and therefore almost never produces that shape, so this module
provides it deliberately:

* :func:`generate_repetition_block` tiles one fixed idiom ``repetitions``
  times into a single block, chaining consecutive tiles through a
  carried-accumulator edge (like an unrolled reduction loop) so the block is
  connected but every tile's local wiring is identical;
* :func:`repetition_suite` builds a whole :class:`WorkloadSuite` of such
  blocks — several idioms, several copies per idiom with *distinct names* —
  which exercises both memo axes at once: repeated structure inside each
  block and repeated block shapes across the suite.

Blocks are deterministic functions of their parameters (no randomness), so
benchmark runs are exactly reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..dfg.graph import DataFlowGraph
from ..dfg.opcodes import Opcode

#: One idiom: a list of (opcode, operand slots).  A slot is either ``"in"``
#: (one of the tile's external operands), ``"acc"`` (the value carried from
#: the previous tile), or a non-negative int (the output of that earlier
#: step of the *same* tile).  The last step's value is carried to the next
#: tile as its ``"acc"`` operand.
Idiom = Tuple[Tuple[Opcode, Tuple[object, ...]], ...]

#: The built-in 4–8-operation idioms, modeled on the kernels the ISE papers
#: profile (dot products, bit-field unpacking, hash/cipher mixing rounds,
#: saturation clamps).
IDIOMS: Dict[str, Idiom] = {
    # acc' = acc + (a * b) — the unrolled dot-product step.
    "mac": (
        (Opcode.MUL, ("in", "in")),
        (Opcode.ADD, (0, "acc")),
    ),
    # Unpack a field and merge it: ((a >> b) & c) | acc.
    "unpack": (
        (Opcode.SHR, ("in", "in")),
        (Opcode.AND, (0, "in")),
        (Opcode.OR, (1, "acc")),
    ),
    # One mixing round: acc' = rol(acc ^ a, b) + (a & c).
    "mix": (
        (Opcode.XOR, ("acc", "in")),
        (Opcode.ROL, (0, "in")),
        (Opcode.AND, ("in", "in")),
        (Opcode.ADD, (1, 2)),
    ),
    # Saturating accumulate: acc' = min(max(acc + a, b), c) with the bound
    # comparisons kept as data (select-style lowering).
    "clamp": (
        (Opcode.ADD, ("acc", "in")),
        (Opcode.MAX, (0, "in")),
        (Opcode.MIN, (1, "in")),
        (Opcode.XOR, (2, "in")),
        (Opcode.SUB, (3, 0)),
    ),
}


@dataclass(frozen=True)
class RepetitionBlockSpec:
    """Parameters of one tiled block (deterministic — no random seed)."""

    idiom: str = "mac"
    repetitions: int = 8
    #: External operands shared by all tiles (loop-invariant values); the
    #: remaining ``"in"`` slots rotate through this pool, so tiles reuse
    #: inputs the way unrolled code reuses coefficients and masks.
    num_external_inputs: int = 4
    name: str = ""

    def block_name(self) -> str:
        return self.name or f"rep_{self.idiom}_x{self.repetitions}"


def generate_repetition_block(spec: RepetitionBlockSpec) -> DataFlowGraph:
    """Tile ``spec.idiom`` ``spec.repetitions`` times into one block.

    Every tile has identical local wiring; consecutive tiles are chained
    through the carried accumulator, and the final accumulator is the
    block's live-out value.
    """
    steps = IDIOMS.get(spec.idiom)
    if steps is None:
        raise ValueError(
            f"unknown idiom {spec.idiom!r}; available: {sorted(IDIOMS)}"
        )
    if spec.repetitions < 1:
        raise ValueError(f"repetitions must be >= 1, got {spec.repetitions}")
    if spec.num_external_inputs < 1:
        raise ValueError(
            f"num_external_inputs must be >= 1, got {spec.num_external_inputs}"
        )
    graph = DataFlowGraph(name=spec.block_name())
    externals = [
        graph.add_node(Opcode.INPUT, name=f"x{i}")
        for i in range(spec.num_external_inputs)
    ]
    acc = graph.add_node(Opcode.INPUT, name="acc0")
    next_external = 0
    for tile in range(spec.repetitions):
        produced: List[int] = []
        for opcode, slots in steps:
            node = graph.add_node(opcode, name=f"t{tile}_{opcode.value}")
            operands: List[int] = []
            for slot in slots:
                if slot == "in":
                    operands.append(externals[next_external % len(externals)])
                    next_external += 1
                elif slot == "acc":
                    operands.append(acc)
                else:
                    operands.append(produced[int(slot)])
            for operand in dict.fromkeys(operands):
                graph.add_edge(operand, node)
            produced.append(node)
        acc = produced[-1]
    graph.node(acc).live_out = True
    return graph


def repetition_suite(
    idioms: Sequence[str] = ("mac", "unpack", "mix"),
    copies_per_idiom: int = 3,
    repetitions: int = 8,
    num_external_inputs: int = 4,
    name: str = "repetition",
) -> "WorkloadSuite":
    """A suite of tiled blocks: *copies_per_idiom* renamed copies per idiom.

    The copies are structurally identical and differ only in name, the
    cross-block shape the in-search memo's domain sharding recognizes (and
    whole-block canonicalization also dedups — deliberately, so benchmarks
    can contrast the two layers on the same input).
    """
    from .suite import WorkloadSuite

    suite = WorkloadSuite(name=name)
    for idiom in idioms:
        for copy in range(copies_per_idiom):
            suite.add(
                generate_repetition_block(
                    RepetitionBlockSpec(
                        idiom=idiom,
                        repetitions=repetitions,
                        num_external_inputs=num_external_inputs,
                        name=f"rep_{idiom}_x{repetitions}_c{copy}",
                    )
                )
            )
    return suite
