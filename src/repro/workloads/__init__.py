"""Workload substrate: the basic blocks the experiments run on.

MiBench itself is not redistributable here, so the suite is synthesised from
(a) hand-written DFGs of the kernels MiBench is built around, (b) a seeded
random basic-block generator with embedded-code statistics, and (c) the
tree-shaped worst-case graphs of Figure 4.  See DESIGN.md for the substitution
rationale.
"""

from .kernels import KERNEL_FACTORIES, all_kernels, build_kernel, kernel_names
from .mibench_like import (
    SIZE_CLUSTERS,
    SuiteConfig,
    build_suite,
    paper_scale_suite,
    size_cluster,
)
from .repetition import (
    IDIOMS,
    RepetitionBlockSpec,
    generate_repetition_block,
    repetition_suite,
)
from .suite import WorkloadSuite
from .synthetic import (
    DEFAULT_OPCODE_MIX,
    SyntheticBlockSpec,
    generate_basic_block,
    generate_suite,
    random_small_dag,
)
from .trees import inverted_tree_dfg, paper_tree_suite, tree_dfg

__all__ = [
    "KERNEL_FACTORIES",
    "all_kernels",
    "build_kernel",
    "kernel_names",
    "SIZE_CLUSTERS",
    "SuiteConfig",
    "build_suite",
    "paper_scale_suite",
    "size_cluster",
    "WorkloadSuite",
    "IDIOMS",
    "RepetitionBlockSpec",
    "generate_repetition_block",
    "repetition_suite",
    "DEFAULT_OPCODE_MIX",
    "SyntheticBlockSpec",
    "generate_basic_block",
    "generate_suite",
    "random_small_dag",
    "inverted_tree_dfg",
    "paper_tree_suite",
    "tree_dfg",
]
