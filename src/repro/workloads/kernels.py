"""Hand-written data-flow graphs of classic embedded kernels.

MiBench — the benchmark suite the paper extracts its basic blocks from — is
built around well-known embedded kernels (CRC, ADPCM, SHA, Rijndael, FFT/DCT
arithmetic, ...).  This module reconstructs representative inner-loop basic
blocks of those kernels by hand, at the data-flow level, so that the examples
and the ISE pipeline run on recognisable, realistic computations rather than
purely random graphs.

Each factory returns an independent :class:`~repro.dfg.graph.DataFlowGraph`.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..dfg.builder import DFGBuilder
from ..dfg.graph import DataFlowGraph
from ..dfg.opcodes import Opcode


def crc32_step() -> DataFlowGraph:
    """One table-less CRC-32 bit step: ``crc = (crc >> 1) ^ (poly & -(crc & 1 ^ bit))``."""
    b = DFGBuilder("crc32_step")
    crc = b.input("crc")
    data = b.input("data")
    poly = b.const("poly")
    one = b.const("1")
    bit = b.and_(data, one, name="data_bit")
    lsb = b.and_(crc, one, name="crc_lsb")
    t = b.xor(lsb, bit, name="t")
    mask = b.op(Opcode.NEG, t, name="mask")
    sel = b.and_(poly, mask, name="poly_or_zero")
    shifted = b.shr(crc, one, name="crc_shift")
    out = b.xor(shifted, sel, name="crc_next", live_out=True)
    b.mark_live_out(out)
    return b.build()


def adpcm_decode_step() -> DataFlowGraph:
    """ADPCM (IMA) decoder inner step: delta reconstruction and predictor update."""
    b = DFGBuilder("adpcm_decode_step")
    delta = b.input("delta")
    step = b.input("step")
    valpred = b.input("valpred")
    c4 = b.const("4")
    c2 = b.const("2")
    c1 = b.const("1")
    c3 = b.const("3")
    # vpdiff = step >> 3 + ((delta&4)? step : 0) + ((delta&2)? step>>1 : 0) + ...
    s3 = b.shr(step, c3, name="step_s3")
    d4 = b.and_(delta, c4, name="d4")
    m4 = b.op(Opcode.NE, d4, c4, name="m4")
    t4 = b.op(Opcode.SELECT, m4, s3, step, name="t4")
    s1 = b.shr(step, c1, name="step_s1")
    d2 = b.and_(delta, c2, name="d2")
    m2 = b.op(Opcode.NE, d2, c2, name="m2")
    t2 = b.op(Opcode.SELECT, m2, t4, s1, name="t2")
    vpdiff = b.add(t4, t2, name="vpdiff")
    d8 = b.and_(delta, b.const("8"), name="sign")
    neg = b.sub(valpred, vpdiff, name="val_minus")
    pos = b.add(valpred, vpdiff, name="val_plus")
    sel = b.op(Opcode.SELECT, d8, neg, pos, name="valpred_next")
    clipped = b.op(Opcode.MAX, b.op(Opcode.MIN, sel, b.const("32767")), b.const("-32768"),
                   name="valpred_clipped", live_out=True)
    b.mark_live_out(clipped)
    return b.build()


def sha1_round() -> DataFlowGraph:
    """One SHA-1 compression round (rotate/xor/add mix on the five state words)."""
    b = DFGBuilder("sha1_round")
    a, bb, c, d, e = b.inputs("a", "b", "c", "d", "e")
    w = b.input("w_t")
    k = b.const("k_t")
    c5 = b.const("5")
    c30 = b.const("30")
    rot_a = b.op(Opcode.ROL, a, c5, name="rol5_a")
    f = b.xor(b.xor(bb, c, name="bxc"), d, name="f_parity")
    t1 = b.add(rot_a, f, name="t1")
    t2 = b.add(t1, e, name="t2")
    t3 = b.add(t2, w, name="t3")
    temp = b.add(t3, k, name="temp", live_out=True)
    new_c = b.op(Opcode.ROL, bb, c30, name="rol30_b", live_out=True)
    b.mark_live_out(temp, new_c)
    return b.build()


def aes_mix_column() -> DataFlowGraph:
    """AES MixColumns on one column (xtime/xor network over four state bytes)."""
    b = DFGBuilder("aes_mix_column")
    s0, s1, s2, s3 = b.inputs("s0", "s1", "s2", "s3")
    poly = b.const("0x1b")
    c1 = b.const("1")
    c7 = b.const("7")

    def xtime(x: int, tag: str) -> int:
        hi = b.shr(x, c7, name=f"hi_{tag}")
        mask = b.op(Opcode.NEG, hi, name=f"mask_{tag}")
        reduced = b.and_(mask, poly, name=f"red_{tag}")
        doubled = b.shl(x, c1, name=f"dbl_{tag}")
        return b.xor(doubled, reduced, name=f"xtime_{tag}")

    t = b.xor(b.xor(s0, s1, name="t01"), b.xor(s2, s3, name="t23"), name="t_all")
    x0 = xtime(b.xor(s0, s1, name="s01"), "0")
    out0 = b.xor(b.xor(s0, x0, name="o0a"), t, name="out0", live_out=True)
    x1 = xtime(b.xor(s1, s2, name="s12"), "1")
    out1 = b.xor(b.xor(s1, x1, name="o1a"), t, name="out1", live_out=True)
    b.mark_live_out(out0, out1)
    return b.build()


def fir_tap_pair() -> DataFlowGraph:
    """Two taps of a FIR filter with loads of samples and coefficients."""
    b = DFGBuilder("fir_tap_pair")
    sample_ptr = b.input("sample_ptr")
    coeff_ptr = b.input("coeff_ptr")
    acc = b.input("acc")
    c4 = b.const("4")
    s0 = b.load(sample_ptr, name="s0")
    c0 = b.load(coeff_ptr, name="c0")
    p0 = b.mul(s0, c0, name="p0")
    acc1 = b.add(acc, p0, name="acc1")
    sp1 = b.add(sample_ptr, c4, name="sp1")
    cp1 = b.add(coeff_ptr, c4, name="cp1")
    s1 = b.load(sp1, name="s1")
    c1 = b.load(cp1, name="c1")
    p1 = b.mul(s1, c1, name="p1")
    acc2 = b.add(acc1, p1, name="acc2", live_out=True)
    b.mark_live_out(acc2, sp1, cp1)
    return b.build()


def dct_butterfly() -> DataFlowGraph:
    """A scaled DCT butterfly (add/sub plus two fixed-point multiplies)."""
    b = DFGBuilder("dct_butterfly")
    x0, x1 = b.inputs("x0", "x1")
    w0 = b.const("w0")
    w1 = b.const("w1")
    c15 = b.const("15")
    s = b.add(x0, x1, name="sum")
    d = b.sub(x0, x1, name="diff")
    m0 = b.mul(s, w0, name="m0")
    m1 = b.mul(d, w1, name="m1")
    r0 = b.op(Opcode.SAR, m0, c15, name="r0", live_out=True)
    r1 = b.op(Opcode.SAR, m1, c15, name="r1", live_out=True)
    b.mark_live_out(r0, r1)
    return b.build()


def blowfish_feistel() -> DataFlowGraph:
    """Blowfish Feistel function: four S-box lookups combined with add/xor."""
    b = DFGBuilder("blowfish_feistel")
    x = b.input("x")
    sbox0, sbox1, sbox2, sbox3 = (b.input(f"sbox{i}_base") for i in range(4))
    c24 = b.const("24")
    c16 = b.const("16")
    c8 = b.const("8")
    mask = b.const("0xff")
    a = b.and_(b.shr(x, c24, name="xa"), mask, name="ia")
    bb = b.and_(b.shr(x, c16, name="xb"), mask, name="ib")
    c = b.and_(b.shr(x, c8, name="xc"), mask, name="ic")
    d = b.and_(x, mask, name="id")
    la = b.load(b.add(sbox0, a, name="addr_a"), name="sa")
    lb = b.load(b.add(sbox1, bb, name="addr_b"), name="sb")
    lc = b.load(b.add(sbox2, c, name="addr_c"), name="sc")
    ld = b.load(b.add(sbox3, d, name="addr_d"), name="sd")
    t0 = b.add(la, lb, name="t0")
    t1 = b.xor(t0, lc, name="t1")
    out = b.add(t1, ld, name="f_out", live_out=True)
    b.mark_live_out(out)
    return b.build()


def gsm_add_saturated() -> DataFlowGraph:
    """GSM saturated addition: ``sat(a + b)`` with overflow clamping."""
    b = DFGBuilder("gsm_add_saturated")
    a, bb = b.inputs("a", "b")
    max_c = b.const("32767")
    min_c = b.const("-32768")
    s = b.add(a, bb, name="sum")
    clipped_hi = b.op(Opcode.MIN, s, max_c, name="clip_hi")
    out = b.op(Opcode.MAX, clipped_hi, min_c, name="sat", live_out=True)
    b.mark_live_out(out)
    return b.build()


def bitcount_kernighan() -> DataFlowGraph:
    """Three unrolled iterations of Kernighan's bit-count loop."""
    b = DFGBuilder("bitcount")
    x = b.input("x")
    count = b.input("count")
    one = b.const("1")

    def step(value: int, counter: int, tag: str):
        minus = b.sub(value, one, name=f"m_{tag}")
        cleared = b.and_(value, minus, name=f"v_{tag}")
        bumped = b.add(counter, one, name=f"c_{tag}")
        return cleared, bumped

    v1, c1 = step(x, count, "1")
    v2, c2 = step(v1, c1, "2")
    v3, c3 = step(v2, c2, "3")
    b.mark_live_out(v3, c3)
    return b.build()


def rijndael_key_mix() -> DataFlowGraph:
    """Rijndael key schedule word mix (rotate, xor with round constant)."""
    b = DFGBuilder("rijndael_key_mix")
    w0, w3 = b.inputs("w0", "w3")
    rcon = b.const("rcon")
    c8 = b.const("8")
    c24 = b.const("24")
    rot = b.or_(b.shl(w3, c8, name="rot_l"), b.shr(w3, c24, name="rot_r"), name="rotword")
    mixed = b.xor(rot, rcon, name="with_rcon")
    out = b.xor(mixed, w0, name="w4", live_out=True)
    b.mark_live_out(out)
    return b.build()


def viterbi_acs() -> DataFlowGraph:
    """Viterbi add-compare-select butterfly (two path metrics, one decision)."""
    b = DFGBuilder("viterbi_acs")
    pm0, pm1 = b.inputs("pm0", "pm1")
    bm0, bm1 = b.inputs("bm0", "bm1")
    p00 = b.add(pm0, bm0, name="p00")
    p11 = b.add(pm1, bm1, name="p11")
    p01 = b.add(pm0, bm1, name="p01")
    p10 = b.add(pm1, bm0, name="p10")
    best_a = b.op(Opcode.MIN, p00, p11, name="best_a", live_out=True)
    best_b = b.op(Opcode.MIN, p01, p10, name="best_b", live_out=True)
    decision = b.op(Opcode.LT, p00, p11, name="decision", live_out=True)
    b.mark_live_out(best_a, best_b, decision)
    return b.build()


#: Registry of every hand-written kernel, keyed by name.
KERNEL_FACTORIES: Dict[str, Callable[[], DataFlowGraph]] = {
    "crc32_step": crc32_step,
    "adpcm_decode_step": adpcm_decode_step,
    "sha1_round": sha1_round,
    "aes_mix_column": aes_mix_column,
    "fir_tap_pair": fir_tap_pair,
    "dct_butterfly": dct_butterfly,
    "blowfish_feistel": blowfish_feistel,
    "gsm_add_saturated": gsm_add_saturated,
    "bitcount": bitcount_kernighan,
    "rijndael_key_mix": rijndael_key_mix,
    "viterbi_acs": viterbi_acs,
}


def kernel_names() -> List[str]:
    """Names of all available hand-written kernels."""
    return sorted(KERNEL_FACTORIES)


def build_kernel(name: str) -> DataFlowGraph:
    """Build the kernel called *name* (raises ``KeyError`` for unknown names)."""
    return KERNEL_FACTORIES[name]()


def all_kernels() -> List[DataFlowGraph]:
    """Build every hand-written kernel."""
    return [factory() for factory in KERNEL_FACTORIES.values()]
