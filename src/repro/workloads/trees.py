"""Tree-shaped worst-case data-flow graphs (Figure 4 of the paper).

The paper uses four synthetic, tree-shaped DFGs of depth 4 to 7 as the
worst case for the exhaustive enumeration algorithms of Atasu et al. [4] and
Pozzi et al. [15]: on such graphs the binary search space cannot be pruned
effectively and the run time of [4] can be shown to grow as ``O(1.6^n)``,
whereas the polynomial algorithm keeps its ``O(n^(Nin+Nout+1))`` bound.
"""

from __future__ import annotations

from typing import List

from ..dfg.graph import DataFlowGraph
from ..dfg.opcodes import Opcode


def tree_dfg(depth: int, opcode: Opcode = Opcode.ADD, name: str = "") -> DataFlowGraph:
    """Complete binary reduction tree of the given *depth*.

    The tree has ``2**depth`` external inputs at the leaves and ``2**depth - 1``
    operation vertices; the root of the reduction is the single live-out value.
    ``depth=4 .. 7`` reproduces the four synthetic graphs of the paper
    (31, 63, 127 and 255 vertices).
    """
    if depth < 1:
        raise ValueError("depth must be >= 1")
    graph = DataFlowGraph(name=name or f"tree_depth{depth}")
    level: List[int] = [
        graph.add_node(Opcode.INPUT, name=f"leaf{i}") for i in range(2 ** depth)
    ]
    while len(level) > 1:
        next_level: List[int] = []
        for index in range(0, len(level), 2):
            parent = graph.add_node(opcode)
            graph.add_edge(level[index], parent)
            graph.add_edge(level[index + 1], parent)
            next_level.append(parent)
        level = next_level
    graph.set_live_out(level[0], True)
    return graph


def paper_tree_suite() -> List[DataFlowGraph]:
    """The four tree-shaped graphs of the paper (depth 4 to 7)."""
    return [tree_dfg(depth) for depth in (4, 5, 6, 7)]


def inverted_tree_dfg(depth: int, opcode: Opcode = Opcode.XOR, name: str = "") -> DataFlowGraph:
    """Fan-out (broadcast) tree: one input value expanded into ``2**depth`` results.

    The mirror image of :func:`tree_dfg`; useful as an additional stress case
    for the output-constrained part of the search.
    """
    if depth < 1:
        raise ValueError("depth must be >= 1")
    graph = DataFlowGraph(name=name or f"inv_tree_depth{depth}")
    root_input = graph.add_node(Opcode.INPUT, name="in")
    seed_const = graph.add_node(Opcode.CONSTANT, name="c")
    level = [graph.add_node(opcode, name="root")]
    graph.add_edge(root_input, level[0])
    graph.add_edge(seed_const, level[0])
    for _ in range(depth - 1):
        next_level = []
        for vertex in level:
            left = graph.add_node(opcode)
            right = graph.add_node(opcode)
            graph.add_edge(vertex, left)
            graph.add_edge(vertex, right)
            graph.add_edge(seed_const, left)
            graph.add_edge(root_input, right)
            next_level.extend((left, right))
        level = next_level
    for vertex in level:
        graph.set_live_out(vertex, True)
    return graph
