"""Workload-suite container with save/load support.

Benchmark runs should be reproducible: a :class:`WorkloadSuite` couples a list
of named data-flow graphs with the metadata needed to regenerate or reload
them, and can be serialised to a directory of JSON files.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

from ..dfg.graph import DataFlowGraph
from ..dfg.serialization import graph_from_dict, graph_to_dict


@dataclass
class WorkloadSuite:
    """A named, ordered collection of basic blocks.

    Graph names are unique within a suite: they are the keys benchmark
    reports and batch results are joined on, so :meth:`add` rejects
    duplicates, and :meth:`by_name` resolves through a name index instead of
    scanning the graph list.
    """

    name: str
    graphs: List[DataFlowGraph] = field(default_factory=list)
    metadata: Dict[str, object] = field(default_factory=dict)
    _index: Dict[str, DataFlowGraph] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        initial, self.graphs = list(self.graphs), []
        for graph in initial:
            self.add(graph)

    def __len__(self) -> int:
        return len(self.graphs)

    def __iter__(self) -> Iterator[DataFlowGraph]:
        return iter(self.graphs)

    def add(self, graph: DataFlowGraph) -> None:
        """Append a graph to the suite (its name must be unused)."""
        if graph.name in self._index:
            raise ValueError(
                f"suite {self.name!r} already contains a graph named {graph.name!r}"
            )
        self.graphs.append(graph)
        self._index[graph.name] = graph

    def by_name(self, graph_name: str) -> DataFlowGraph:
        """Return the graph called *graph_name* (raises ``KeyError`` if absent)."""
        return self._index[graph_name]

    def sizes(self) -> List[int]:
        """Operation counts of the suite's graphs, in order."""
        return [len(graph.operation_nodes()) for graph in self.graphs]

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    def save(self, directory: Union[str, Path]) -> None:
        """Write the suite to *directory* (one JSON file per graph plus an index)."""
        path = Path(directory)
        path.mkdir(parents=True, exist_ok=True)
        index = {
            "name": self.name,
            "metadata": self.metadata,
            "graphs": [],
        }
        for position, graph in enumerate(self.graphs):
            filename = f"{position:04d}_{graph.name}.json"
            (path / filename).write_text(
                json.dumps(graph_to_dict(graph), indent=1), encoding="utf-8"
            )
            index["graphs"].append(filename)
        (path / "suite.json").write_text(json.dumps(index, indent=2), encoding="utf-8")

    @classmethod
    def load(cls, directory: Union[str, Path]) -> "WorkloadSuite":
        """Load a suite previously written by :meth:`save`."""
        path = Path(directory)
        index = json.loads((path / "suite.json").read_text(encoding="utf-8"))
        suite = cls(name=index["name"], metadata=index.get("metadata", {}))
        for filename in index["graphs"]:
            data = json.loads((path / filename).read_text(encoding="utf-8"))
            suite.add(graph_from_dict(data))
        return suite
