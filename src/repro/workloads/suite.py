"""Workload-suite container with save/load support.

Benchmark runs should be reproducible: a :class:`WorkloadSuite` couples a list
of named data-flow graphs with the metadata needed to regenerate or reload
them, and can be serialised to a directory of JSON files.

Profiled corpora (e.g. the compiler frontend's
:func:`repro.frontend.corpus.build_corpus_suite`) additionally carry a
per-graph **execution count** — the weight the ISE pipeline uses to rank
custom-instruction candidates.  Counts round-trip through :meth:`save` /
:meth:`load` (index schema version 2); suites written by older builds (no
schema version, graph entries as bare filenames) still load, with every count
defaulting to 1.0.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

from ..dfg.graph import DataFlowGraph
from ..dfg.serialization import graph_from_dict, graph_to_dict

#: Version of the ``suite.json`` index schema written by :meth:`WorkloadSuite.save`.
SUITE_SCHEMA_VERSION = 2

#: Index schema versions :meth:`WorkloadSuite.load` knows how to read.
SUPPORTED_SUITE_SCHEMA_VERSIONS = frozenset({1, 2})


@dataclass
class WorkloadSuite:
    """A named, ordered collection of basic blocks.

    Graph names are unique within a suite: they are the keys benchmark
    reports and batch results are joined on, so :meth:`add` rejects
    duplicates, and :meth:`by_name` resolves through a name index instead of
    scanning the graph list.  ``execution_counts`` maps graph names to
    profiled execution counts; graphs without an entry default to 1.0.
    """

    name: str
    graphs: List[DataFlowGraph] = field(default_factory=list)
    metadata: Dict[str, object] = field(default_factory=dict)
    execution_counts: Dict[str, float] = field(default_factory=dict)
    _index: Dict[str, DataFlowGraph] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        initial, self.graphs = list(self.graphs), []
        for graph in initial:
            self.add(graph)

    def __len__(self) -> int:
        return len(self.graphs)

    def __iter__(self) -> Iterator[DataFlowGraph]:
        return iter(self.graphs)

    def add(self, graph: DataFlowGraph, execution_count: Optional[float] = None) -> None:
        """Append a graph to the suite (its name must be unused)."""
        if graph.name in self._index:
            raise ValueError(
                f"suite {self.name!r} already contains a graph named {graph.name!r}"
            )
        self.graphs.append(graph)
        self._index[graph.name] = graph
        if execution_count is not None:
            self.execution_counts[graph.name] = float(execution_count)

    def by_name(self, graph_name: str) -> DataFlowGraph:
        """Return the graph called *graph_name* (raises ``KeyError`` if absent)."""
        return self._index[graph_name]

    def sizes(self) -> List[int]:
        """Operation counts of the suite's graphs, in order."""
        return [len(graph.operation_nodes()) for graph in self.graphs]

    # ------------------------------------------------------------------ #
    # Execution counts
    # ------------------------------------------------------------------ #
    def set_execution_count(self, graph_name: str, count: float) -> None:
        """Record the profiled execution count of *graph_name*."""
        if graph_name not in self._index:
            raise KeyError(
                f"suite {self.name!r} has no graph named {graph_name!r}"
            )
        self.execution_counts[graph_name] = float(count)

    def execution_count(self, graph_name: str, default: float = 1.0) -> float:
        """Execution count of *graph_name* (*default* when unprofiled)."""
        return float(self.execution_counts.get(graph_name, default))

    def profiled_blocks(self) -> List[tuple]:
        """``(graph, execution_count)`` pairs, the batch engine's input form."""
        return [
            (graph, self.execution_count(graph.name)) for graph in self.graphs
        ]

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    def save(self, directory: Union[str, Path]) -> None:
        """Write the suite to *directory* (one JSON file per graph plus an index)."""
        path = Path(directory)
        path.mkdir(parents=True, exist_ok=True)
        index: Dict[str, object] = {
            "schema_version": SUITE_SCHEMA_VERSION,
            "name": self.name,
            "metadata": self.metadata,
            "graphs": [],
        }
        entries: List[Dict[str, object]] = []
        for position, graph in enumerate(self.graphs):
            filename = f"{position:04d}_{graph.name}.json"
            (path / filename).write_text(
                json.dumps(graph_to_dict(graph), indent=1), encoding="utf-8"
            )
            entry: Dict[str, object] = {"file": filename}
            if graph.name in self.execution_counts:
                entry["execution_count"] = self.execution_counts[graph.name]
            entries.append(entry)
        index["graphs"] = entries
        (path / "suite.json").write_text(json.dumps(index, indent=2), encoding="utf-8")

    @classmethod
    def load(cls, directory: Union[str, Path]) -> "WorkloadSuite":
        """Load a suite previously written by :meth:`save`.

        Reads both the current index schema (version 2: graph entries are
        objects with ``file`` and optional ``execution_count``) and the
        legacy one (no ``schema_version``, entries are bare filenames).
        """
        path = Path(directory)
        index = json.loads((path / "suite.json").read_text(encoding="utf-8"))
        version = index.get("schema_version", 1)
        if version not in SUPPORTED_SUITE_SCHEMA_VERSIONS:
            supported = ", ".join(
                str(v) for v in sorted(SUPPORTED_SUITE_SCHEMA_VERSIONS)
            )
            raise ValueError(
                f"suite {index.get('name', path.name)!r}: unsupported suite "
                f"schema version {version!r} (this build reads version(s) "
                f"{supported}); regenerate the suite before loading"
            )
        suite = cls(name=index["name"], metadata=index.get("metadata", {}))
        for entry in index["graphs"]:
            if isinstance(entry, str):  # legacy v1: bare filename
                filename, count = entry, None
            else:
                filename = entry["file"]
                count = entry.get("execution_count")
            data = json.loads((path / filename).read_text(encoding="utf-8"))
            suite.add(graph_from_dict(data), execution_count=count)
        return suite
