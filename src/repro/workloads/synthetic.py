"""Seeded random basic-block generator.

The paper evaluates on 250 basic blocks extracted from compiled MiBench
programs (10 to 1196 vertices).  Those data-flow graphs are not distributed
with the paper, so this generator synthesises basic blocks with the structural
statistics that matter to the enumeration algorithms:

* a DAG whose operation vertices have fan-in 1–3 (mostly 2) drawn from a
  realistic embedded opcode mix (arithmetic/logic dominated, a configurable
  fraction of multiplies);
* a configurable density of memory operations, which become forbidden
  vertices exactly like in the paper's experiments;
* operand locality: an operation mostly consumes recently produced values,
  which yields the long dependence chains typical of compiler-generated
  straight-line code;
* a handful of external inputs (live-in registers / constants) and a few
  live-out values.

Every graph is produced from an explicit seed so workload suites are fully
reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..dfg.graph import DataFlowGraph
from ..dfg.opcodes import Opcode

#: Default opcode mix: (opcode, relative weight, arity).
DEFAULT_OPCODE_MIX: Sequence = (
    (Opcode.ADD, 20, 2),
    (Opcode.SUB, 10, 2),
    (Opcode.AND, 8, 2),
    (Opcode.OR, 6, 2),
    (Opcode.XOR, 8, 2),
    (Opcode.SHL, 7, 2),
    (Opcode.SHR, 7, 2),
    (Opcode.MUL, 6, 2),
    (Opcode.EQ, 3, 2),
    (Opcode.LT, 3, 2),
    (Opcode.SELECT, 3, 3),
    (Opcode.NOT, 3, 1),
    (Opcode.SEXT, 3, 1),
    (Opcode.ZEXT, 3, 1),
)


@dataclass(frozen=True)
class SyntheticBlockSpec:
    """Parameters of one synthetic basic block.

    Attributes
    ----------
    num_operations:
        Number of operation vertices (excluding external inputs).
    num_external_inputs:
        Number of live-in values feeding the block.
    memory_fraction:
        Fraction of operations that are loads/stores (forbidden vertices).
    store_fraction:
        Among memory operations, the fraction that are stores.
    locality:
        Number of most recent values an operation prefers as operands;
        smaller values produce deeper, narrower graphs.
    live_out_fraction:
        Fraction of non-sink operations additionally marked live-out.
    seed:
        Random seed (every block is deterministic given its spec).
    name:
        Optional block name.
    """

    num_operations: int
    num_external_inputs: int = 4
    memory_fraction: float = 0.15
    store_fraction: float = 0.3
    locality: int = 12
    live_out_fraction: float = 0.1
    seed: int = 0
    name: Optional[str] = None

    def __post_init__(self) -> None:
        if self.num_operations < 1:
            raise ValueError("num_operations must be >= 1")
        if self.num_external_inputs < 1:
            raise ValueError("num_external_inputs must be >= 1")
        if not 0.0 <= self.memory_fraction <= 1.0:
            raise ValueError("memory_fraction must be in [0, 1]")
        if not 0.0 <= self.store_fraction <= 1.0:
            raise ValueError("store_fraction must be in [0, 1]")
        if self.locality < 1:
            raise ValueError("locality must be >= 1")


def generate_basic_block(spec: SyntheticBlockSpec) -> DataFlowGraph:
    """Generate one synthetic basic block from *spec*."""
    rng = random.Random(spec.seed)
    name = spec.name or f"synthetic_n{spec.num_operations}_s{spec.seed}"
    graph = DataFlowGraph(name=name)

    producers: List[int] = []
    for index in range(spec.num_external_inputs):
        producers.append(graph.add_node(Opcode.INPUT, name=f"in{index}"))

    opcodes = [entry[0] for entry in DEFAULT_OPCODE_MIX]
    weights = [entry[1] for entry in DEFAULT_OPCODE_MIX]
    arities = {entry[0]: entry[2] for entry in DEFAULT_OPCODE_MIX}

    for index in range(spec.num_operations):
        if rng.random() < spec.memory_fraction:
            if rng.random() < spec.store_fraction and len(producers) >= 2:
                opcode, arity = Opcode.STORE, 2
            else:
                opcode, arity = Opcode.LOAD, 1
        else:
            opcode = rng.choices(opcodes, weights=weights, k=1)[0]
            arity = arities[opcode]
        node_id = graph.add_node(opcode, name=f"op{index}")
        pool = producers[-spec.locality :] if len(producers) > spec.locality else producers
        arity = min(arity, len(pool))
        for operand in rng.sample(pool, arity):
            graph.add_edge(operand, node_id)
        if opcode is not Opcode.STORE:
            producers.append(node_id)

    for vertex in graph.operation_nodes():
        node = graph.node(vertex)
        if node.opcode is Opcode.STORE:
            continue
        if graph.out_degree(vertex) and rng.random() < spec.live_out_fraction:
            graph.set_live_out(vertex, True)

    return graph


def generate_suite(
    sizes: Sequence[int],
    blocks_per_size: int = 1,
    base_seed: int = 2007,
    memory_fraction: float = 0.15,
) -> List[DataFlowGraph]:
    """Generate a list of synthetic blocks covering the requested sizes."""
    suite: List[DataFlowGraph] = []
    seed = base_seed
    for size in sizes:
        for _ in range(blocks_per_size):
            spec = SyntheticBlockSpec(
                num_operations=size,
                num_external_inputs=max(2, min(8, size // 6 + 2)),
                memory_fraction=memory_fraction,
                seed=seed,
            )
            suite.append(generate_basic_block(spec))
            seed += 1
    return suite


def random_small_dag(seed: int, num_operations: int = 8, memory_fraction: float = 0.2) -> DataFlowGraph:
    """Small random DAG helper used by the test-suite and hypothesis strategies."""
    spec = SyntheticBlockSpec(
        num_operations=num_operations,
        num_external_inputs=3,
        memory_fraction=memory_fraction,
        locality=6,
        live_out_fraction=0.15,
        seed=seed,
        name=f"small_{seed}",
    )
    return generate_basic_block(spec)
