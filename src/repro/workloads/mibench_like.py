"""A MiBench-like workload suite.

The paper's experimental section evaluates the enumeration algorithms on 250
basic blocks collected from MiBench, with sizes from 10 to 1196 vertices,
grouped in Figure 5 into three size clusters (10–79, 80–799, 800–1196) plus
the synthetic tree-shaped graphs.  MiBench itself (and the authors' GCC-based
DFG extractor) is not available offline, so this module builds a stand-in
suite with the same structure:

* the hand-written kernels of :mod:`repro.workloads.kernels` (each appearing
  once, exactly as written, and once "unrolled" by stitching several copies
  together, the way compilers create large basic blocks);
* seeded synthetic blocks from :mod:`repro.workloads.synthetic` covering a
  configurable size range.

Sizes are scaled down relative to the paper (pure-Python enumeration of a
1000-vertex block at Nin=4/Nout=2 is not practical), but the cluster structure
and the relative ordering are preserved so that the Figure 5 benchmark can be
reproduced shape-for-shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..dfg.graph import DataFlowGraph
from ..dfg.opcodes import Opcode
from .kernels import KERNEL_FACTORIES
from .synthetic import SyntheticBlockSpec, generate_basic_block
from .trees import paper_tree_suite, tree_dfg


@dataclass(frozen=True)
class SuiteConfig:
    """Configuration of the MiBench-like suite.

    Attributes
    ----------
    num_blocks:
        Total number of basic blocks (the paper uses 250; the default here is
        sized for Python-speed experiments).
    min_operations / max_operations:
        Size range of the synthetic blocks.
    include_kernels:
        Include the hand-written kernels (and their unrolled variants).
    include_trees:
        Append the four tree-shaped worst-case graphs of Figure 4.
    tree_depths:
        Depths of the appended trees.
    base_seed:
        Seed from which all synthetic blocks are derived.
    """

    num_blocks: int = 60
    min_operations: int = 10
    max_operations: int = 80
    include_kernels: bool = True
    include_trees: bool = True
    tree_depths: Sequence[int] = (4, 5)
    base_seed: int = 2007

    def __post_init__(self) -> None:
        if self.num_blocks < 1:
            raise ValueError("num_blocks must be >= 1")
        if self.min_operations < 1 or self.max_operations < self.min_operations:
            raise ValueError("invalid operation-count range")


#: Size clusters used by Figure 5 of the paper, scaled to the Python suite.
SIZE_CLUSTERS: Tuple[Tuple[str, int, int], ...] = (
    ("small", 0, 29),
    ("medium", 30, 59),
    ("large", 60, 10 ** 9),
)


def size_cluster(graph: DataFlowGraph) -> str:
    """Cluster label ("small"/"medium"/"large"/"tree") for a suite graph."""
    if graph.name.startswith("tree"):
        return "tree"
    operations = len(graph.operation_nodes())
    for label, low, high in SIZE_CLUSTERS:
        if low <= operations <= high:
            return label
    return "large"


def _unrolled_kernel(name: str, factory, copies: int) -> DataFlowGraph:
    """Stitch *copies* instances of a kernel into one larger basic block.

    The live-out values of copy ``i`` are wired into the external inputs of
    copy ``i+1`` (as far as arities allow), which mimics loop unrolling /
    inlining creating large blocks out of small bodies.
    """
    combined = DataFlowGraph(name=f"{name}_x{copies}")
    previous_outputs: List[int] = []
    for copy_index in range(copies):
        kernel = factory()
        mapping: Dict[int, int] = {}
        feed_index = 0
        for node in kernel.nodes():
            if node.opcode is Opcode.INPUT and feed_index < len(previous_outputs):
                # Reuse a value produced by the previous copy instead of a
                # fresh external input.
                mapping[node.node_id] = previous_outputs[feed_index]
                feed_index += 1
                continue
            mapping[node.node_id] = combined.add_node(
                node.opcode,
                name=f"{node.name or node.opcode.value}_{copy_index}",
                forbidden=node.forbidden if node.is_operation else None,
                live_out=False,
            )
        for src, dst in kernel.edges():
            combined.add_edge(mapping[src], mapping[dst])
        previous_outputs = [
            mapping[v]
            for v in kernel.node_ids()
            if kernel.node(v).live_out and kernel.node(v).is_operation
        ]
    for vertex in previous_outputs:
        combined.set_live_out(vertex, True)
    return combined


def build_suite(config: Optional[SuiteConfig] = None) -> List[DataFlowGraph]:
    """Build the MiBench-like suite described by *config*."""
    config = config or SuiteConfig()
    suite: List[DataFlowGraph] = []

    if config.include_kernels:
        for name, factory in sorted(KERNEL_FACTORIES.items()):
            suite.append(factory())
            suite.append(_unrolled_kernel(name, factory, copies=3))

    remaining = max(0, config.num_blocks - len(suite))
    seed = config.base_seed
    for index in range(remaining):
        span = config.max_operations - config.min_operations
        size = config.min_operations + (index * max(1, span) // max(1, remaining - 1 or 1))
        size = min(size, config.max_operations)
        spec = SyntheticBlockSpec(
            num_operations=size,
            num_external_inputs=max(2, min(8, size // 6 + 2)),
            memory_fraction=0.15,
            seed=seed,
            name=f"mibench_like_{index:03d}_n{size}",
        )
        suite.append(generate_basic_block(spec))
        seed += 1

    if config.include_trees:
        for depth in config.tree_depths:
            suite.append(tree_dfg(depth))

    return suite


def paper_scale_suite() -> List[DataFlowGraph]:
    """The closest feasible analogue of the paper's full 250-block suite.

    Returns the hand-written kernels, their unrolled variants, synthetic
    blocks spanning 10–120 operations and the depth-4..7 trees.  Intended for
    long-running benchmark sessions, not for the unit tests.
    """
    config = SuiteConfig(
        num_blocks=250,
        min_operations=10,
        max_operations=120,
        include_kernels=True,
        include_trees=False,
    )
    return build_suite(config) + paper_tree_suite()
