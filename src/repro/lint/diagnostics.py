"""Shared diagnostic model of the ``repro lint`` pass framework.

Every lint pass reports findings as :class:`Diagnostic` values — one rule id,
one severity, one ``file:line:col`` anchor, a message and an optional fix
hint — so the engine can sort, filter (suppressions, ``--changed``), count
and render them uniformly in either human-readable text or the versioned
JSON document CI uploads as an artifact (:data:`LINT_SCHEMA`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

#: Schema tag of the ``--format json`` document (bump on layout changes).
LINT_SCHEMA = "repro-lint-1"

#: Diagnostic severities, in increasing order of weight.  Both fail the run:
#: severity is reporting metadata, not a gate distinction.
SEVERITIES = ("warning", "error")


@dataclass(frozen=True)
class Diagnostic:
    """One lint finding.

    Attributes
    ----------
    rule:
        Stable rule identifier (e.g. ``field-drift``) — the name used by
        ``--select`` and ``# repro-lint: disable=`` suppressions.
    severity:
        ``"error"`` or ``"warning"`` (see :data:`SEVERITIES`).
    path:
        File the finding is anchored in, as given to the engine.
    line / col:
        1-based line and 0-based column of the anchor.
    message:
        One-sentence statement of the violation.
    hint:
        Optional fix suggestion, rendered after the message.
    """

    rule: str
    severity: str
    path: str
    line: int
    col: int
    message: str
    hint: Optional[str] = None

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule, self.message)

    def format_text(self) -> str:
        """``path:line:col: rule severity: message (hint)`` one-liner."""
        text = (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule} {self.severity}: {self.message}"
        )
        if self.hint:
            text += f" (hint: {self.hint})"
        return text

    def to_dict(self) -> Dict[str, object]:
        entry: Dict[str, object] = {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }
        if self.hint is not None:
            entry["hint"] = self.hint
        return entry

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "Diagnostic":
        return cls(
            rule=str(data["rule"]),
            severity=str(data["severity"]),
            path=str(data["path"]),
            line=int(data["line"]),  # type: ignore[arg-type]
            col=int(data["col"]),  # type: ignore[arg-type]
            message=str(data["message"]),
            hint=None if data.get("hint") is None else str(data["hint"]),
        )


def summarize(diagnostics: Sequence[Diagnostic]) -> Dict[str, int]:
    """Finding count per rule id, sorted by rule name."""
    counts: Dict[str, int] = {}
    for diagnostic in diagnostics:
        counts[diagnostic.rule] = counts.get(diagnostic.rule, 0) + 1
    return dict(sorted(counts.items()))


# Not a per-field serializer of Diagnostic (it delegates to
# Diagnostic.to_dict), so the field-drift suffix heuristic over-matches.
def report_to_dict(  # repro-lint: disable=field-drift
    diagnostics: Sequence[Diagnostic],
    files_scanned: int,
    roots: Sequence[str],
    changed_ref: Optional[str] = None,
) -> Dict[str, object]:
    """The versioned JSON document of one lint run (CI artifact format)."""
    ordered = sorted(diagnostics, key=Diagnostic.sort_key)
    return {
        "schema": LINT_SCHEMA,
        "roots": list(roots),
        "files_scanned": files_scanned,
        "changed_ref": changed_ref,
        "summary": summarize(ordered),
        "diagnostics": [diagnostic.to_dict() for diagnostic in ordered],
    }


def format_text_report(
    diagnostics: Sequence[Diagnostic], files_scanned: int
) -> str:
    """Human-readable report: one line per finding plus a per-rule tally."""
    ordered = sorted(diagnostics, key=Diagnostic.sort_key)
    lines: List[str] = [diagnostic.format_text() for diagnostic in ordered]
    if ordered:
        tally = ", ".join(
            f"{rule}={count}" for rule, count in summarize(ordered).items()
        )
        lines.append(
            f"{len(ordered)} finding(s) in {files_scanned} file(s): {tally}"
        )
    else:
        lines.append(f"clean: 0 findings in {files_scanned} file(s)")
    return "\n".join(lines)
