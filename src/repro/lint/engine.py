"""The ``repro lint`` execution engine.

Responsibilities, in order of a run:

1. **File collection** — positional paths (files or directories) expand to a
   deterministic, sorted list of ``.py`` files (``__pycache__`` and hidden
   directories skipped).
2. **Parsing** — each file becomes a :class:`FileContext`: source text, AST,
   the dotted module name derived from the enclosing package (``__init__.py``
   chain), and the parsed suppression comments.
3. **Pass execution** — *file passes* see one :class:`FileContext` at a time
   and run in parallel across files when ``jobs > 1`` (one process re-parses
   its share of files; diagnostics are plain picklable dataclasses).
   *Project passes* (cross-module analyses such as the worker shared-state
   race detector) see the whole :class:`Project` and run once, in-process.
4. **Filtering** — ``# repro-lint: disable=RULE[,RULE]`` comments suppress
   findings on their line; a disable comment on a line of its own (no code)
   suppresses the rules for the entire file.  ``disable=all`` suppresses
   every rule.  With ``--changed REF``, findings are additionally restricted
   to lines touched since the git ref.
5. **Reporting** — sorted diagnostics, rendered by :mod:`.diagnostics`.

A file that fails to parse contributes a single ``parse-error`` diagnostic
instead of aborting the run.
"""

from __future__ import annotations

import ast
import concurrent.futures
import os
import re
import subprocess
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .diagnostics import Diagnostic

#: Rule id attached to unparseable files.
PARSE_ERROR_RULE = "parse-error"

#: ``# repro-lint: disable=rule-a,rule-b`` (optionally ``disable=all``).
_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\-\s]+)")

#: ``# repro-lint: worker-entry`` — marks a function as a pool worker entry
#: point for the worker shared-state pass (see passes/worker_state.py).
_WORKER_ENTRY_RE = re.compile(r"#\s*repro-lint:\s*worker-entry\b")


# --------------------------------------------------------------------------- #
# Suppressions
# --------------------------------------------------------------------------- #
@dataclass
class Suppressions:
    """Parsed ``repro-lint: disable`` comments of one file."""

    #: Rules disabled for the whole file ("all" disables everything).
    file_rules: Set[str] = field(default_factory=set)
    #: Line number -> rules disabled on that line.
    line_rules: Dict[int, Set[str]] = field(default_factory=dict)

    @classmethod
    def parse(cls, source: str) -> "Suppressions":
        suppressions = cls()
        for lineno, line in enumerate(source.splitlines(), start=1):
            match = _SUPPRESS_RE.search(line)
            if match is None:
                continue
            rules = {
                rule.strip() for rule in match.group(1).split(",") if rule.strip()
            }
            code = line[: match.start()].strip()
            if code:  # trailing comment: suppress on this line only
                suppressions.line_rules.setdefault(lineno, set()).update(rules)
            else:  # comment-only line: suppress for the whole file
                suppressions.file_rules.update(rules)
        return suppressions

    def suppressed(self, diagnostic: Diagnostic) -> bool:
        for rules in (
            self.file_rules,
            self.line_rules.get(diagnostic.line, ()),
        ):
            if diagnostic.rule in rules or "all" in rules:
                return True
        return False


# --------------------------------------------------------------------------- #
# File context
# --------------------------------------------------------------------------- #
@dataclass
class FileContext:
    """One parsed source file, as seen by the lint passes."""

    path: str  # path as reported in diagnostics (relative when possible)
    abspath: str
    source: str
    tree: ast.Module
    module: Optional[str]  # dotted module name, when under a package
    suppressions: Suppressions

    @property
    def lines(self) -> List[str]:
        return self.source.splitlines()

    def worker_entry_lines(self) -> Set[int]:
        """Line numbers carrying a ``repro-lint: worker-entry`` marker."""
        return {
            lineno
            for lineno, line in enumerate(self.source.splitlines(), start=1)
            if _WORKER_ENTRY_RE.search(line)
        }

    def diagnostic(
        self,
        rule: str,
        node: ast.AST,
        message: str,
        hint: Optional[str] = None,
        severity: str = "error",
    ) -> Diagnostic:
        """Build a diagnostic anchored at *node* in this file."""
        return Diagnostic(
            rule=rule,
            severity=severity,
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
            hint=hint,
        )


def module_name_for(path: Path) -> Optional[str]:
    """Dotted module name of *path*, derived from the ``__init__.py`` chain.

    ``src/repro/engine/batch.py`` -> ``repro.engine.batch``.  Files outside
    any package (no ``__init__.py`` in the parent) return the bare stem, so
    fixture files still get a usable module identity.
    """
    path = path.resolve()
    parts = [path.stem] if path.name != "__init__.py" else []
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.insert(0, parent.name)
        parent = parent.parent
    return ".".join(parts) if parts else None


def load_file(path: Path, display_path: Optional[str] = None) -> Tuple[
    Optional[FileContext], Optional[Diagnostic]
]:
    """Parse *path*; return a context, or a ``parse-error`` diagnostic."""
    display = display_path or _display_path(path)
    try:
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
    except (OSError, SyntaxError, ValueError) as exc:
        line = getattr(exc, "lineno", None) or 1
        return None, Diagnostic(
            rule=PARSE_ERROR_RULE,
            severity="error",
            path=display,
            line=int(line),
            col=0,
            message=f"cannot lint file: {type(exc).__name__}: {exc}",
        )
    return (
        FileContext(
            path=display,
            abspath=str(path.resolve()),
            source=source,
            tree=tree,
            module=module_name_for(path),
            suppressions=Suppressions.parse(source),
        ),
        None,
    )


def _display_path(path: Path) -> str:
    """Report paths relative to the working directory when possible."""
    try:
        return os.path.relpath(path)
    except ValueError:  # different drive (Windows) — keep it absolute
        return str(path)


# --------------------------------------------------------------------------- #
# Project (cross-module view for project passes)
# --------------------------------------------------------------------------- #
class Project:
    """The full set of linted files, indexed by dotted module name."""

    def __init__(self, files: Sequence[FileContext]) -> None:
        self.files = list(files)
        self.by_module: Dict[str, FileContext] = {}
        for ctx in self.files:
            if ctx.module is not None:
                # First one wins deterministically (files arrive sorted).
                self.by_module.setdefault(ctx.module, ctx)

    def resolve_module(self, module: str) -> Optional[FileContext]:
        """The linted file defining *module*, if any (packages resolve to
        their ``__init__`` file)."""
        return self.by_module.get(module)


# --------------------------------------------------------------------------- #
# File collection
# --------------------------------------------------------------------------- #
def collect_files(paths: Sequence[str]) -> List[Path]:
    """Expand *paths* (files or directories) to a sorted ``.py`` file list."""
    seen: Set[str] = set()
    collected: List[Path] = []

    def add(path: Path) -> None:
        key = str(path.resolve())
        if key not in seen:
            seen.add(key)
            collected.append(path)

    for entry in paths:
        path = Path(entry)
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                parts = candidate.relative_to(path).parts
                if any(
                    part == "__pycache__" or part.startswith(".")
                    for part in parts
                ):
                    continue
                add(candidate)
        elif path.is_file():
            add(path)
        else:
            raise FileNotFoundError(f"lint path does not exist: {entry}")
    collected.sort(key=lambda p: str(p))
    return collected


# --------------------------------------------------------------------------- #
# git --changed support
# --------------------------------------------------------------------------- #
def changed_lines(ref: str, cwd: Optional[str] = None) -> Dict[str, Set[int]]:
    """Map of absolute file path -> line numbers touched since git *ref*.

    Parsed from ``git diff --unified=0 <ref>``; files added since the ref
    report every line.  Raises ``RuntimeError`` when git fails (unknown ref,
    not a repository).
    """
    try:
        toplevel_proc = subprocess.run(
            ["git", "rev-parse", "--show-toplevel"],
            cwd=cwd,
            capture_output=True,
            text=True,
            check=True,
        )
        diff_proc = subprocess.run(
            ["git", "diff", "--unified=0", "--no-color", ref],
            cwd=cwd,
            capture_output=True,
            text=True,
            check=True,
        )
    except (OSError, subprocess.CalledProcessError) as exc:
        stderr = getattr(exc, "stderr", "") or ""
        raise RuntimeError(
            f"--changed {ref!r}: git diff failed: {stderr.strip() or exc}"
        ) from exc
    toplevel = Path(toplevel_proc.stdout.strip())
    changed: Dict[str, Set[int]] = {}
    current: Optional[Set[int]] = None
    for line in diff_proc.stdout.splitlines():
        if line.startswith("+++ "):
            target = line[4:].strip()
            if target == "/dev/null":
                current = None
                continue
            if target.startswith("b/"):
                target = target[2:]
            current = changed.setdefault(
                str((toplevel / target).resolve()), set()
            )
        elif line.startswith("@@") and current is not None:
            match = re.search(r"\+(\d+)(?:,(\d+))?", line)
            if match is None:
                continue
            start = int(match.group(1))
            count = int(match.group(2)) if match.group(2) is not None else 1
            current.update(range(start, start + count))
    return changed


# --------------------------------------------------------------------------- #
# Runner
# --------------------------------------------------------------------------- #
@dataclass
class LintReport:
    """Outcome of one engine run."""

    diagnostics: List[Diagnostic]
    files_scanned: int
    roots: List[str]
    changed_ref: Optional[str] = None

    @property
    def ok(self) -> bool:
        return not self.diagnostics


def _select_passes(select: Optional[Sequence[str]]):
    """Resolve ``--select`` rule ids to the passes that implement them."""
    from .passes import all_passes

    passes = all_passes()
    if not select:
        return passes, None
    wanted = set(select)
    known: Set[str] = set()
    for lint_pass in passes:
        known.update(lint_pass.rules)
    unknown = wanted - known
    if unknown:
        raise ValueError(
            f"unknown rule id(s): {', '.join(sorted(unknown))}; "
            f"available: {', '.join(sorted(known))}"
        )
    return (
        [p for p in passes if wanted & set(p.rules)],
        wanted,
    )


def _lint_file_batch(
    paths: List[str], select: Optional[List[str]]
) -> List[Diagnostic]:
    """Worker entry of the parallel path: lint *paths* with the file passes.

    Re-parses its share of files (ASTs are cheaper to rebuild than to
    pickle) and returns plain diagnostics.
    """
    passes, wanted = _select_passes(select)
    diagnostics: List[Diagnostic] = []
    for entry in paths:
        ctx, problem = load_file(Path(entry))
        if ctx is None:
            if problem is not None and (wanted is None or problem.rule in wanted):
                diagnostics.append(problem)
            continue
        for lint_pass in passes:
            if not lint_pass.is_project_pass:
                diagnostics.extend(_run_file_pass(lint_pass, ctx, wanted))
    return diagnostics


def _run_file_pass(lint_pass, ctx: FileContext, wanted: Optional[Set[str]]):
    found = lint_pass.check_file(ctx)
    return [
        diagnostic
        for diagnostic in found
        if (wanted is None or diagnostic.rule in wanted)
        and not ctx.suppressions.suppressed(diagnostic)
    ]


def run_lint(
    paths: Sequence[str],
    select: Optional[Sequence[str]] = None,
    jobs: int = 1,
    changed: Optional[str] = None,
) -> LintReport:
    """Lint *paths* and return the filtered, sorted report.

    *select* restricts execution to the passes implementing the given rule
    ids; *jobs* parallelizes the per-file passes across processes;
    *changed* restricts findings to lines touched since the given git ref.
    """
    passes, wanted = _select_passes(select)
    files = collect_files(paths)
    diagnostics: List[Diagnostic] = []

    contexts: List[FileContext] = []
    for path in files:
        ctx, problem = load_file(path)
        if ctx is None:
            if problem is not None and (wanted is None or problem.rule in wanted):
                diagnostics.append(problem)
            continue
        contexts.append(ctx)

    file_passes = [p for p in passes if not p.is_project_pass]
    project_passes = [p for p in passes if p.is_project_pass]

    if jobs > 1 and len(contexts) > 1 and file_passes:
        batches: List[List[str]] = [[] for _ in range(min(jobs, len(contexts)))]
        for index, ctx in enumerate(contexts):
            batches[index % len(batches)].append(ctx.abspath)
        select_arg = sorted(wanted) if wanted is not None else None
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=len(batches)
        ) as executor:
            for result in executor.map(
                _lint_file_batch, batches, [select_arg] * len(batches)
            ):
                diagnostics.extend(
                    d for d in result if d.rule != PARSE_ERROR_RULE
                )
    else:
        for ctx in contexts:
            for lint_pass in file_passes:
                diagnostics.extend(_run_file_pass(lint_pass, ctx, wanted))

    if project_passes:
        project = Project(contexts)
        by_path = {ctx.path: ctx for ctx in contexts}
        for lint_pass in project_passes:
            for diagnostic in lint_pass.check_project(project):
                if wanted is not None and diagnostic.rule not in wanted:
                    continue
                owner = by_path.get(diagnostic.path)
                if owner is not None and owner.suppressions.suppressed(
                    diagnostic
                ):
                    continue
                diagnostics.append(diagnostic)

    if changed is not None:
        touched = changed_lines(changed)
        abspaths = {ctx.path: ctx.abspath for ctx in contexts}
        kept: List[Diagnostic] = []
        for diagnostic in diagnostics:
            abspath = abspaths.get(
                diagnostic.path, str(Path(diagnostic.path).resolve())
            )
            lines = touched.get(abspath)
            if lines and diagnostic.line in lines:
                kept.append(diagnostic)
        diagnostics = kept

    diagnostics.sort(key=Diagnostic.sort_key)
    return LintReport(
        diagnostics=diagnostics,
        files_scanned=len(files),
        roots=list(paths),
        changed_ref=changed,
    )


def iter_rules() -> Iterable[Tuple[str, str, str]]:
    """``(rule id, pass name, description)`` for every registered rule."""
    from .passes import all_passes

    for lint_pass in all_passes():
        for rule in lint_pass.rules:
            yield rule, lint_pass.name, lint_pass.rule_descriptions.get(rule, "")
