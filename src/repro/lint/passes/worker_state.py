"""Worker shared-state race detector (``worker-shared-state``).

The PR 6 worker pool keeps *deliberate* worker-resident state (the
per-process graph registry and context cache).  Everything else that code
running inside a pool worker touches must be worker-local: a write to
module-level mutable state looks correct under ``fork`` on Linux (the child
sees a copy), silently diverges from the parent, and breaks outright under
``spawn`` — the classic cross-process aliasing bug.

The pass:

1. finds the worker entry points — functions whose ``def`` line (or the
   line above) carries a ``# repro-lint: worker-entry`` marker comment
   (``repro.engine.batch._enumerate_chunk`` and ``_worker_ping`` in this
   repo);
2. computes the statically-resolvable call graph reachable from them,
   following same-module calls, ``from x import f`` calls, module-alias
   calls (``obs.ensure_worker``), class constructions and ``self.``/
   ``cls.`` method calls across every linted module (instance method calls
   through arbitrary objects are out of scope, as documented);
3. flags, in every reachable function: assignments through a ``global``
   statement, stores into subscripts/attributes of module-level names, and
   known mutating method calls (``append``/``update``/``popitem``/…) on
   module-level names.

Deliberate worker-resident registries are allowlisted by
``"module:name"`` entries in :data:`WORKER_STATE_ALLOWLIST` — an explicit,
reviewable list, so a new global must either be justified here or fail CI.
"""

from __future__ import annotations

import ast
from collections import deque
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..diagnostics import Diagnostic
from ..engine import FileContext, Project
from .base import ProjectPass, dotted_name, import_table

#: Deliberate worker-resident module-level state (``module:name``).  Keep
#: this list short and justified: every entry is state a pool worker owns
#: per-process *by design*.
WORKER_STATE_ALLOWLIST = frozenset(
    {
        # PR 6 worker-resident registries: graphs and contexts are cached
        # per worker process on purpose (shipped once, referenced by
        # fingerprint afterwards).
        "repro.engine.batch:_worker_cache",
        "repro.engine.batch:_worker_graphs",
        # PR 7 worker-local observability recorders: activated per worker by
        # ensure_worker(), drained back to the parent inside chunk results.
        "repro.obs.runtime:_metrics",
        "repro.obs.runtime:_tracer",
    }
)

#: Method names that mutate their receiver in place.
MUTATING_METHODS = frozenset(
    {
        "append",
        "appendleft",
        "add",
        "clear",
        "discard",
        "extend",
        "extendleft",
        "insert",
        "move_to_end",
        "pop",
        "popleft",
        "popitem",
        "remove",
        "reverse",
        "setdefault",
        "sort",
        "update",
    }
)

#: Depth bound of the import re-export chase (``from .store import X`` in a
#: package ``__init__``).
_REEXPORT_DEPTH = 4

FunctionKey = Tuple[str, Optional[str], str]  # (module, class or None, name)


class _ModuleIndex:
    """Per-module symbol tables the call-graph resolution needs."""

    def __init__(self, ctx: FileContext) -> None:
        self.ctx = ctx
        self.module = ctx.module or ""
        self.imports = import_table(ctx)
        self.functions: Dict[str, ast.FunctionDef] = {}
        self.classes: Dict[str, ast.ClassDef] = {}
        self.methods: Dict[Tuple[str, str], ast.FunctionDef] = {}
        self.globals: Set[str] = set()
        for node in ctx.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.functions[node.name] = node  # type: ignore[assignment]
            elif isinstance(node, ast.ClassDef):
                self.classes[node.name] = node
                for member in node.body:
                    if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        self.methods[(node.name, member.name)] = member  # type: ignore[assignment]
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    for name in _target_names(target):
                        self.globals.add(name)
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                for name in _target_names(node.target):
                    self.globals.add(name)

    def resolve_function(self, key: FunctionKey) -> Optional[ast.FunctionDef]:
        module, cls, name = key
        if cls is None:
            return self.functions.get(name)
        return self.methods.get((cls, name))


def _target_names(target: ast.AST) -> Iterable[str]:
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _target_names(element)


class WorkerStatePass(ProjectPass):
    name = "worker-state"
    rules = ("worker-shared-state",)
    rule_descriptions = {
        "worker-shared-state": (
            "code reachable from a pool worker entry point writes "
            "module-level state (cross-process aliasing hazard); allowlist "
            "deliberate worker-resident registries explicitly"
        ),
    }

    def __init__(self, allowlist: Optional[Iterable[str]] = None) -> None:
        self.allowlist = (
            frozenset(allowlist)
            if allowlist is not None
            else WORKER_STATE_ALLOWLIST
        )

    # ------------------------------------------------------------------ #
    def check_project(self, project: Project) -> List[Diagnostic]:
        indexes: Dict[str, _ModuleIndex] = {}

        def index_of(ctx: FileContext) -> _ModuleIndex:
            key = ctx.module or ctx.abspath
            if key not in indexes:
                indexes[key] = _ModuleIndex(ctx)
            return indexes[key]

        entries: List[Tuple[FileContext, ast.FunctionDef]] = []
        for ctx in project.files:
            marker_lines = ctx.worker_entry_lines()
            if not marker_lines:
                continue
            for node in ast.walk(ctx.tree):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and (
                    node.lineno in marker_lines
                    or node.lineno - 1 in marker_lines
                ):
                    entries.append((ctx, node))  # type: ignore[arg-type]

        diagnostics: List[Diagnostic] = []
        visited: Set[FunctionKey] = set()
        parents: Dict[FunctionKey, Optional[FunctionKey]] = {}
        queue: "deque[Tuple[FunctionKey, FileContext, ast.FunctionDef]]" = deque()
        for ctx, func in entries:
            key: FunctionKey = (ctx.module or ctx.abspath, None, func.name)
            if key not in visited:
                visited.add(key)
                parents[key] = None
                queue.append((key, ctx, func))

        while queue:
            key, ctx, func = queue.popleft()
            index = index_of(ctx)
            diagnostics.extend(self._check_function(key, ctx, index, func, parents))
            for callee_key, callee_ctx, callee_func in self._callees(
                key, ctx, index, func, project, index_of
            ):
                if callee_key in visited:
                    continue
                visited.add(callee_key)
                parents[callee_key] = key
                queue.append((callee_key, callee_ctx, callee_func))
        return diagnostics

    # ------------------------------------------------------------------ #
    # Call-graph expansion
    # ------------------------------------------------------------------ #
    def _callees(
        self,
        key: FunctionKey,
        ctx: FileContext,
        index: _ModuleIndex,
        func: ast.FunctionDef,
        project: Project,
        index_of,
    ):
        module, cls, _ = key
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            chain = dotted_name(node.func)
            if chain is None:
                continue
            parts = chain.split(".")
            resolved = self._resolve_call(parts, cls, ctx, index, project, index_of)
            if resolved is not None:
                yield resolved

    def _resolve_call(
        self,
        parts: List[str],
        current_class: Optional[str],
        ctx: FileContext,
        index: _ModuleIndex,
        project: Project,
        index_of,
        depth: int = 0,
    ):
        if depth > _REEXPORT_DEPTH:
            return None
        root = parts[0]
        module_name = ctx.module or ctx.abspath

        # self.method() / cls.method() inside a class body.
        if root in ("self", "cls") and current_class is not None and len(parts) == 2:
            method = index.methods.get((current_class, parts[1]))
            if method is not None:
                return (module_name, current_class, parts[1]), ctx, method
            return None

        if len(parts) == 1:
            if root in index.functions:
                return (module_name, None, root), ctx, index.functions[root]
            if root in index.classes:
                init = index.methods.get((root, "__init__"))
                if init is not None:
                    return (module_name, root, "__init__"), ctx, init
                return None
            binding = index.imports.get(root)
            if binding is not None:
                return self._resolve_imported(
                    binding, None, project, index_of, depth
                )
            return None

        # alias.attr(...) through an imported module (or module object).
        binding = index.imports.get(root)
        if binding is not None:
            return self._resolve_imported(
                binding, parts[1:], project, index_of, depth
            )
        return None

    def _resolve_imported(
        self, binding, attrs: Optional[List[str]], project: Project, index_of, depth: int
    ):
        """Resolve a call through an import binding, chasing re-exports."""
        candidates: List[Tuple[str, Optional[str]]] = []
        if binding.kind == "module":
            if attrs:
                candidates.append((binding.target, attrs[0]))
                if len(attrs) > 1:
                    candidates.append((f"{binding.target}.{attrs[0]}", attrs[1]))
        else:  # from target import obj
            if attrs:
                # The imported name is a module: obj.attr(...)
                candidates.append((f"{binding.target}.{binding.obj}", attrs[0]))
            else:
                # The imported name is the callable itself.
                candidates.append((binding.target, binding.obj))
        for target_module, symbol in candidates:
            if symbol is None:
                continue
            target_ctx = project.resolve_module(target_module)
            if target_ctx is None:
                continue
            target_index = index_of(target_ctx)
            if symbol in target_index.functions:
                return (
                    (target_ctx.module or target_ctx.abspath, None, symbol),
                    target_ctx,
                    target_index.functions[symbol],
                )
            if symbol in target_index.classes:
                init = target_index.methods.get((symbol, "__init__"))
                if init is not None:
                    return (
                        (target_ctx.module or target_ctx.abspath, symbol, "__init__"),
                        target_ctx,
                        init,
                    )
                continue
            # Re-exported through the target module's own imports.
            reexport = target_index.imports.get(symbol)
            if reexport is not None:
                resolved = self._resolve_imported(
                    reexport, None, project, index_of, depth + 1
                )
                if resolved is not None:
                    return resolved
        return None

    # ------------------------------------------------------------------ #
    # Write detection
    # ------------------------------------------------------------------ #
    def _check_function(
        self,
        key: FunctionKey,
        ctx: FileContext,
        index: _ModuleIndex,
        func: ast.FunctionDef,
        parents: Dict[FunctionKey, Optional[FunctionKey]],
    ) -> List[Diagnostic]:
        module = ctx.module or ctx.abspath
        declared_global: Set[str] = set()
        local_names: Set[str] = set()
        for arg in (
            list(func.args.posonlyargs)
            + list(func.args.args)
            + list(func.args.kwonlyargs)
            + ([func.args.vararg] if func.args.vararg else [])
            + ([func.args.kwarg] if func.args.kwarg else [])
        ):
            local_names.add(arg.arg)
        for node in ast.walk(func):
            if isinstance(node, ast.Global):
                declared_global.update(node.names)
            elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
                local_names.add(node.id)
        local_names -= declared_global

        def is_module_global(name: str) -> bool:
            return (
                name not in local_names
                and (name in index.globals or name in declared_global)
            )

        diagnostics: List[Diagnostic] = []

        def report(node: ast.AST, name: str, what: str) -> None:
            if f"{module}:{name}" in self.allowlist:
                return
            diagnostics.append(
                ctx.diagnostic(
                    "worker-shared-state",
                    node,
                    f"{self._chain_text(key, parents)} {what} module-level "
                    f"state {name!r} of {module!r} — cross-process aliasing "
                    "hazard in pool workers",
                    hint=(
                        "make the state worker-resident by design and add "
                        f"'{module}:{name}' to WORKER_STATE_ALLOWLIST, or "
                        "return the data to the parent instead"
                    ),
                )
            )

        for node in ast.walk(func):
            targets: List[ast.AST] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                targets = [node.target]
            elif isinstance(node, ast.Delete):
                targets = list(node.targets)
            for target in targets:
                for name in _target_names(target):
                    if name in declared_global and is_module_global(name):
                        report(node, name, "rebinds")
                root = self._subscript_or_attribute_root(target)
                if root is not None and is_module_global(root):
                    report(node, root, "writes into")
            if isinstance(node, ast.Call):
                chain = dotted_name(node.func)
                if chain is None:
                    continue
                parts = chain.split(".")
                if (
                    len(parts) >= 2
                    and parts[-1] in MUTATING_METHODS
                    and is_module_global(parts[0])
                ):
                    report(node, parts[0], f"mutates (.{parts[-1]}())")
        return diagnostics

    @staticmethod
    def _subscript_or_attribute_root(target: ast.AST) -> Optional[str]:
        node = target
        seen_container_hop = False
        while isinstance(node, (ast.Subscript, ast.Attribute)):
            seen_container_hop = True
            node = node.value
        if seen_container_hop and isinstance(node, ast.Name):
            return node.id
        return None

    @staticmethod
    def _chain_text(
        key: FunctionKey, parents: Dict[FunctionKey, Optional[FunctionKey]]
    ) -> str:
        names: List[str] = []
        current: Optional[FunctionKey] = key
        while current is not None:
            module, cls, name = current
            label = f"{cls}.{name}" if cls else name
            names.append(label)
            current = parents.get(current)
        names.reverse()
        if len(names) == 1:
            return f"worker entry {names[0]!r}"
        return f"{names[-1]!r} (reachable via {' -> '.join(names[:-1])})"
