"""Hot-path purity pass (``hot-path-impure-call``, ``hot-loop-closure``,
``hot-loop-attr``).

The PR 5/PR 6 speedups rest on the enumeration kernels staying allocation-
and JSON-free: the inner loops run tens of thousands of times per block, so
a stray ``json.dumps``, a per-iteration closure, or a repeated deep
attribute lookup silently re-taxes every block of every suite.  This pass
patrols the designated hot modules (:data:`HOT_MODULES` /
:data:`HOT_MODULE_PREFIXES` — ``repro.core``, ``repro.dominators`` and
``repro.dfg.reachability``):

* ``hot-path-impure-call`` — any call into ``json`` / ``pickle`` /
  ``marshal`` or to ``copy.deepcopy`` (including names imported from those
  modules).  Cold administrative helpers that legitimately serialize (e.g.
  ``Constraints.fingerprint``) carry an explicit line suppression, which
  keeps the next json call in that module visible.
* ``hot-loop-closure`` — a ``lambda`` or nested ``def`` inside a
  ``for``/``while`` body allocates a fresh closure object per iteration.
* ``hot-loop-attr`` — an attribute chain of two or more hops
  (``self.stats.count_pruned``) loaded inside a loop whose root and
  intermediate objects are never rebound in the loop: the lookup is
  loop-invariant and should be hoisted into a local before the loop.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from ..diagnostics import Diagnostic
from ..engine import FileContext
from .base import FilePass, collect_loops, dotted_name, import_table, stored_names

#: Exact hot modules (in addition to the package prefixes below).
HOT_MODULES = frozenset({"repro.dfg.reachability"})

#: Every module under these packages is hot.
HOT_MODULE_PREFIXES = ("repro.core.", "repro.dominators.")

#: Impure / serializing modules that must not be called on the hot path.
IMPURE_MODULES = frozenset({"json", "pickle", "marshal"})

#: ``copy`` functions that deep-copy object graphs.
_DEEPCOPY_NAMES = frozenset({"deepcopy"})


def is_hot_module(module: Optional[str]) -> bool:
    if module is None:
        return False
    if module in HOT_MODULES:
        return True
    return any(
        module.startswith(prefix) or module == prefix.rstrip(".")
        for prefix in HOT_MODULE_PREFIXES
    )


class HotPathPass(FilePass):
    name = "hot-path"
    rules = ("hot-path-impure-call", "hot-loop-closure", "hot-loop-attr")
    rule_descriptions = {
        "hot-path-impure-call": (
            "a designated hot module calls json/pickle/marshal/deepcopy"
        ),
        "hot-loop-closure": (
            "a lambda or nested def inside a hot-module loop allocates a "
            "closure per iteration"
        ),
        "hot-loop-attr": (
            "a loop-invariant multi-hop attribute lookup inside a "
            "hot-module loop should be hoisted into a local"
        ),
    }

    def check_file(self, ctx: FileContext) -> List[Diagnostic]:
        if not is_hot_module(ctx.module):
            return []
        diagnostics: List[Diagnostic] = []
        diagnostics.extend(self._impure_calls(ctx))
        diagnostics.extend(self._loop_findings(ctx))
        return diagnostics

    # ------------------------------------------------------------------ #
    def _impure_aliases(self, ctx: FileContext) -> Tuple[Set[str], Set[str]]:
        """Local aliases of impure modules and of impure imported functions."""
        module_aliases: Set[str] = set()
        function_aliases: Set[str] = set()
        for local, binding in import_table(ctx).items():
            if binding.kind == "module" and binding.target in IMPURE_MODULES:
                module_aliases.add(local)
            elif binding.kind == "from":
                if binding.target in IMPURE_MODULES:
                    function_aliases.add(local)
                elif binding.target == "copy" and binding.obj in _DEEPCOPY_NAMES:
                    function_aliases.add(local)
            if binding.kind == "module" and binding.target == "copy":
                # copy.deepcopy(...) through the module alias.
                module_aliases.add(local)
        return module_aliases, function_aliases

    def _impure_calls(self, ctx: FileContext) -> List[Diagnostic]:
        module_aliases, function_aliases = self._impure_aliases(ctx)
        if not module_aliases and not function_aliases:
            return []
        imports = import_table(ctx)
        diagnostics: List[Diagnostic] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = dotted_name(node.func)
            if chain is None:
                continue
            parts = chain.split(".")
            flagged = False
            if parts[0] in function_aliases and len(parts) == 1:
                flagged = True
            elif parts[0] in module_aliases and len(parts) > 1:
                # `copy` module alias: only deepcopy is a hot-path hazard.
                binding = imports.get(parts[0])
                root_is_copy = binding is not None and binding.target == "copy"
                flagged = (not root_is_copy) or parts[-1] in _DEEPCOPY_NAMES
            if flagged:
                diagnostics.append(
                    ctx.diagnostic(
                        "hot-path-impure-call",
                        node,
                        f"hot module {ctx.module!r} calls {chain}() — "
                        "serialization/deep-copy is banned on the "
                        "enumeration hot path",
                        hint=(
                            "move the call out of the hot module, or suppress "
                            "with a justification if this is a cold "
                            "administrative helper"
                        ),
                    )
                )
        return diagnostics

    # ------------------------------------------------------------------ #
    def _loop_findings(self, ctx: FileContext) -> List[Diagnostic]:
        diagnostics: List[Diagnostic] = []
        for loop in collect_loops(ctx.tree):
            body = list(loop.body) + list(getattr(loop, "orelse", []))
            assigned, stored_prefixes = stored_names(body)
            if isinstance(loop, (ast.For, ast.AsyncFor)):
                target_names, _ = stored_names([loop.target])
                assigned |= target_names
            seen_chains: Set[str] = set()
            for statement in body:
                for node in ast.walk(statement):
                    if isinstance(node, (ast.Lambda, ast.FunctionDef)):
                        diagnostics.append(
                            ctx.diagnostic(
                                "hot-loop-closure",
                                node,
                                "closure allocated inside a hot-module loop "
                                "(one object per iteration)",
                                hint="define it once before the loop",
                            )
                        )
                    elif isinstance(node, ast.Attribute) and isinstance(
                        node.ctx, ast.Load
                    ):
                        diagnostic = self._hoistable_chain(
                            ctx, node, assigned, stored_prefixes, seen_chains
                        )
                        if diagnostic is not None:
                            diagnostics.append(diagnostic)
        return self._dedupe(diagnostics)

    def _hoistable_chain(
        self,
        ctx: FileContext,
        node: ast.Attribute,
        assigned: Set[str],
        stored_prefixes: Set[str],
        seen_chains: Set[str],
    ) -> Optional[Diagnostic]:
        chain = dotted_name(node)
        if chain is None:
            return None
        parts = chain.split(".")
        if len(parts) < 3:  # one-hop lookups are not worth the noise
            return None
        # Only the outermost chain of a nested Attribute should report.
        if chain in seen_chains:
            return None
        root = parts[0]
        if root in assigned:
            return None
        for depth in range(2, len(parts) + 1):
            prefix = ".".join(parts[:depth])
            if prefix in stored_prefixes:
                return None
        seen_chains.add(chain)
        # Record sub-chains so `a.b.c` does not re-report through `a.b`.
        for depth in range(3, len(parts)):
            seen_chains.add(".".join(parts[:depth]))
        return ctx.diagnostic(
            "hot-loop-attr",
            node,
            f"loop-invariant attribute lookup {chain!r} inside a "
            "hot-module loop",
            hint=f"hoist `{chain}` into a local before the loop",
            severity="warning",
        )

    @staticmethod
    def _dedupe(diagnostics: List[Diagnostic]) -> List[Diagnostic]:
        seen: Dict[Tuple[str, int, str], Diagnostic] = {}
        for diagnostic in diagnostics:
            key = (diagnostic.rule, diagnostic.line, diagnostic.message)
            seen.setdefault(key, diagnostic)
        return list(seen.values())
