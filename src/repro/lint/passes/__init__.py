"""Domain pass registry of ``repro lint``.

``all_passes()`` is the single construction point: the engine (and its
worker processes) build a fresh pass list from here, so passes must be
cheap to instantiate and hold no cross-file state outside ``check_*``.
"""

from __future__ import annotations

from typing import List

from .base import FilePass, ProjectPass, canonical_dump
from .field_drift import FieldDriftPass
from .hot_path import HOT_MODULE_PREFIXES, HOT_MODULES, HotPathPass, is_hot_module
from .obs_discipline import ObsDisciplinePass
from .wire_drift import WireDriftPass, shape_hash
from .worker_state import WORKER_STATE_ALLOWLIST, WorkerStatePass

__all__ = [
    "FilePass",
    "ProjectPass",
    "FieldDriftPass",
    "HotPathPass",
    "ObsDisciplinePass",
    "WireDriftPass",
    "WorkerStatePass",
    "HOT_MODULES",
    "HOT_MODULE_PREFIXES",
    "WORKER_STATE_ALLOWLIST",
    "all_passes",
    "canonical_dump",
    "is_hot_module",
    "shape_hash",
]


def all_passes() -> List[FilePass]:
    """Fresh instances of every registered domain pass."""
    return [
        FieldDriftPass(),
        HotPathPass(),
        ObsDisciplinePass(),
        WireDriftPass(),
        WorkerStatePass(),
    ]
