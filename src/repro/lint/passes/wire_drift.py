"""Wire-format drift pass (``wire-drift``, ``wire-shape-config``).

Two hand-maintained wire formats cross process boundaries in this repo:
the compact graph tuples of :mod:`repro.dfg.serialization`
(``graph_to_wire`` / ``graph_from_wire``, versioned by ``WIRE_VERSION``)
and the chunk payload/result dicts of :mod:`repro.engine.batch`.  Both are
consumed by code that was *not* necessarily updated in the same commit —
result-store entries persist across runs, and a changed tuple layout reads
back as garbage rather than as an error.

The pass pins the *statically extracted shape* of each wire producer in
source: a module declares

.. code-block:: python

    GRAPH_TO_WIRE_SHAPE_HISTORY = {1: "f3ab12cd9e0f4a21"}

and the pass recomputes the shape hash of the function ``graph_to_wire``
(lowercased prefix of the constant name) on every run.  The hash covers the
canonical dump (:func:`~repro.lint.passes.base.canonical_dump`, stable
across CPython 3.10–3.12) of every ``return`` expression plus every dict
literal handed to ``.append(...)`` — the shapes that actually travel.

The version the current hash must be filed under comes from
``<PREFIX>_SHAPE_VERSION`` if present, else the module's ``WIRE_VERSION``;
either may be an ``int`` literal or a one-hop reference to another
module-level ``int``.  Changing the producer without bumping the version
(or bumping without recording the new hash) is ``wire-drift``; a
malformed/unresolvable pin is ``wire-shape-config``.
"""

from __future__ import annotations

import ast
import hashlib
import re
from typing import Dict, List, Optional

from ..diagnostics import Diagnostic
from ..engine import FileContext
from .base import FilePass, canonical_dump

_HISTORY_RE = re.compile(r"^(?P<prefix>_?[A-Za-z0-9_]+)_SHAPE_HISTORY$")


def shape_hash(func: ast.AST) -> str:
    """Hex digest of the wire shape produced by *func*.

    Covers every ``return`` expression and every dict literal passed to an
    ``.append(...)`` call, in source order.
    """
    pieces: List[str] = []
    for node in ast.walk(func):
        if isinstance(node, ast.Return) and node.value is not None:
            pieces.append("R:" + canonical_dump(node.value))
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "append"
            and node.args
            and isinstance(node.args[0], ast.Dict)
        ):
            pieces.append("P:" + canonical_dump(node.args[0]))
    digest = hashlib.sha256("\n".join(pieces).encode("utf-8")).hexdigest()
    return digest[:16]


class WireDriftPass(FilePass):
    name = "wire-drift"
    rules = ("wire-drift", "wire-shape-config")
    rule_descriptions = {
        "wire-drift": (
            "the statically-extracted shape of a wire producer changed "
            "without a version bump (or the bumped version has no recorded "
            "shape hash)"
        ),
        "wire-shape-config": (
            "a *_SHAPE_HISTORY pin is malformed: unresolvable function, "
            "non-{int: str} history, or missing version constant"
        ),
    }

    def check_file(self, ctx: FileContext) -> List[Diagnostic]:
        constants = self._int_constants(ctx.tree)
        diagnostics: List[Diagnostic] = []
        for name, node, value in self._module_assignments(ctx.tree):
            match = _HISTORY_RE.match(name)
            if match is None:
                continue
            prefix = match.group("prefix")
            diagnostics.extend(
                self._check_pin(ctx, prefix, node, value, constants)
            )
        return diagnostics

    # ------------------------------------------------------------------ #
    @staticmethod
    def _module_assignments(tree: ast.Module):
        for statement in tree.body:
            if isinstance(statement, ast.Assign):
                for target in statement.targets:
                    if isinstance(target, ast.Name):
                        yield target.id, statement, statement.value
            elif isinstance(statement, ast.AnnAssign) and isinstance(
                statement.target, ast.Name
            ):
                if statement.value is not None:
                    yield statement.target.id, statement, statement.value

    def _int_constants(self, tree: ast.Module) -> Dict[str, int]:
        """Module-level ``NAME = <int>`` bindings (with one-hop chasing)."""
        direct: Dict[str, int] = {}
        aliases: Dict[str, str] = {}
        for name, _node, value in self._module_assignments(tree):
            if isinstance(value, ast.Constant) and isinstance(value.value, int):
                direct[name] = value.value
            elif isinstance(value, ast.Name):
                aliases[name] = value.id
        for name, referent in aliases.items():
            if referent in direct:
                direct.setdefault(name, direct[referent])
        return direct

    def _parse_history(
        self, value: ast.AST
    ) -> Optional[Dict[int, str]]:
        if not isinstance(value, ast.Dict):
            return None
        history: Dict[int, str] = {}
        for key, entry in zip(value.keys, value.values):
            if (
                not isinstance(key, ast.Constant)
                or not isinstance(key.value, int)
                or not isinstance(entry, ast.Constant)
                or not isinstance(entry.value, str)
            ):
                return None
            history[key.value] = entry.value
        return history

    def _find_function(
        self, tree: ast.Module, name: str
    ) -> Optional[ast.AST]:
        for node in ast.walk(tree):
            if (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node.name == name
            ):
                return node
        return None

    # ------------------------------------------------------------------ #
    def _check_pin(
        self,
        ctx: FileContext,
        prefix: str,
        node: ast.AST,
        value: ast.AST,
        constants: Dict[str, int],
    ) -> List[Diagnostic]:
        func_name = prefix.lower()
        history = self._parse_history(value)
        if history is None or not history:
            return [
                ctx.diagnostic(
                    "wire-shape-config",
                    node,
                    f"{prefix}_SHAPE_HISTORY must be a non-empty literal "
                    "dict of {int version: str shape hash}",
                    hint="use literal int keys and string hash values",
                )
            ]
        func = self._find_function(ctx.tree, func_name)
        if func is None:
            return [
                ctx.diagnostic(
                    "wire-shape-config",
                    node,
                    f"{prefix}_SHAPE_HISTORY pins function {func_name!r}, "
                    "which does not exist in this module",
                    hint=(
                        "the constant name must be "
                        "<FUNCTION_NAME_UPPERCASED>_SHAPE_HISTORY"
                    ),
                )
            ]
        version = constants.get(f"{prefix}_SHAPE_VERSION")
        if version is None:
            version = constants.get("WIRE_VERSION")
        if version is None:
            return [
                ctx.diagnostic(
                    "wire-shape-config",
                    node,
                    f"no version constant for {prefix}_SHAPE_HISTORY: "
                    f"define {prefix}_SHAPE_VERSION or WIRE_VERSION as a "
                    "module-level int",
                    hint="an int literal or a one-hop reference to one",
                )
            ]
        current = shape_hash(func)
        recorded = history.get(version)
        if recorded is None:
            return [
                ctx.diagnostic(
                    "wire-drift",
                    node,
                    f"version {version} of {func_name!r} has no recorded "
                    f"shape hash (current shape is {current!r})",
                    hint=(
                        f"add {{{version}: {current!r}}} to "
                        f"{prefix}_SHAPE_HISTORY after reviewing the "
                        "compatibility impact"
                    ),
                )
            ]
        if recorded != current:
            return [
                ctx.diagnostic(
                    "wire-drift",
                    func,
                    f"the wire shape of {func_name!r} changed (hash "
                    f"{current!r}, recorded {recorded!r} for version "
                    f"{version}) without a version bump",
                    hint=(
                        "bump the version constant and record the new hash "
                        f"{current!r} in {prefix}_SHAPE_HISTORY; keep the "
                        "old entry for provenance"
                    ),
                )
            ]
        return []
