"""Observability stub discipline pass (``obs-global-access``).

The PR 7 observability layer is dormant-by-default: ``repro.obs.runtime``
holds module-private recorder slots (``_metrics`` / ``_tracer``) and the
*only* supported way to reach them is the runtime accessors
(``obs.metrics()`` / ``obs.tracer()``), called at the instrumentation site.
Two access patterns break that contract:

* importing or touching the private globals directly
  (``from repro.obs.runtime import _metrics``,
  ``runtime._tracer.span(...)``) — the reader captures whatever recorder
  was installed at import time and silently misses later ``activate()`` /
  ``deactivate()`` swaps (worker processes swap recorders per chunk);
* calling an accessor at module import time
  (``METRICS = obs.metrics()`` at top level) — same freeze, one level up.

Everything inside the ``repro.obs`` package itself is exempt: the runtime
module owns its globals.
"""

from __future__ import annotations

import ast
from typing import List, Set

from ..diagnostics import Diagnostic
from ..engine import FileContext
from .base import FilePass, dotted_name, import_table

#: The module owning the private recorder slots.
RUNTIME_MODULE = "repro.obs.runtime"

#: Accessor functions that must only be called at call sites, never at
#: module import time.
ACCESSOR_NAMES = frozenset({"metrics", "tracer"})


def _in_obs_package(module: str) -> bool:
    return module == "repro.obs" or module.startswith("repro.obs.")


class ObsDisciplinePass(FilePass):
    name = "obs-discipline"
    rules = ("obs-global-access",)
    rule_descriptions = {
        "obs-global-access": (
            "instrumentation reaches repro.obs internals directly (private "
            "recorder globals, or accessors called at import time) instead "
            "of calling obs.metrics()/obs.tracer() at the instrumentation "
            "site"
        ),
    }

    def check_file(self, ctx: FileContext) -> List[Diagnostic]:
        if ctx.module is not None and _in_obs_package(ctx.module):
            return []
        diagnostics: List[Diagnostic] = []
        runtime_aliases: Set[str] = set()
        accessor_aliases: Set[str] = set()
        for local, binding in import_table(ctx).items():
            if binding.kind == "module" and binding.target == RUNTIME_MODULE:
                runtime_aliases.add(local)
            elif binding.kind == "from":
                if binding.target == "repro.obs" and binding.obj == "runtime":
                    runtime_aliases.add(local)
                elif binding.target == RUNTIME_MODULE:
                    if binding.obj is not None and binding.obj.startswith("_"):
                        diagnostics.append(
                            self._private_import(ctx, local, binding.obj)
                        )
                    elif binding.obj in ACCESSOR_NAMES:
                        accessor_aliases.add(local)

        # Private attribute access through a runtime-module alias.
        if runtime_aliases:
            for node in ast.walk(ctx.tree):
                if not isinstance(node, ast.Attribute):
                    continue
                base = node.value
                if (
                    isinstance(base, ast.Name)
                    and base.id in runtime_aliases
                    and node.attr.startswith("_")
                ):
                    diagnostics.append(
                        ctx.diagnostic(
                            "obs-global-access",
                            node,
                            f"direct access to private recorder global "
                            f"'{base.id}.{node.attr}' — bypasses "
                            "activate()/deactivate() swaps",
                            hint=(
                                "call the runtime accessor "
                                "(obs.metrics()/obs.tracer()) at the "
                                "instrumentation site instead"
                            ),
                        )
                    )

        diagnostics.extend(
            self._import_time_calls(ctx, runtime_aliases, accessor_aliases)
        )
        return diagnostics

    # ------------------------------------------------------------------ #
    def _private_import(
        self, ctx: FileContext, local: str, obj: str
    ) -> Diagnostic:
        node = self._import_node(ctx, obj)
        return ctx.diagnostic(
            "obs-global-access",
            node,
            f"private recorder global {obj!r} imported from "
            f"{RUNTIME_MODULE!r} — the binding freezes whichever recorder "
            "was installed at import time",
            hint=(
                "import the module and call its accessor "
                "(obs.metrics()/obs.tracer()) at the instrumentation site"
            ),
        )

    def _import_node(self, ctx: FileContext, obj: str) -> ast.AST:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and any(
                alias.name == obj for alias in node.names
            ):
                return node
        return ctx.tree

    # ------------------------------------------------------------------ #
    def _import_time_calls(
        self,
        ctx: FileContext,
        runtime_aliases: Set[str],
        accessor_aliases: Set[str],
    ) -> List[Diagnostic]:
        """Accessor calls executed at module import time."""
        if not runtime_aliases and not accessor_aliases:
            return []
        diagnostics: List[Diagnostic] = []
        for node in self._module_level_nodes(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = dotted_name(node.func)
            if chain is None:
                continue
            parts = chain.split(".")
            hit = (len(parts) == 1 and parts[0] in accessor_aliases) or (
                len(parts) == 2
                and parts[0] in runtime_aliases
                and parts[1] in ACCESSOR_NAMES
            )
            if hit:
                diagnostics.append(
                    ctx.diagnostic(
                        "obs-global-access",
                        node,
                        f"observability accessor {chain}() called at module "
                        "import time — the result freezes the recorder "
                        "installed at import",
                        hint=(
                            "call the accessor inside the function that "
                            "records, so activate()/deactivate() take effect"
                        ),
                    )
                )
        return diagnostics

    @staticmethod
    def _module_level_nodes(tree: ast.Module):
        """Every node executed at import time (skips function/lambda bodies).

        Class bodies *are* executed at import time, so they are included.
        """
        stack: List[ast.AST] = list(tree.body)
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                # Default expressions and decorators still run at import time.
                if not isinstance(node, ast.Lambda):
                    stack.extend(node.decorator_list)
                stack.extend(d for d in node.args.defaults)
                stack.extend(d for d in node.args.kw_defaults if d is not None)
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))
