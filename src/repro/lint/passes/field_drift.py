"""Serializer field-drift pass (``field-drift``, ``mutable-default-arg``).

The bug class this pass exists for: a dataclass grows a field, but one of
its hand-written serializers — ``to_dict``/``from_dict`` methods, paired
``*_to_dict``/``*_from_dict`` module functions, or an accumulating
``merge()`` — is not updated, and the field is *silently dropped* on one
side of a round-trip.  PR 7 shipped exactly this bug: the
``forbidden_cache_hits``/``forbidden_cache_misses`` counters of
``EnumerationStats`` vanished on the memo-store path because
``stats_to_dict`` predated them.

For every dataclass in a module, the pass discovers its serializers:

* methods named ``to_dict`` / ``from_dict`` / ``to_payload`` /
  ``from_payload`` / ``merge`` defined on the dataclass itself;
* module-level functions matching ``*_to_dict`` / ``*_from_dict`` /
  ``*_to_wire`` / ``*_from_wire`` whose parameter or return annotation
  names the dataclass.

and statically computes the set of fields each serializer *mentions*:
attribute reads on the serialized object (``stats.lt_calls``, ``self.x``,
``other.x``), string-literal keys (dict displays, ``data["k"]``,
``data.get("k")``), and keyword arguments of calls to the dataclass
constructor (``cls(...)`` / ``ClassName(...)``).  A serializer that
iterates ``dataclasses.fields(...)`` is generically complete and passes by
construction.  Any dataclass field missing from a serializer's mention set
is reported.

``mutable-default-arg`` is the companion rule: a function parameter whose
default is a mutable display or constructor (``def f(x=[])``) aliases one
object across every call — the same silent-state-sharing family.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set

from ..diagnostics import Diagnostic
from ..engine import FileContext
from .base import (
    FilePass,
    annotation_names,
    dataclass_fields,
    dotted_name,
    is_dataclass_def,
)

#: Method names treated as serializers when defined on the dataclass.
SERIALIZER_METHODS = frozenset(
    {"to_dict", "from_dict", "to_payload", "from_payload", "merge"}
)

#: Module-level function name suffixes treated as serializers when an
#: annotation ties them to the dataclass.
SERIALIZER_SUFFIXES = ("_to_dict", "_from_dict", "_to_wire", "_from_wire")

#: Mutable default-argument constructors.
_MUTABLE_CALLS = frozenset(
    {"list", "dict", "set", "OrderedDict", "defaultdict", "deque", "bytearray"}
)


def _uses_dataclass_fields_introspection(func: ast.AST) -> bool:
    """``True`` when the function iterates ``dataclasses.fields(...)``."""
    for node in ast.walk(func):
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name is not None and name.split(".")[-1] == "fields":
                return True
    return False


def _object_params(
    func: ast.FunctionDef, class_name: Optional[str], is_method: bool
) -> Set[str]:
    """Parameter names holding an instance of the serialized dataclass."""
    params: Set[str] = set()
    args = func.args
    all_args = list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
    if is_method and all_args:
        first = all_args[0].arg
        if first in ("self", "cls"):
            params.add(first)
            # ``merge(self, other)`` reads fields off both sides.
    for arg in all_args:
        if class_name is not None and class_name in annotation_names(
            arg.annotation
        ):
            params.add(arg.arg)
    return params


def _mentioned_fields(
    func: ast.FunctionDef, class_name: str, object_params: Set[str]
) -> Set[str]:
    """Every dataclass field name the serializer's body touches."""
    mentioned: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Attribute):
            base = node.value
            if isinstance(base, ast.Name) and base.id in object_params:
                mentioned.add(node.attr)
        elif isinstance(node, ast.Dict):
            for key in node.keys:
                if isinstance(key, ast.Constant) and isinstance(key.value, str):
                    mentioned.add(key.value)
        elif isinstance(node, ast.Subscript):
            index = node.slice
            if isinstance(index, ast.Constant) and isinstance(index.value, str):
                mentioned.add(index.value)
        elif isinstance(node, ast.Call):
            callee = dotted_name(node.func)
            if callee is not None:
                tail = callee.split(".")[-1]
                root = callee.split(".")[0]
                if tail in ("get", "pop", "setdefault") and node.args:
                    first = node.args[0]
                    if isinstance(first, ast.Constant) and isinstance(
                        first.value, str
                    ):
                        mentioned.add(first.value)
                if root == class_name or callee in ("cls", class_name):
                    for keyword in node.keywords:
                        if keyword.arg is not None:
                            mentioned.add(keyword.arg)
    return mentioned


class FieldDriftPass(FilePass):
    name = "field-drift"
    rules = ("field-drift", "mutable-default-arg")
    rule_descriptions = {
        "field-drift": (
            "a dataclass field is missing from a paired hand-written "
            "serializer (to_dict/from_dict/merge/wire) and would be "
            "silently dropped in a round-trip"
        ),
        "mutable-default-arg": (
            "a function parameter defaults to a shared mutable object "
            "(list/dict/set display or constructor)"
        ),
    }

    def check_file(self, ctx: FileContext) -> List[Diagnostic]:
        diagnostics: List[Diagnostic] = []
        classes: Dict[str, ast.ClassDef] = {
            node.name: node
            for node in ast.walk(ctx.tree)
            if isinstance(node, ast.ClassDef)
        }
        for class_name, class_node in classes.items():
            if not is_dataclass_def(class_node):
                continue
            fields = {name for name, _ in dataclass_fields(class_node)}
            if not fields:
                continue
            for func, is_method in self._serializers(ctx, class_node):
                diagnostics.extend(
                    self._check_serializer(
                        ctx, class_name, fields, func, is_method
                    )
                )
        diagnostics.extend(self._check_mutable_defaults(ctx))
        return diagnostics

    # ------------------------------------------------------------------ #
    def _serializers(self, ctx: FileContext, class_node: ast.ClassDef):
        """Yield ``(function, is_method)`` serializer pairs of the class."""
        for statement in class_node.body:
            if (
                isinstance(statement, ast.FunctionDef)
                and statement.name in SERIALIZER_METHODS
            ):
                yield statement, True
        for statement in ctx.tree.body:
            if not isinstance(statement, ast.FunctionDef):
                continue
            if not statement.name.endswith(SERIALIZER_SUFFIXES):
                continue
            referenced: Set[str] = set()
            for arg in (
                list(statement.args.posonlyargs)
                + list(statement.args.args)
                + list(statement.args.kwonlyargs)
            ):
                referenced.update(annotation_names(arg.annotation))
            referenced.update(annotation_names(statement.returns))
            if class_node.name in referenced:
                yield statement, False

    def _check_serializer(
        self,
        ctx: FileContext,
        class_name: str,
        fields: Set[str],
        func: ast.FunctionDef,
        is_method: bool,
    ) -> List[Diagnostic]:
        if _uses_dataclass_fields_introspection(func):
            return []  # derived from fields(...): complete by construction
        params = _object_params(func, class_name, is_method)
        mentioned = _mentioned_fields(func, class_name, params)
        missing = sorted(fields - mentioned)
        return [
            ctx.diagnostic(
                "field-drift",
                func,
                f"field {field!r} of dataclass {class_name!r} is not "
                f"handled by serializer {func.name!r}",
                hint=(
                    f"add {field!r} to {func.name!r} (or derive it from "
                    "dataclasses.fields() so new fields can never be dropped)"
                ),
            )
            for field in missing
        ]

    # ------------------------------------------------------------------ #
    def _check_mutable_defaults(self, ctx: FileContext) -> List[Diagnostic]:
        diagnostics: List[Diagnostic] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                mutable = isinstance(default, (ast.List, ast.Dict, ast.Set))
                if isinstance(default, ast.Call):
                    callee = dotted_name(default.func)
                    if (
                        callee is not None
                        and callee.split(".")[-1] in _MUTABLE_CALLS
                    ):
                        mutable = True
                if mutable:
                    diagnostics.append(
                        ctx.diagnostic(
                            "mutable-default-arg",
                            default,
                            f"parameter default of {node.name!r} is a shared "
                            "mutable object, aliased across every call",
                            hint="default to None and construct inside the body",
                        )
                    )
        return diagnostics
