"""Pass protocol and shared AST utilities of the lint framework.

Two kinds of pass exist:

* **File passes** (:class:`FilePass`) see one parsed file at a time and may
  run in parallel across files.
* **Project passes** (:class:`ProjectPass`) see the whole
  :class:`~repro.lint.engine.Project` — required for cross-module analyses
  such as the worker shared-state race detector.

The helpers below are the vocabulary every domain pass is built from:
dotted-name rendering of attribute chains, import tables with relative
import resolution, dataclass field extraction, and a canonical AST dump
whose hash is stable across Python 3.10–3.12 (the wire-drift pass pins
those hashes in source).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..diagnostics import Diagnostic
from ..engine import FileContext, Project


class FilePass:
    """Base class of per-file passes."""

    name: str = "base"
    rules: Tuple[str, ...] = ()
    rule_descriptions: Dict[str, str] = {}
    is_project_pass: bool = False

    def check_file(self, ctx: FileContext) -> List[Diagnostic]:
        raise NotImplementedError


class ProjectPass(FilePass):
    """Base class of whole-project passes."""

    is_project_pass = True

    def check_file(self, ctx: FileContext) -> List[Diagnostic]:
        return []

    def check_project(self, project: Project) -> List[Diagnostic]:
        raise NotImplementedError


# --------------------------------------------------------------------------- #
# Attribute chains
# --------------------------------------------------------------------------- #
def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, ``None`` for anything else."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


# --------------------------------------------------------------------------- #
# Imports
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class ImportedName:
    """One local binding created by an import statement.

    ``kind`` is ``"module"`` (``import x.y as z`` -> target ``x.y``) or
    ``"from"`` (``from pkg import name`` -> target ``pkg``, ``obj=name`` —
    which may resolve to either the module ``pkg.name`` or an object in
    ``pkg``; consumers try both).
    """

    kind: str
    target: str
    obj: Optional[str] = None


def resolve_relative(module: Optional[str], is_init: bool, level: int, name: str) -> str:
    """Absolute module path of ``from <level dots><name> import ...``."""
    if level == 0 or not module:
        return name
    parts = module.split(".")
    # Level 1 is the current package: for a plain module that is the parent
    # package, for an ``__init__`` file it is the package itself.
    chop = level if not is_init else level - 1
    base = parts[: len(parts) - chop] if chop else parts
    return ".".join(base + ([name] if name else []))


def import_table(ctx: FileContext) -> Dict[str, ImportedName]:
    """Local name -> import binding, for the module-level imports of *ctx*.

    Imports inside functions are included too (common for cycle-avoidance),
    keyed by the same local alias — a best-effort flat view that is
    sufficient for call resolution.
    """
    is_init = ctx.abspath.endswith("__init__.py")
    table: Dict[str, ImportedName] = {}
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                table[local] = ImportedName(kind="module", target=target)
        elif isinstance(node, ast.ImportFrom):
            base = resolve_relative(
                ctx.module, is_init, node.level, node.module or ""
            )
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                table[local] = ImportedName(
                    kind="from", target=base, obj=alias.name
                )
    return table


# --------------------------------------------------------------------------- #
# Dataclasses
# --------------------------------------------------------------------------- #
def is_dataclass_def(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = dotted_name(target)
        if name is not None and name.split(".")[-1] == "dataclass":
            return True
    return False


def dataclass_fields(node: ast.ClassDef) -> List[Tuple[str, ast.AnnAssign]]:
    """``(field name, annotation node)`` for every dataclass field.

    ``ClassVar`` annotations and names starting with ``_`` are skipped —
    they are not part of the serialized surface.
    """
    fields: List[Tuple[str, ast.AnnAssign]] = []
    for statement in node.body:
        if not isinstance(statement, ast.AnnAssign):
            continue
        target = statement.target
        if not isinstance(target, ast.Name) or target.id.startswith("_"):
            continue
        annotation = ast.dump(statement.annotation)
        if "ClassVar" in annotation:
            continue
        fields.append((target.id, statement))
    return fields


def annotation_names(node: Optional[ast.AST]) -> List[str]:
    """Every bare class name mentioned by an annotation expression.

    Handles string annotations (``-> "Constraints"``), ``Optional[X]``,
    qualified names and unions; returns the unqualified trailing names.
    """
    if node is None:
        return []
    names: List[str] = []
    stack: List[ast.AST] = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, ast.Constant) and isinstance(current.value, str):
            try:
                stack.append(ast.parse(current.value, mode="eval").body)
            except SyntaxError:
                continue
        elif isinstance(current, ast.Name):
            names.append(current.id)
        elif isinstance(current, ast.Attribute):
            names.append(current.attr)
        else:
            stack.extend(ast.iter_child_nodes(current))
    return names


# --------------------------------------------------------------------------- #
# Canonical AST dump (wire-shape hashing)
# --------------------------------------------------------------------------- #
def canonical_dump(node: ast.AST) -> str:
    """Compact, version-stable structural dump of an expression.

    Unlike :func:`ast.dump`, the output covers only the facts a wire-shape
    check cares about (node kinds, names, attribute chains, literal values,
    keyword names) and is rendered identically on every supported CPython,
    so the hashes pinned in source survive interpreter upgrades.
    """
    if isinstance(node, ast.Constant):
        return f"K({node.value!r})"
    if isinstance(node, ast.Name):
        return f"N({node.id})"
    if isinstance(node, ast.Attribute):
        return f"A({canonical_dump(node.value)}.{node.attr})"
    if isinstance(node, ast.Tuple):
        return "T(" + ",".join(canonical_dump(e) for e in node.elts) + ")"
    if isinstance(node, ast.List):
        return "L(" + ",".join(canonical_dump(e) for e in node.elts) + ")"
    if isinstance(node, ast.Set):
        return "S(" + ",".join(canonical_dump(e) for e in node.elts) + ")"
    if isinstance(node, ast.Dict):
        entries = []
        for key, value in zip(node.keys, node.values):
            rendered_key = "**" if key is None else canonical_dump(key)
            entries.append(f"{rendered_key}:{canonical_dump(value)}")
        return "D(" + ",".join(entries) + ")"
    if isinstance(node, ast.Call):
        parts = [canonical_dump(node.func)]
        parts.extend(canonical_dump(arg) for arg in node.args)
        parts.extend(
            f"{keyword.arg or '**'}={canonical_dump(keyword.value)}"
            for keyword in node.keywords
        )
        return "C(" + ";".join(parts) + ")"
    if isinstance(node, ast.Starred):
        return f"*{canonical_dump(node.value)}"
    if isinstance(node, (ast.GeneratorExp, ast.ListComp, ast.SetComp)):
        kind = type(node).__name__[0]
        pieces = [canonical_dump(node.elt)]
        for comp in node.generators:
            pieces.append(
                f"for:{canonical_dump(comp.target)}:in:{canonical_dump(comp.iter)}"
            )
            pieces.extend(f"if:{canonical_dump(test)}" for test in comp.ifs)
        return f"G{kind}(" + ";".join(pieces) + ")"
    if isinstance(node, ast.IfExp):
        return (
            f"IF({canonical_dump(node.test)};{canonical_dump(node.body)};"
            f"{canonical_dump(node.orelse)})"
        )
    if isinstance(node, ast.BoolOp):
        op = type(node.op).__name__
        return f"B({op};" + ";".join(canonical_dump(v) for v in node.values) + ")"
    if isinstance(node, ast.BinOp):
        return (
            f"O({type(node.op).__name__};{canonical_dump(node.left)};"
            f"{canonical_dump(node.right)})"
        )
    if isinstance(node, ast.UnaryOp):
        return f"U({type(node.op).__name__};{canonical_dump(node.operand)})"
    if isinstance(node, ast.Compare):
        parts = [canonical_dump(node.left)]
        for op, comparator in zip(node.ops, node.comparators):
            parts.append(f"{type(op).__name__}:{canonical_dump(comparator)}")
        return "CMP(" + ";".join(parts) + ")"
    if isinstance(node, ast.Subscript):
        return f"I({canonical_dump(node.value)}[{canonical_dump(node.slice)}])"
    if isinstance(node, ast.Slice):
        parts = [
            "" if part is None else canonical_dump(part)
            for part in (node.lower, node.upper, node.step)
        ]
        return "SL(" + ":".join(parts) + ")"
    if isinstance(node, ast.JoinedStr):
        return "F(" + ",".join(canonical_dump(v) for v in node.values) + ")"
    if isinstance(node, ast.FormattedValue):
        return f"FV({canonical_dump(node.value)})"
    # Statements / anything unexpected: structural recursion over children.
    children = ",".join(
        canonical_dump(child) for child in ast.iter_child_nodes(node)
    )
    return f"X[{type(node).__name__}]({children})"


def collect_loops(tree: ast.AST) -> List[ast.stmt]:
    """Every ``for``/``while`` statement in *tree*, outermost first."""
    return [
        node
        for node in ast.walk(tree)
        if isinstance(node, (ast.For, ast.While, ast.AsyncFor))
    ]


def stored_names(nodes: Sequence[ast.AST]) -> Tuple[set, set]:
    """``(names, dotted prefixes)`` assigned anywhere in *nodes*.

    Names cover plain rebinding (``x = ...``, loop targets, ``del x``);
    prefixes cover attribute stores (``a.b = ...`` records ``a.b``), so a
    hoistability check can tell that ``a.b.c`` is invalidated.
    """
    names: set = set()
    prefixes: set = set()
    for root in nodes:
        for node in ast.walk(root):
            if isinstance(node, ast.Name) and isinstance(
                node.ctx, (ast.Store, ast.Del)
            ):
                names.add(node.id)
            elif isinstance(node, ast.Attribute) and isinstance(
                node.ctx, (ast.Store, ast.Del)
            ):
                chain = dotted_name(node)
                if chain is not None:
                    prefixes.add(chain)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                names.add(node.name)
            elif isinstance(node, ast.ClassDef):
                names.add(node.name)
    return names, prefixes
