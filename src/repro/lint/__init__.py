"""Domain-aware static analysis for the repro codebase (``repro lint``).

A small pass framework (pure stdlib: ``ast`` + ``re``) with five passes
encoding invariants that generic linters cannot see:

* ``field-drift`` — hand-written dataclass serializers must cover every
  field (the PR 7 dropped-counter bug class);
* ``hot-path-impure-call`` / ``hot-loop-closure`` / ``hot-loop-attr`` —
  purity and hoisting discipline in the enumeration hot modules;
* ``worker-shared-state`` — code reachable from pool worker entry points
  must not write non-allowlisted module-level state;
* ``obs-global-access`` — instrumentation goes through the ``repro.obs``
  runtime accessors, never the private recorder globals;
* ``wire-drift`` / ``wire-shape-config`` — wire producers carry pinned
  shape hashes and require version bumps on change.

Suppress a finding with a trailing ``# repro-lint: disable=<rule>`` comment
(line scope) or the same comment alone on a line (file scope).
"""

from __future__ import annotations

from .diagnostics import (
    LINT_SCHEMA,
    Diagnostic,
    format_text_report,
    report_to_dict,
    summarize,
)
from .engine import LintReport, collect_files, iter_rules, run_lint
from .passes import all_passes

__all__ = [
    "LINT_SCHEMA",
    "Diagnostic",
    "LintReport",
    "all_passes",
    "collect_files",
    "format_text_report",
    "iter_rules",
    "report_to_dict",
    "run_lint",
    "summarize",
]
