"""Dominator tree with constant-time ancestor queries.

Section 5.4 of the paper requires that "ancestor queries (either on dominators
or on postdominators) can be performed in constant time".  The standard trick
is used here: the dominator tree is labelled with entry/exit times of an Euler
(pre/post-order) traversal, after which ``a dominates b`` reduces to an
interval containment test.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence

from .lengauer_tarjan import immediate_dominators


class DominatorTree:
    """Immutable dominator (or postdominator) tree.

    Parameters
    ----------
    idom:
        Immediate dominator list as produced by
        :func:`repro.dominators.lengauer_tarjan.immediate_dominators`
        (``idom[root] == root``, ``None`` for unreachable vertices).
    root:
        The tree root (artificial source for dominators, sink for
        postdominators).
    """

    def __init__(self, idom: Sequence[Optional[int]], root: int) -> None:
        self.root = root
        self._idom = list(idom)
        n = len(idom)
        self._children: List[List[int]] = [[] for _ in range(n)]
        for v, dom in enumerate(self._idom):
            if dom is None or v == root:
                continue
            self._children[dom].append(v)

        self._tin = [-1] * n
        self._tout = [-1] * n
        self._depth = [-1] * n
        self._compute_intervals()
        self._comparability: Optional[List[int]] = None

    @classmethod
    def from_graph(
        cls,
        num_nodes: int,
        successors: Sequence[Sequence[int]],
        root: int,
        removed_mask: int = 0,
    ) -> "DominatorTree":
        """Build the dominator tree of a graph directly."""
        idom = immediate_dominators(num_nodes, successors, root, removed_mask)
        return cls(idom, root)

    # ------------------------------------------------------------------ #
    def _compute_intervals(self) -> None:
        clock = 0
        stack: List[tuple] = [(self.root, 0, False)]
        while stack:
            node, depth, closing = stack.pop()
            if closing:
                self._tout[node] = clock
                clock += 1
                continue
            self._tin[node] = clock
            clock += 1
            self._depth[node] = depth
            stack.append((node, depth, True))
            for child in reversed(self._children[node]):
                stack.append((child, depth + 1, False))

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def idom(self, node: int) -> Optional[int]:
        """Immediate dominator of *node* (``None`` if unreachable, root maps to itself)."""
        return self._idom[node]

    def is_reachable(self, node: int) -> bool:
        """``True`` if *node* was reachable from the root when the tree was built."""
        return self._idom[node] is not None

    def dominates(self, a: int, b: int) -> bool:
        """``True`` if *a* dominates *b* (reflexive).  O(1)."""
        if self._idom[a] is None or self._idom[b] is None:
            return False
        return self._tin[a] <= self._tin[b] and self._tout[b] <= self._tout[a]

    def strictly_dominates(self, a: int, b: int) -> bool:
        """``True`` if *a* dominates *b* and ``a != b``.  O(1)."""
        return a != b and self.dominates(a, b)

    def depth(self, node: int) -> int:
        """Depth of *node* in the dominator tree (root has depth 0)."""
        return self._depth[node]

    def children(self, node: int) -> Sequence[int]:
        """Vertices immediately dominated by *node*."""
        return tuple(self._children[node])

    def ancestors(self, node: int) -> Iterator[int]:
        """Iterate over the strict dominators of *node*, nearest first."""
        if self._idom[node] is None:
            return
        current = node
        while current != self.root:
            current = self._idom[current]  # type: ignore[assignment]
            yield current

    def comparability_mask(self, node: int) -> int:
        """Mask of the vertices *comparable* with *node* in the tree.  O(1).

        ``u`` is comparable with ``v`` when one dominates the other
        (reflexively): the mask is the union of *node*'s subtree and its
        chain of strict dominators, plus *node* itself.  The enumeration
        hot path uses it to collapse "does any chosen vertex (post)dominate
        this candidate, or vice versa?" loops into a single AND against the
        chosen-set mask.  Unreachable vertices are comparable with nothing.
        """
        if self._comparability is None:
            self._comparability = self._compute_comparability()
        return self._comparability[node]

    def _compute_comparability(self) -> List[int]:
        n = len(self._idom)
        subtree = [0] * n
        ancestors = [0] * n
        # Children before parents: a reversed pre-order works because every
        # child has a strictly larger entry time than its parent.
        pre_order = sorted(
            (v for v in range(n) if self._idom[v] is not None),
            key=lambda v: self._tin[v],
        )
        for v in reversed(pre_order):
            mask = 1 << v
            for child in self._children[v]:
                mask |= subtree[child]
            subtree[v] = mask
        for v in pre_order:
            if v != self.root:
                parent = self._idom[v]
                ancestors[v] = ancestors[parent] | (1 << parent)
        return [
            (subtree[v] | ancestors[v]) if self._idom[v] is not None else 0
            for v in range(n)
        ]

    def dominance_frontier_size_hint(self) -> int:
        """Number of reachable vertices (useful for statistics/reporting)."""
        return sum(1 for dom in self._idom if dom is not None)

    def as_idom_list(self) -> List[Optional[int]]:
        """Return a copy of the underlying immediate-dominator list."""
        return list(self._idom)
