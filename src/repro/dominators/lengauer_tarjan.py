"""Lengauer–Tarjan immediate dominator computation.

This is the ``O(n log n)`` ("simple") variant of the Lengauer–Tarjan
algorithm [14], exactly the one the paper uses as the inner kernel of its
enumeration (Section 5.4): path compression in ``eval`` but no tree
balancing.  Two engineering choices from the paper are preserved:

* the depth-first search and ``eval`` are **iterative**, not recursive — the
  paper reports that the recursive ``eval`` defeated compiler optimisation
  because path compression links all vertices to the same ancestor; in Python
  the iterative form additionally avoids blowing the recursion limit on long
  dependence chains;
* all bookkeeping arrays are indexed by *dfnum* (the pre-order depth-first
  number), which both speeds up the inner loops and mirrors the paper's
  "store the dfnum instead of the node" optimisation.

The entry point :func:`immediate_dominators` works on a *reduced* view of the
graph: a caller-supplied ``removed_mask`` hides vertices without rebuilding
the graph, which is what the Dubrova-style multi-vertex dominator enumeration
(:mod:`repro.dominators.multi_vertex`) needs when it repeatedly removes seed
sets.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Union

SuccessorProvider = Union[Sequence[Sequence[int]], Callable[[int], Sequence[int]]]


def _as_callable(successors: SuccessorProvider) -> Callable[[int], Sequence[int]]:
    if callable(successors):
        return successors
    return lambda v: successors[v]


class _LazySuccessors:
    """Sequence façade over a callable successor provider (memoised per vertex)."""

    def __init__(self, provider: Callable[[int], Sequence[int]], num_nodes: int) -> None:
        self._provider = provider
        self._rows: List[Optional[Sequence[int]]] = [None] * num_nodes

    def __getitem__(self, v: int) -> Sequence[int]:
        row = self._rows[v]
        if row is None:
            row = self._provider(v)
            self._rows[v] = row
        return row


def immediate_dominators(
    num_nodes: int,
    successors: SuccessorProvider,
    root: int,
    removed_mask: int = 0,
) -> List[Optional[int]]:
    """Compute immediate dominators of every vertex reachable from *root*.

    Parameters
    ----------
    num_nodes:
        Total number of vertices (ids ``0 .. num_nodes - 1``).
    successors:
        Either a list of successor lists or a callable mapping a vertex to its
        successors.
    root:
        Root vertex of the (reduced) graph.
    removed_mask:
        Bit mask of vertices to treat as absent.  Edges incident to a removed
        vertex are ignored.  The root must not be removed.

    Returns
    -------
    list
        ``idom`` list where ``idom[root] == root``, ``idom[v]`` is the
        immediate dominator of a reachable vertex ``v``, and ``idom[v] is
        None`` for vertices that are removed or unreachable from the root.
    """
    if (removed_mask >> root) & 1:
        raise ValueError("the root vertex may not be removed")
    # Hot path: when the caller hands over plain successor lists (the
    # enumeration kernels always do), index them directly — the closure
    # produced by ``_as_callable`` costs an extra Python call per edge, and
    # this function is the inner kernel of the whole enumeration.  Callable
    # providers are materialised lazily so they are still only consulted for
    # vertices the search actually touches.
    if callable(successors):
        succ_lists: Sequence[Sequence[int]] = _LazySuccessors(successors, num_nodes)
    else:
        succ_lists = successors

    # -- Iterative depth-first search ------------------------------------- #
    dfnum = [-1] * num_nodes          # vertex -> dfs number
    vertex: List[int] = []            # dfs number -> vertex
    parent_df: List[int] = []         # dfs number -> dfs number of DFS parent

    stack: List[tuple] = [(root, -1)]
    while stack:
        node, parent_number = stack.pop()
        if dfnum[node] != -1:
            continue
        number = len(vertex)
        dfnum[node] = number
        vertex.append(node)
        parent_df.append(parent_number)
        for succ in succ_lists[node]:
            if (removed_mask >> succ) & 1:
                continue
            if dfnum[succ] == -1:
                stack.append((succ, number))

    count = len(vertex)
    if count == 0:
        return [None] * num_nodes

    # Predecessor lists restricted to visited vertices, in dfnum space.
    preds_df: List[List[int]] = [[] for _ in range(count)]
    for number in range(count):
        node = vertex[number]
        for succ in succ_lists[node]:
            if (removed_mask >> succ) & 1:
                continue
            succ_number = dfnum[succ]
            if succ_number != -1:
                preds_df[succ_number].append(number)

    # -- Semi-dominators and dominator computation ------------------------ #
    semi = list(range(count))          # dfnum -> dfnum of semi-dominator
    ancestor = [-1] * count            # forest for eval/link
    label = list(range(count))         # label[v]: vertex with min semi on path
    idom_df = [-1] * count
    samedom = [-1] * count
    bucket: List[List[int]] = [[] for _ in range(count)]

    def eval_(v: int) -> int:
        """Return the label with minimal semi-dominator on the forest path of *v*."""
        if ancestor[v] == -1:
            return label[v]
        # Collect the path to the forest root, then compress it bottom-up.
        path = []
        u = v
        while ancestor[ancestor[u]] != -1:
            path.append(u)
            u = ancestor[u]
        for node_ in reversed(path):
            anc = ancestor[node_]
            if semi[label[anc]] < semi[label[node_]]:
                label[node_] = label[anc]
            ancestor[node_] = ancestor[anc]
        return label[v]

    for w in range(count - 1, 0, -1):
        p = parent_df[w]
        # Step 2: semi-dominator of w.
        s = semi[w]
        for v in preds_df[w]:
            u = eval_(v)
            if semi[u] < s:
                s = semi[u]
        semi[w] = s
        bucket[s].append(w)
        # link(p, w)
        ancestor[w] = p
        label[w] = w
        # Step 3: implicitly compute idom for vertices whose semi-dominator is p.
        for v in bucket[p]:
            u = eval_(v)
            if semi[u] < semi[v]:
                samedom[v] = u
            else:
                idom_df[v] = p
        bucket[p] = []

    # Step 4: fill in deferred dominators in dfnum order.
    for w in range(1, count):
        if samedom[w] != -1:
            idom_df[w] = idom_df[samedom[w]]

    # -- Translate back to vertex ids ------------------------------------- #
    idom: List[Optional[int]] = [None] * num_nodes
    idom[root] = root
    for w in range(1, count):
        idom[vertex[w]] = vertex[idom_df[w]]
    return idom


def strict_dominators(
    idom: Sequence[Optional[int]],
    node: int,
    root: int,
) -> List[int]:
    """Walk the dominator tree upwards from *node* (excluded) to *root* (included).

    Returns the strict dominators of *node* in root-to-node order reversed
    (i.e. nearest dominator first).  Returns an empty list if *node* is
    unreachable.
    """
    if idom[node] is None:
        return []
    result = []
    current = idom[node]
    while True:
        result.append(current)
        if current == root:
            break
        nxt = idom[current]
        if nxt is None or nxt == current:
            break
        current = nxt
    return result


def dominates(idom: Sequence[Optional[int]], a: int, b: int) -> bool:
    """``True`` if vertex *a* dominates vertex *b* according to *idom* (a == b counts)."""
    if idom[b] is None:
        return False
    current: Optional[int] = b
    while current is not None:
        if current == a:
            return True
        nxt = idom[current]
        if nxt == current:
            return False
        current = nxt
    return False
