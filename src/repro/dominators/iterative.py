"""Iterative data-flow dominator computation (Cooper–Harvey–Kennedy).

The paper relies on Lengauer–Tarjan for speed; this module provides the
simpler iterative algorithm as an independent cross-check.  The tests compare
the two implementations (and ``networkx.immediate_dominators``) on random
DAGs, which guards against subtle bugs in the performance-oriented code.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Union

SuccessorProvider = Union[Sequence[Sequence[int]], Callable[[int], Sequence[int]]]


def _as_callable(successors: SuccessorProvider) -> Callable[[int], Sequence[int]]:
    if callable(successors):
        return successors
    return lambda v: successors[v]


def immediate_dominators_iterative(
    num_nodes: int,
    successors: SuccessorProvider,
    root: int,
    removed_mask: int = 0,
) -> List[Optional[int]]:
    """Cooper–Harvey–Kennedy iterative dominator computation.

    Same contract as
    :func:`repro.dominators.lengauer_tarjan.immediate_dominators`: returns the
    ``idom`` list with ``idom[root] == root`` and ``None`` for removed or
    unreachable vertices.
    """
    if (removed_mask >> root) & 1:
        raise ValueError("the root vertex may not be removed")
    succ_of = _as_callable(successors)

    # Reverse post-order of the reachable sub-graph (iterative DFS).
    visited = [False] * num_nodes
    postorder: List[int] = []
    stack: List[tuple] = [(root, iter(succ_of(root)))]
    visited[root] = True
    while stack:
        node, it = stack[-1]
        advanced = False
        for succ in it:
            if (removed_mask >> succ) & 1 or visited[succ]:
                continue
            visited[succ] = True
            stack.append((succ, iter(succ_of(succ))))
            advanced = True
            break
        if not advanced:
            postorder.append(node)
            stack.pop()

    rpo = list(reversed(postorder))
    rpo_index = {node: i for i, node in enumerate(rpo)}

    preds: List[List[int]] = [[] for _ in range(num_nodes)]
    for node in rpo:
        for succ in succ_of(node):
            if (removed_mask >> succ) & 1:
                continue
            if visited[succ]:
                preds[succ].append(node)

    idom: List[Optional[int]] = [None] * num_nodes
    idom[root] = root

    def intersect(a: int, b: int) -> int:
        while a != b:
            while rpo_index[a] > rpo_index[b]:
                a = idom[a]  # type: ignore[assignment]
            while rpo_index[b] > rpo_index[a]:
                b = idom[b]  # type: ignore[assignment]
        return a

    changed = True
    while changed:
        changed = False
        for node in rpo:
            if node == root:
                continue
            new_idom: Optional[int] = None
            for pred in preds[node]:
                if idom[pred] is None:
                    continue
                if new_idom is None:
                    new_idom = pred
                else:
                    new_idom = intersect(new_idom, pred)
            if new_idom is not None and idom[node] != new_idom:
                idom[node] = new_idom
                changed = True
    return idom


def immediate_dominators_dag(
    topo_order: Sequence[int],
    predecessor_lists: Sequence[Sequence[int]],
    root: int,
    removed_mask: int = 0,
) -> List[Optional[int]]:
    """Single-pass dominator computation for *acyclic* graphs.

    On a DAG every topological order is a reverse post-order, so the
    Cooper–Harvey–Kennedy data-flow iteration converges in exactly one
    sweep: when a vertex is visited, all of its predecessors already carry
    their final immediate dominator, and ``idom(v)`` is the nearest common
    dominator-tree ancestor of the reachable, non-removed predecessors
    (found by depth-climbing).  This is the dominator kernel of the
    enumeration hot path — data-flow graphs are acyclic by construction, a
    caller-supplied topological order and predecessor lists replace the
    per-call depth-first searches of the general algorithms, and no
    iteration-to-fixpoint is needed.

    Same contract as
    :func:`repro.dominators.lengauer_tarjan.immediate_dominators`: returns
    the ``idom`` list over vertex ids, with ``idom[root] == root`` and
    ``None`` for removed or unreachable vertices.  The tests assert
    agreement with Lengauer–Tarjan on random seed-removed DAGs.
    """
    if (removed_mask >> root) & 1:
        raise ValueError("the root vertex may not be removed")
    num_nodes = len(predecessor_lists)
    idom: List[Optional[int]] = [None] * num_nodes
    depth = [0] * num_nodes
    idom[root] = root
    for v in topo_order:
        if v == root or (removed_mask >> v) & 1:
            continue
        new_idom: Optional[int] = None
        for pred in predecessor_lists[v]:
            if idom[pred] is None:  # removed or unreachable predecessor
                continue
            if new_idom is None:
                new_idom = pred
                continue
            a, b = new_idom, pred
            while a != b:
                if depth[a] < depth[b]:
                    a, b = b, a
                a = idom[a]  # type: ignore[assignment]
            new_idom = a
        if new_idom is not None:
            idom[v] = new_idom
            depth[v] = depth[new_idom] + 1
    return idom
