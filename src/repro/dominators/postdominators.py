"""Postdominator computation on augmented data-flow graphs.

Postdominators are dominators of the reverse graph rooted at the artificial
sink.  The paper uses them in two pruning rules:

* output admissibility — two vertices where one postdominates the other can
  never both be outputs of the same convex cut (Section 5.1);
* input–input pruning — a seed set in which one input postdominates another
  can be dismissed before running Lengauer–Tarjan (Section 5.3).
"""

from __future__ import annotations

from typing import List, Optional

from ..dfg.augment import AugmentedDFG
from ..dfg.graph import DataFlowGraph
from .dominator_tree import DominatorTree
from .lengauer_tarjan import immediate_dominators


def immediate_postdominators(
    graph: DataFlowGraph,
    sink: int,
    removed_mask: int = 0,
) -> List[Optional[int]]:
    """Immediate postdominators of every vertex of *graph* w.r.t. *sink*."""
    predecessor_lists = [list(graph.predecessors(v)) for v in graph.node_ids()]
    return immediate_dominators(graph.num_nodes, predecessor_lists, sink, removed_mask)


def postdominator_tree(graph: DataFlowGraph, sink: int) -> DominatorTree:
    """Postdominator tree of *graph* rooted at *sink*."""
    return DominatorTree(immediate_postdominators(graph, sink), sink)


def dominator_tree_of(augmented: AugmentedDFG) -> DominatorTree:
    """Dominator tree of an augmented DFG, rooted at its artificial source."""
    graph = augmented.graph
    successor_lists = [list(graph.successors(v)) for v in graph.node_ids()]
    idom = immediate_dominators(graph.num_nodes, successor_lists, augmented.source)
    return DominatorTree(idom, augmented.source)


def postdominator_tree_of(augmented: AugmentedDFG) -> DominatorTree:
    """Postdominator tree of an augmented DFG, rooted at its artificial sink."""
    return postdominator_tree(augmented.graph, augmented.sink)
