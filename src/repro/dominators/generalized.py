"""Definition-based generalized (multiple-vertex) dominator checks.

Gupta's generalized dominators [13] are defined purely in terms of paths
(Definition 5 of the paper):

1. every path from the root to the target contains at least one vertex of the
   set, and
2. every vertex of the set lies on at least one root-to-target path that
   avoids the other vertices of the set (irredundancy).

This module implements the two conditions directly with breadth-first
searches that avoid a removal set.  The functions are deliberately simple —
they serve as the ground truth the optimised machinery
(:mod:`repro.dominators.multi_vertex`) is tested against, and as the
"``I`` dominates ``o``" predicate used by the enumeration algorithms.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Sequence, Union

SuccessorProvider = Union[Sequence[Sequence[int]], Callable[[int], Sequence[int]]]


def _as_callable(successors: SuccessorProvider) -> Callable[[int], Sequence[int]]:
    if callable(successors):
        return successors
    return lambda v: successors[v]


def reachable_mask_avoiding(
    num_nodes: int,
    successors: SuccessorProvider,
    start: int,
    avoid_mask: int = 0,
) -> int:
    """Mask of vertices reachable from *start* without entering *avoid_mask*.

    The start vertex is included in the result unless it is itself avoided,
    in which case the result is empty.
    """
    if (avoid_mask >> start) & 1:
        return 0
    succ_of = _as_callable(successors)
    seen = 1 << start
    stack = [start]
    while stack:
        node = stack.pop()
        for succ in succ_of(node):
            bit = 1 << succ
            if (avoid_mask & bit) or (seen & bit):
                continue
            seen |= bit
            stack.append(succ)
    return seen


def blocks_all_paths(
    num_nodes: int,
    successors: SuccessorProvider,
    root: int,
    target: int,
    blocker_mask: int,
) -> bool:
    """Condition 1 of Definition 5: every root-to-target path meets the blockers.

    Equivalently, *target* is unreachable from *root* once the blocker
    vertices are removed.  A blocker set containing the target itself
    trivially satisfies the condition.
    """
    if (blocker_mask >> target) & 1:
        return True
    reachable = reachable_mask_avoiding(num_nodes, successors, root, blocker_mask)
    return not ((reachable >> target) & 1)


def has_private_path(
    num_nodes: int,
    successors: SuccessorProvider,
    root: int,
    target: int,
    member: int,
    others_mask: int,
) -> bool:
    """Condition 2 of Definition 5 for a single member of the set.

    ``True`` if some root-to-target path goes through *member* while avoiding
    all vertices of *others_mask*.
    """
    reach_from_root = reachable_mask_avoiding(num_nodes, successors, root, others_mask)
    if not ((reach_from_root >> member) & 1):
        return False
    reach_from_member = reachable_mask_avoiding(
        num_nodes, successors, member, others_mask
    )
    return bool((reach_from_member >> target) & 1)


def is_generalized_dominator(
    num_nodes: int,
    successors: SuccessorProvider,
    root: int,
    target: int,
    members: Iterable[int],
) -> bool:
    """Check Definition 5 in full for the vertex set *members* and vertex *target*."""
    member_list: List[int] = sorted(set(members))
    if not member_list:
        return False
    if target in member_list:
        return False
    members_mask = 0
    for v in member_list:
        members_mask |= 1 << v
    if not blocks_all_paths(num_nodes, successors, root, target, members_mask):
        return False
    for v in member_list:
        others = members_mask & ~(1 << v)
        if not has_private_path(num_nodes, successors, root, target, v, others):
            return False
    return True


def brute_force_generalized_dominators(
    num_nodes: int,
    successors: SuccessorProvider,
    root: int,
    target: int,
    max_size: int,
    candidates: Iterable[int],
) -> set:
    """Enumerate generalized dominators of *target* by checking every subset.

    Exponential in the number of candidates — only suitable for the small
    graphs used in tests, where it validates
    :func:`repro.dominators.multi_vertex.enumerate_generalized_dominators`.
    """
    from itertools import combinations

    candidate_list = sorted(set(candidates) - {target})
    results = set()
    for size in range(1, max_size + 1):
        for combo in combinations(candidate_list, size):
            if is_generalized_dominator(num_nodes, successors, root, target, combo):
                results.add(frozenset(combo))
    return results
