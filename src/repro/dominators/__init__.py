"""Dominator infrastructure.

Single-vertex dominators (Lengauer–Tarjan and the iterative cross-check),
dominator/postdominator trees with O(1) ancestor queries, and
multiple-vertex (generalized) dominator enumeration in the style of
Dubrova et al., which is the kernel of the paper's enumeration algorithm.
"""

from .dominator_tree import DominatorTree
from .generalized import (
    blocks_all_paths,
    brute_force_generalized_dominators,
    has_private_path,
    is_generalized_dominator,
    reachable_mask_avoiding,
)
from .iterative import immediate_dominators_iterative
from .lengauer_tarjan import dominates, immediate_dominators, strict_dominators
from .multi_vertex import (
    CompletionResult,
    DominatorSearchStats,
    dominator_completions,
    enumerate_generalized_dominators,
)
from .postdominators import (
    dominator_tree_of,
    immediate_postdominators,
    postdominator_tree,
    postdominator_tree_of,
)

__all__ = [
    "DominatorTree",
    "blocks_all_paths",
    "brute_force_generalized_dominators",
    "has_private_path",
    "is_generalized_dominator",
    "reachable_mask_avoiding",
    "immediate_dominators_iterative",
    "dominates",
    "immediate_dominators",
    "strict_dominators",
    "CompletionResult",
    "DominatorSearchStats",
    "dominator_completions",
    "enumerate_generalized_dominators",
    "dominator_tree_of",
    "immediate_postdominators",
    "postdominator_tree",
    "postdominator_tree_of",
]
