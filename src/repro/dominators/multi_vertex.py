"""Multiple-vertex dominator enumeration (Dubrova et al. [12]).

The enumeration algorithm of the paper needs, for every candidate output
``o``, all multiple-vertex dominators of ``o`` with at most ``Nin`` vertices.
Dubrova et al. observe that they can be enumerated in ``O(n^k)`` time by the
following reduction: pick a *seed set* of ``k - 1`` vertices, remove it from
the graph (together with everything that thereby becomes unreachable from the
root), and run a *single-vertex* dominator computation on the reduced graph;
every strict dominator ``u`` of the target in the reduced graph completes the
seed into a ``k``-vertex dominator of the target in the original graph.

This module provides:

* :func:`dominator_completions` — one reduction step, the primitive invoked
  by the incremental enumeration (``PICK-INPUTS`` in Figure 3);
* :func:`enumerate_generalized_dominators` — full enumeration of the
  generalized dominators of a vertex up to a size bound, used by the basic
  algorithm of Figure 2 and validated in the tests against the
  definition-based brute force of :mod:`repro.dominators.generalized`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence, Set, Union

from .generalized import is_generalized_dominator
from .lengauer_tarjan import immediate_dominators, strict_dominators

SuccessorProvider = Union[Sequence[Sequence[int]], Callable[[int], Sequence[int]]]


@dataclass
class DominatorSearchStats:
    """Counters of one :func:`enumerate_generalized_dominators` run.

    Attributes
    ----------
    lt_calls:
        Exact number of Lengauer–Tarjan invocations performed by the
        seed-plus-completion exploration (one per explored seed set).
    """

    lt_calls: int = 0


@dataclass(frozen=True)
class CompletionResult:
    """Result of one Dubrova reduction step.  Immutable: instances are
    memoised on shared :class:`~repro.core.context.EnumerationContext`
    caches and served to many enumeration runs.

    Attributes
    ----------
    already_dominated:
        ``True`` if the seed set alone already blocks every root-to-target
        path (the target is unreachable in the reduced graph).  In that case
        ``completions`` is empty.
    completions:
        Vertices ``u`` such that ``seed ∪ {u}`` blocks every root-to-target
        path: the strict dominators of the target in the reduced graph
        (nearest dominator first).  The root is included when it qualifies;
        callers that cannot use the root as a cut input filter it out.
    lt_calls:
        Number of Lengauer–Tarjan invocations performed (0 or 1), used by the
        statistics counters of the enumeration algorithms.
    """

    already_dominated: bool
    completions: List[int]
    lt_calls: int = 0


def dominator_completions(
    num_nodes: int,
    successors: SuccessorProvider,
    root: int,
    target: int,
    seed_mask: int = 0,
) -> CompletionResult:
    """Run one reduction step of the Dubrova et al. technique.

    Parameters
    ----------
    num_nodes, successors, root:
        The rooted graph (typically the augmented DFG).
    target:
        The vertex whose dominators are sought (a candidate cut output).
    seed_mask:
        Bit mask of the seed vertices removed from the graph.  The root and
        the target must not be part of the seed.
    """
    if (seed_mask >> root) & 1:
        raise ValueError("the root cannot be part of a seed set")
    if (seed_mask >> target) & 1:
        raise ValueError("the target cannot be part of a seed set")

    idom = immediate_dominators(num_nodes, successors, root, removed_mask=seed_mask)
    if idom[target] is None:
        # Unreachable once the seed is removed: the seed alone dominates.
        return CompletionResult(already_dominated=True, completions=[], lt_calls=1)
    completions = strict_dominators(idom, target, root)
    return CompletionResult(already_dominated=False, completions=completions, lt_calls=1)


def completions_from_idom(
    idom: Sequence[Optional[int]],
    root: int,
    target: int,
) -> CompletionResult:
    """Derive one reduction step from an already-computed dominator array.

    The Lengauer–Tarjan pass of :func:`dominator_completions` computes the
    immediate dominators of **every** vertex of the reduced graph, not just
    of one target — so one ``idom`` array (keyed, in the enumeration hot
    path, by the reachable region the seed set leaves behind) answers the
    completion query for *all* candidate outputs of that region.  The
    returned result reports ``lt_calls=0``: the caller charges the single
    Lengauer–Tarjan invocation when it builds the shared array.
    """
    if idom[target] is None:
        return CompletionResult(already_dominated=True, completions=[], lt_calls=0)
    return CompletionResult(
        already_dominated=False,
        completions=strict_dominators(idom, target, root),
        lt_calls=0,
    )


def enumerate_generalized_dominators(
    num_nodes: int,
    successors: SuccessorProvider,
    root: int,
    target: int,
    max_size: int,
    candidates: Optional[Iterable[int]] = None,
    require_irredundant: bool = True,
    search_stats: Optional[DominatorSearchStats] = None,
) -> Set[frozenset]:
    """Enumerate the generalized dominators of *target* with at most *max_size* vertices.

    Parameters
    ----------
    candidates:
        Vertices allowed to appear in a dominator set.  Defaults to every
        proper ancestor of *target* (which is the only place dominator
        vertices can live).  The target itself is never a candidate.
    require_irredundant:
        When ``True`` (default) only sets satisfying both conditions of
        Definition 5 are reported; when ``False`` any set found by the
        seed-plus-completion construction is reported, which is what the
        basic enumeration algorithm of Figure 2 consumes (Theorem 3 only
        needs condition 1).
    search_stats:
        Optional :class:`DominatorSearchStats` accumulating the exact number
        of Lengauer–Tarjan invocations the enumeration performs.
    """
    if max_size < 1:
        return set()

    if candidates is None:
        candidate_list = _ancestors(num_nodes, successors, root, target)
    else:
        candidate_list = sorted(set(candidates) - {target})
    candidate_mask = 0
    for v in candidate_list:
        candidate_mask |= 1 << v

    results: Set[frozenset] = set()

    def record(mask: int) -> None:
        members = _mask_to_list(mask)
        if require_irredundant and not is_generalized_dominator(
            num_nodes, successors, root, target, members
        ):
            return
        results.add(frozenset(members))

    def explore(seed_mask: int, start_index: int, seed_size: int) -> None:
        step = dominator_completions(num_nodes, successors, root, target, seed_mask)
        if search_stats is not None:
            search_stats.lt_calls += step.lt_calls
        if step.already_dominated:
            # The seed already blocks every path; any extension is redundant.
            if seed_size:
                record(seed_mask)
            return
        for completion in step.completions:
            if completion == target:
                continue
            if not ((candidate_mask >> completion) & 1):
                continue
            record(seed_mask | (1 << completion))
        if seed_size + 1 >= max_size:
            return
        for index in range(start_index, len(candidate_list)):
            vertex = candidate_list[index]
            if vertex == root or (seed_mask >> vertex) & 1:
                continue
            explore(seed_mask | (1 << vertex), index + 1, seed_size + 1)

    explore(0, 0, 0)
    return results


def _ancestors(
    num_nodes: int, successors: SuccessorProvider, root: int, target: int
) -> List[int]:
    """Proper ancestors of *target* reachable from *root* (sorted)."""
    succ_of = successors if callable(successors) else (lambda v: successors[v])
    # Build predecessor lists on the fly.
    preds: List[List[int]] = [[] for _ in range(num_nodes)]
    for v in range(num_nodes):
        for s in succ_of(v):
            preds[s].append(v)
    seen = set()
    stack = list(preds[target])
    while stack:
        v = stack.pop()
        if v in seen:
            continue
        seen.add(v)
        stack.extend(preds[v])
    return sorted(seen)


def _mask_to_list(mask: int) -> List[int]:
    result = []
    index = 0
    while mask:
        if mask & 1:
            result.append(index)
        mask >>= 1
        index += 1
    return result
