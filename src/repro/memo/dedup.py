"""Isomorphism-class deduplication of enumeration workloads.

Real applications are full of structurally identical basic blocks (unrolled
loop bodies, inlined helpers, recurring computational idioms).  Instead of
enumerating each copy, :func:`enumerate_deduplicated` groups the blocks of a
workload into isomorphism classes via :mod:`repro.memo.canon`, enumerates
**one representative per class**, and remaps the representative's cut bit
masks through the canonical permutations onto every member — producing, for
every block, the same cut *set* a direct enumeration would.

Blocks whose canonical form is incomplete (backtracking budget exhausted on a
pathologically symmetric graph) still deduplicate against byte-identical
copies of themselves; they just cannot merge with relabeled isomorphs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

from ..core.constraints import Constraints
from ..core.pruning import PruningConfig
from ..core.stats import EnumerationResult, EnumerationStats
from ..dfg.graph import DataFlowGraph
from .canon import CanonicalForm, canonical_form
from .store import ResultStore


@dataclass
class IsoClass:
    """One isomorphism class of a workload's blocks.

    Indices refer to the normalized input order of the workload.
    """

    canonical_hash: str
    representative: int
    members: List[int] = field(default_factory=list)

    @property
    def size(self) -> int:
        return len(self.members)


@dataclass
class DedupReport:
    """Outcome of :func:`enumerate_deduplicated`, in input order.

    ``items`` are :class:`~repro.engine.batch.BatchItem` records; members
    that were *not* the class representative carry a result whose cuts were
    remapped from the representative's run (and share its statistics), with
    ``item.deduplicated`` set.
    """

    algorithm: str
    constraints: Constraints
    classes: List[IsoClass] = field(default_factory=list)
    items: List[object] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self):
        return iter(self.items)

    @property
    def num_blocks(self) -> int:
        return len(self.items)

    @property
    def num_classes(self) -> int:
        return len(self.classes)

    @property
    def saved_runs(self) -> int:
        """Enumeration runs avoided by deduplication."""
        return self.num_blocks - self.num_classes

    def results(self) -> List[EnumerationResult]:
        """The successful per-block results, in input order."""
        return [item.result for item in self.items if item.result is not None]

    def summary(self) -> str:
        return (
            f"{self.num_blocks} block(s) in {self.num_classes} isomorphism "
            f"class(es): {self.saved_runs} enumeration run(s) saved "
            f"({self.algorithm!r}, {self.constraints.describe()})"
        )


def group_by_isomorphism(
    graphs: Sequence[DataFlowGraph],
    constraints: Optional[Constraints] = None,
) -> Tuple[List[IsoClass], List[CanonicalForm]]:
    """Partition *graphs* into isomorphism classes.

    Returns the classes (ordered by first appearance, representative = first
    member) and the canonical form of every graph, in input order.
    """
    forms = [canonical_form(graph, constraints) for graph in graphs]
    classes: List[IsoClass] = []
    by_hash = {}
    for index, form in enumerate(forms):
        existing = by_hash.get(form.hash)
        if existing is None:
            existing = IsoClass(canonical_hash=form.hash, representative=index)
            by_hash[form.hash] = existing
            classes.append(existing)
        existing.members.append(index)
    return classes, forms


def remap_masks(
    masks: Sequence[int],
    source: CanonicalForm,
    target: CanonicalForm,
) -> List[int]:
    """Remap cut node masks from *source*'s graph onto *target*'s graph.

    Both forms must belong to the same isomorphism class (equal hashes); the
    masks travel through the shared canonical id space.
    """
    if source.hash != target.hash:
        raise ValueError(
            "cannot remap masks across isomorphism classes "
            f"({source.hash[:12]}… vs {target.hash[:12]}…)"
        )
    return [
        target.from_canonical_mask(source.to_canonical_mask(mask))
        for mask in masks
    ]


def _prepare_dedup(
    blocks,
    algorithm: Optional[str],
    constraints: Optional[Constraints],
    pruning: Optional[PruningConfig],
    store: Optional[ResultStore],
    jobs: Union[int, str],
    timeout: Optional[float],
):
    """Shared setup of the dedup drivers: runner, items, classes, forms."""
    # Imported lazily: repro.engine.batch itself imports this package.
    from ..engine.batch import BatchRunner, normalize_blocks

    runner = BatchRunner(
        algorithm=algorithm or _default_algorithm(),
        constraints=constraints,
        pruning=pruning,
        jobs=jobs,
        timeout=timeout,
        store=store,
    )
    items = normalize_blocks(blocks)
    classes, forms = group_by_isomorphism(
        [item.graph for item in items], runner.constraints
    )
    return runner, items, classes, forms


def _stream_classes(runner, items, classes, forms, store):
    """Yield items class by class as each representative's enumeration lands.

    Representatives stream through :meth:`BatchRunner.iter_run` — no barrier
    between isomorphism classes — and every member of a class is yielded
    (cuts remapped through the canonical permutations) immediately after its
    representative, so downstream consumers see completed work without
    waiting for the whole workload.
    """
    from ..core.cut import Cut

    representatives = [items[cls.representative] for cls in classes]
    rep_stream = runner.iter_run(
        [(item.graph, item.execution_count) for item in representatives],
        canonical_forms=(
            [forms[cls.representative] for cls in classes]
            if store is not None
            else None
        ),
    )
    for rep_item in rep_stream:
        cls = classes[rep_item.index]
        original_rep = items[cls.representative]
        original_rep.result = rep_item.result
        original_rep.context = rep_item.context
        original_rep.elapsed_seconds = rep_item.elapsed_seconds
        original_rep.timed_out = rep_item.timed_out
        original_rep.error = rep_item.error
        original_rep.cached = rep_item.cached
        yield original_rep
        if rep_item.result is None:
            # The whole class fails with its representative.
            for index in cls.members:
                if index != cls.representative:
                    items[index].timed_out = rep_item.timed_out
                    items[index].error = rep_item.error
                    yield items[index]
            continue
        rep_form = forms[cls.representative]
        rep_masks = [cut.node_mask() for cut in rep_item.result.cuts]
        for index in cls.members:
            if index == cls.representative:
                continue
            member = items[index]
            member.context = runner.cache.get(member.graph, runner.constraints)
            local_masks = remap_masks(rep_masks, rep_form, forms[index])
            stats = EnumerationStats()
            stats.merge(rep_item.result.stats)
            member.result = EnumerationResult(
                cuts=[Cut.from_mask(member.context, mask) for mask in local_masks],
                stats=stats,
                graph_name=member.graph_name,
                algorithm=rep_item.result.algorithm,
            )
            member.deduplicated = True
            member.elapsed_seconds = 0.0
            yield member


def iter_enumerate_deduplicated(
    blocks,
    algorithm: Optional[str] = None,
    constraints: Optional[Constraints] = None,
    pruning: Optional[PruningConfig] = None,
    store: Optional[ResultStore] = None,
    jobs: Union[int, str] = 1,
    timeout: Optional[float] = None,
    progress=None,
):
    """Streaming variant of :func:`enumerate_deduplicated`.

    Yields every block's :class:`~repro.engine.batch.BatchItem` in completion
    order: each class representative as soon as its enumeration finishes,
    followed immediately by the class members with remapped results.
    *progress*, if given, is called as ``progress(item, completed, total)``
    before each item is yielded (``total`` counts blocks, not classes).
    """
    runner, items, classes, forms = _prepare_dedup(
        blocks, algorithm, constraints, pruning, store, jobs, timeout
    )
    total = len(items)
    completed = 0
    try:
        for item in _stream_classes(runner, items, classes, forms, store):
            completed += 1
            if progress is not None:
                progress(item, completed, total)
            yield item
    finally:
        runner.close()  # release the worker pool this driver owns


def enumerate_deduplicated(
    blocks,
    algorithm: Optional[str] = None,
    constraints: Optional[Constraints] = None,
    pruning: Optional[PruningConfig] = None,
    store: Optional[ResultStore] = None,
    jobs: Union[int, str] = 1,
    timeout: Optional[float] = None,
    progress=None,
) -> DedupReport:
    """Enumerate a workload with isomorphism-class deduplication.

    Accepts everything :class:`~repro.engine.batch.BatchRunner` accepts (a
    :class:`~repro.workloads.suite.WorkloadSuite`, graphs, ``(graph, count)``
    pairs, profiled blocks).  One representative per isomorphism class is
    enumerated — through the runner's streaming scheduler, so
    ``store``/``jobs``/``timeout`` all apply and classes complete
    independently — and the cut masks are remapped onto the other members.
    Member results carry the representative's statistics (the search was only
    run once) and have ``item.deduplicated`` set.  Use
    :func:`iter_enumerate_deduplicated` to consume blocks as they finish.
    """
    runner, items, classes, forms = _prepare_dedup(
        blocks, algorithm, constraints, pruning, store, jobs, timeout
    )
    report = DedupReport(
        algorithm=runner.algorithm,
        constraints=runner.constraints,
        classes=classes,
        items=items,
    )
    total = len(items)
    completed = 0
    try:
        for item in _stream_classes(runner, items, classes, forms, store):
            completed += 1
            if progress is not None:
                progress(item, completed, total)
    finally:
        runner.close()  # release the worker pool this driver owns
    return report


def _default_algorithm() -> str:
    from ..engine.registry import DEFAULT_ALGORITHM

    return DEFAULT_ALGORITHM
