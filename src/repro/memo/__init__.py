"""Canonical-form memoization: recognise repeated blocks, reuse their results.

The repo's first persistence layer.  Three cooperating pieces:

* :mod:`repro.memo.canon` — deterministic canonical labeling of data-flow
  graphs (Weisfeiler–Leman refinement with a backtracking tie-break), giving
  every isomorphism class one stable content hash plus, per graph, the node
  permutation into the canonical id space;
* :mod:`repro.memo.store` — a disk-backed, content-addressed result store
  keyed by ``(canonical hash, algorithm, request fingerprint)``, with a
  versioned JSON entry format, sharded directories, atomic writes and an
  in-memory LRU front;
* :mod:`repro.memo.dedup` — isomorphism-class deduplication over a workload:
  enumerate one representative per class and remap the cut bit masks through
  the canonical permutations onto every member.

The engine's :class:`~repro.engine.batch.BatchRunner` consults a
:class:`ResultStore` before dispatching work and writes results back
afterwards; the CLI exposes the store via ``--cache-dir`` and the ``cache``
sub-command.
"""

from .canon import (
    DEFAULT_BACKTRACK_BUDGET,
    CanonicalForm,
    canonical_form,
    canonical_hash,
    permute_graph,
)
from .dedup import (
    DedupReport,
    IsoClass,
    enumerate_deduplicated,
    group_by_isomorphism,
    iter_enumerate_deduplicated,
    remap_masks,
)
from .store import (
    STORE_FORMAT_VERSION,
    ResultStore,
    StoredResult,
    StoreStats,
    request_fingerprint,
    stats_from_dict,
    stats_to_dict,
)

__all__ = [
    "DEFAULT_BACKTRACK_BUDGET",
    "CanonicalForm",
    "canonical_form",
    "canonical_hash",
    "permute_graph",
    "DedupReport",
    "IsoClass",
    "enumerate_deduplicated",
    "group_by_isomorphism",
    "iter_enumerate_deduplicated",
    "remap_masks",
    "STORE_FORMAT_VERSION",
    "ResultStore",
    "StoredResult",
    "StoreStats",
    "request_fingerprint",
    "stats_from_dict",
    "stats_to_dict",
]
