"""Canonical-form memoization: recognise repeated blocks, reuse their results.

The repo's first persistence layer.  Three cooperating pieces:

* :mod:`repro.memo.canon` — deterministic canonical labeling of data-flow
  graphs (Weisfeiler–Leman refinement with a backtracking tie-break), giving
  every isomorphism class one stable content hash plus, per graph, the node
  permutation into the canonical id space;
* :mod:`repro.memo.store` — a disk-backed, content-addressed result store
  keyed by ``(canonical hash, algorithm, request fingerprint)``, with a
  versioned JSON entry format, sharded directories, atomic writes and an
  in-memory LRU front;
* :mod:`repro.memo.dedup` — isomorphism-class deduplication over a workload:
  enumerate one representative per class and remap the cut bit masks through
  the canonical permutations onto every member;
* :mod:`repro.memo.insearch` — in-search memoization: bounded, domain-sharded
  tables of cut-validity verdicts and contribution unions keyed on packed
  subgraph masks, consulted by the enumerators mid-search so repeated local
  structure (within one block or across same-shape blocks) is a dict probe
  instead of a recomputation.

The engine's :class:`~repro.engine.batch.BatchRunner` consults a
:class:`ResultStore` before dispatching work and writes results back
afterwards; the CLI exposes the store via ``--cache-dir`` and the ``cache``
sub-command.
"""

from .canon import (
    DEFAULT_BACKTRACK_BUDGET,
    CanonicalForm,
    canonical_form,
    canonical_hash,
    permute_graph,
)
from .dedup import (
    DedupReport,
    IsoClass,
    enumerate_deduplicated,
    group_by_isomorphism,
    iter_enumerate_deduplicated,
    remap_masks,
)
from .insearch import (
    INSEARCH_ENV,
    InSearchMemo,
    InSearchView,
    domain_key_for,
    insearch_disabled,
    insearch_enabled,
    set_insearch_enabled,
)
from .store import (
    STORE_FORMAT_VERSION,
    ResultStore,
    StoredResult,
    StoreStats,
    request_fingerprint,
    stats_from_dict,
    stats_to_dict,
)

__all__ = [
    "DEFAULT_BACKTRACK_BUDGET",
    "CanonicalForm",
    "canonical_form",
    "canonical_hash",
    "permute_graph",
    "DedupReport",
    "IsoClass",
    "enumerate_deduplicated",
    "group_by_isomorphism",
    "iter_enumerate_deduplicated",
    "remap_masks",
    "INSEARCH_ENV",
    "InSearchMemo",
    "InSearchView",
    "domain_key_for",
    "insearch_disabled",
    "insearch_enabled",
    "set_insearch_enabled",
    "STORE_FORMAT_VERSION",
    "ResultStore",
    "StoredResult",
    "StoreStats",
    "request_fingerprint",
    "stats_from_dict",
    "stats_to_dict",
]
