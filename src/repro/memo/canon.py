"""Deterministic canonical labeling of data-flow graphs.

Memoizing enumeration results across basic blocks requires recognising when
two blocks are *the same computation*: isomorphic DAGs whose corresponding
vertices carry the same opcode, the same (effective) forbidden flag and the
same live-out flag.  Names and free-form attributes are ignored — they never
influence which cuts are enumerated.

The canonical form is computed with the classic two-stage scheme:

1. **Iterative Weisfeiler–Leman color refinement.**  Every vertex starts from
   a seed color ``(opcode, forbidden, live_out)`` — with the constraint-driven
   forbidding (memory operations, ``extra_forbidden``) folded in, because
   ``extra_forbidden`` names raw vertex ids and is therefore *not* invariant
   under isomorphism — and is repeatedly relabeled by the multiset of its
   predecessors' and successors' colors until the partition stabilises.
2. **Individualization with backtracking tie-break.**  While some color class
   holds more than one vertex, each member of the first such class is
   individualized in turn, refinement is re-run, and the branch producing the
   lexicographically smallest certificate wins.  Because the candidate set and
   the comparison are both permutation-invariant, isomorphic graphs yield the
   *identical* canonical form.

The backtracking search is exact but can blow up on highly symmetric graphs
(e.g. the uniform-opcode worst-case trees of Figure 4, whose automorphism
groups are exponential).  A node budget caps the search; when it is exhausted
the function falls back to an **identity form**: the graph hashed in its
given vertex order.  The fallback is always *correct* — identical graphs
still share a hash, and distinct hashes merely mean a missed cache hit — it
just cannot merge isomorphs, and is flagged via ``CanonicalForm.complete``.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.constraints import Constraints
from ..core.context import effective_forbidden
from ..dfg.graph import DataFlowGraph

#: Maximum number of refinement passes the backtracking search may run before
#: falling back to the identity form.  Ordinary basic blocks (mixed opcodes)
#: discretise in one or two passes with no branching at all.
DEFAULT_BACKTRACK_BUDGET = 4096

#: One seed color: (opcode value, effective forbidden, live-out flag).
Seed = Tuple[str, bool, bool]


@dataclass(frozen=True)
class CanonicalForm:
    """The canonical form of one :class:`DataFlowGraph`.

    Attributes
    ----------
    hash:
        Hex SHA-256 of the canonical certificate.  Two graphs receive the
        same hash exactly when they are isomorphic (opcode/forbidden/live_out
        preserving) — or, for incomplete forms, when they are identical.
    permutation:
        ``permutation[original_id] = canonical_position``.  Maps vertex ids
        of the input graph into the canonical id space.
    num_nodes:
        Number of vertices of the input graph.
    complete:
        ``False`` when the backtracking budget was exhausted and the identity
        fallback was used (isomorphs are then not merged).
    """

    hash: str
    permutation: Tuple[int, ...]
    num_nodes: int
    complete: bool = True

    # ------------------------------------------------------------------ #
    # Bit-mask remapping (cut masks use original vertex ids)
    # ------------------------------------------------------------------ #
    def to_canonical_mask(self, mask: int) -> int:
        """Remap a vertex bit mask from graph ids into canonical ids."""
        result = 0
        for node_id in range(self.num_nodes):
            if (mask >> node_id) & 1:
                result |= 1 << self.permutation[node_id]
        return result

    def from_canonical_mask(self, mask: int) -> int:
        """Remap a vertex bit mask from canonical ids back into graph ids."""
        result = 0
        for node_id in range(self.num_nodes):
            if (mask >> self.permutation[node_id]) & 1:
                result |= 1 << node_id
        return result


# --------------------------------------------------------------------------- #
# Seeds
# --------------------------------------------------------------------------- #
def _seed_colors(
    graph: DataFlowGraph, constraints: Optional[Constraints]
) -> List[Seed]:
    """Per-vertex seed colors with constraint-driven forbidding folded in.

    Uses the same :func:`repro.core.context.effective_forbidden` rule that
    :meth:`EnumerationContext.build` applies, so the canonical hash always
    reflects the forbidden set the enumerators actually see.
    """
    constraints = constraints or Constraints()
    return [
        (
            node.opcode.value,
            bool(effective_forbidden(node, constraints)),
            bool(node.live_out),
        )
        for node in graph.nodes()
    ]


# --------------------------------------------------------------------------- #
# Weisfeiler–Leman refinement
# --------------------------------------------------------------------------- #
def _refine(
    colors: List[int],
    preds: Sequence[Sequence[int]],
    succs: Sequence[Sequence[int]],
) -> List[int]:
    """Refine *colors* to a fixed point; the relabeling is canonical.

    Each pass relabels every vertex by ``(own color, sorted predecessor
    colors, sorted successor colors)``; new labels are assigned by sorting the
    distinct signatures, so the resulting integer colors depend only on the
    isomorphism class, never on the input vertex order.
    """
    num_nodes = len(colors)
    num_colors = len(set(colors))
    while True:
        signatures = [
            (
                colors[v],
                tuple(sorted(colors[p] for p in preds[v])),
                tuple(sorted(colors[s] for s in succs[v])),
            )
            for v in range(num_nodes)
        ]
        mapping = {sig: rank for rank, sig in enumerate(sorted(set(signatures)))}
        colors = [mapping[sig] for sig in signatures]
        if len(mapping) == num_colors:
            return colors
        num_colors = len(mapping)


def _first_non_singleton_cell(colors: List[int]) -> Optional[List[int]]:
    """Members of the smallest-colored cell with >= 2 vertices, or ``None``."""
    cells: Dict[int, List[int]] = {}
    for vertex, color in enumerate(colors):
        cells.setdefault(color, []).append(vertex)
    for color in sorted(cells):
        if len(cells[color]) > 1:
            return cells[color]
    return None


class _BudgetExhausted(Exception):
    """Internal: the backtracking search exceeded its refinement budget."""


def _certificate(
    order: List[int],
    seeds: List[Seed],
    edges: List[Tuple[int, int]],
) -> Tuple[Tuple[Seed, ...], Tuple[Tuple[int, int], ...]]:
    """Certificate of the graph under the vertex order (position <- order[pos])."""
    position = {vertex: pos for pos, vertex in enumerate(order)}
    return (
        tuple(seeds[vertex] for vertex in order),
        tuple(sorted((position[src], position[dst]) for src, dst in edges)),
    )


def _search(
    colors: List[int],
    seeds: List[Seed],
    preds: Sequence[Sequence[int]],
    succs: Sequence[Sequence[int]],
    edges: List[Tuple[int, int]],
    budget: List[int],
):
    """Individualization-refinement: the lexicographically smallest certificate.

    *budget* is a single-element mutable counter of remaining refinement
    passes; exhausting it aborts the whole search (the caller falls back to
    the identity form, never to a partial — and therefore permutation
    dependent — result).
    """
    cell = _first_non_singleton_cell(colors)
    if cell is None:
        order = sorted(range(len(colors)), key=colors.__getitem__)
        return _certificate(order, seeds, edges), order
    best = None
    fresh = len(colors)  # larger than every current color
    for vertex in cell:
        if budget[0] <= 0:
            raise _BudgetExhausted()
        budget[0] -= 1
        branched = list(colors)
        branched[vertex] = fresh
        candidate = _search(
            _refine(branched, preds, succs), seeds, preds, succs, edges, budget
        )
        if best is None or candidate[0] < best[0]:
            best = candidate
    assert best is not None
    return best


# --------------------------------------------------------------------------- #
# Public API
# --------------------------------------------------------------------------- #
def _hash_certificate(node_seeds: Sequence[Seed], edge_list: Sequence[Tuple[int, int]]) -> str:
    payload = json.dumps(
        {"nodes": [list(seed) for seed in node_seeds],
         "edges": [list(edge) for edge in edge_list]},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def canonical_form(
    graph: DataFlowGraph,
    constraints: Optional[Constraints] = None,
    backtrack_budget: int = DEFAULT_BACKTRACK_BUDGET,
) -> CanonicalForm:
    """Compute the canonical form of *graph* under *constraints*.

    Isomorphic graphs (same structure, opcodes, effective forbidden flags and
    live-out flags — names and attributes excluded) yield byte-identical
    canonical forms, so ``form.hash`` is a safe memoization key and
    ``form.permutation`` remaps cut bit masks between isomorphic graphs.
    """
    num_nodes = graph.num_nodes
    seeds = _seed_colors(graph, constraints)
    preds = [graph.predecessors(v) for v in range(num_nodes)]
    succs = [graph.successors(v) for v in range(num_nodes)]
    edges = list(graph.edges())

    seed_rank = {seed: rank for rank, seed in enumerate(sorted(set(seeds)))}
    colors = _refine([seed_rank[seed] for seed in seeds], preds, succs)

    try:
        certificate, order = _search(
            colors, seeds, preds, succs, edges, budget=[backtrack_budget]
        )
    except _BudgetExhausted:
        # Identity fallback: hash the graph in its given vertex order.  The
        # fallback certificate space is disjoint from the canonical one (the
        # marker below), so a fallback hash can never collide with a real
        # canonical hash of a different graph.
        identity = list(range(num_nodes))
        node_seeds, edge_list = _certificate(identity, seeds, edges)
        return CanonicalForm(
            hash=_hash_certificate((("identity-fallback", False, False),) + node_seeds, edge_list),
            permutation=tuple(identity),
            num_nodes=num_nodes,
            complete=False,
        )

    permutation = [0] * num_nodes
    for position, vertex in enumerate(order):
        permutation[vertex] = position
    return CanonicalForm(
        hash=_hash_certificate(*certificate),
        permutation=tuple(permutation),
        num_nodes=num_nodes,
        complete=True,
    )


def canonical_hash(
    graph: DataFlowGraph, constraints: Optional[Constraints] = None
) -> str:
    """Shorthand for ``canonical_form(graph, constraints).hash``."""
    return canonical_form(graph, constraints).hash


def permute_graph(
    graph: DataFlowGraph,
    permutation: Sequence[int],
    name: Optional[str] = None,
) -> DataFlowGraph:
    """Relabel *graph* so that old vertex ``v`` becomes ``permutation[v]``.

    Utility for tests and benchmarks: the result is isomorphic to the input
    by construction.  *permutation* must be a permutation of ``range(n)``.
    """
    num_nodes = graph.num_nodes
    if sorted(permutation) != list(range(num_nodes)):
        raise ValueError(
            f"permutation must rearrange range({num_nodes}), got {list(permutation)!r}"
        )
    inverse = [0] * num_nodes
    for old_id, new_id in enumerate(permutation):
        inverse[new_id] = old_id
    result = DataFlowGraph(name=name or graph.name)
    for new_id in range(num_nodes):
        node = graph.node(inverse[new_id])
        result.add_node(
            node.opcode,
            name=node.name,
            forbidden=node.forbidden,
            live_out=node.live_out,
            **node.attributes,
        )
    for src, dst in graph.edges():
        result.add_edge(permutation[src], permutation[dst])
    return result
