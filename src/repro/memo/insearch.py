"""In-search memoization: recognize repeated local structure mid-enumeration.

The whole-block store (:mod:`repro.memo.store`) and the isomorphism
deduplication driver (:mod:`repro.memo.dedup`) only pay off when an *entire*
basic block repeats.  The stronger, memoesu-style form implemented here
memoizes *inside* the search: the incremental enumerator keeps probing the
same induced subgraphs — the effective cut bodies reached through different
choice orderings, the ``B(V, o)`` contribution unions of recurring input
sets — and every one of those probes is a pure function of the block's
structure.  Caching them on their packed bit-mask keys turns the repeated
work into a dict probe, both *within* one block and *across* blocks that
share local idioms.

Key scheme
----------
A raw cut mask only means something relative to one vertex numbering, so the
memo is **domain-sharded**: entries live in per-domain tables, and a domain
is keyed by a *name-blind fingerprint* of the augmented block — the SHA-256
of the per-vertex seed colors ``(opcode, forbidden, live_out)`` in vertex-id
order plus the sorted edge list (the same certificate scheme as
:mod:`repro.memo.canon`'s identity form, minus the graph name).  Two blocks
share a domain exactly when they have identical vertex wiring under
identical flags, which is precisely when their masks are interchangeable —
a weaker (and much cheaper) condition than full canonical isomorphism, but
one that the frontend corpus hits constantly: tiled idioms are emitted with
the same local numbering every time.  Within a domain, keys are plain
Python ints (masks, or mask/vertex packs), the fastest hash the runtime has.

Every cached value — the ``cut_profile`` verdict ``(I(S), O(S), convex)``,
contribution unions, connectivity and depth of a vertex set, and the
dominator-query caches (reachable regions, immediate-dominator arrays,
completion steps) that the context re-points at the domain — is determined
by (seed colors in id order, edge list) alone.  ``Nin``/``Nout``/pruning
configuration never enter the tables, so one domain serves every pruning
variant and every constraint set that leaves the forbidden flags unchanged.

Bounds
------
The memo is bounded at both levels: at most :data:`DEFAULT_MAX_DOMAINS`
domains (least-recently-used block shape evicted first) and at most
:data:`DEFAULT_TABLE_LIMIT` entries per table
(:class:`~repro.caching.BoundedMemo`, first-in evicted).  Aggregate
hit/miss/eviction counters feed ``EnumerationStats.insearch_*`` and the
``enum.insearch_*_total`` observability counters.

Correctness
-----------
The memo never changes control flow — it only replaces recomputation — so
enumeration output is bit-identical with the memo on or off.  With
``REPRO_DEBUG_VALIDITY=1`` every hit recomputes the value from scratch and
asserts it matches the cached copy.  ``REPRO_NO_INSEARCH_MEMO=1`` (or the
CLI's ``--no-insearch-memo``) disables the memo entirely for A/B runs; the
environment variable is the cross-process switch — batch workers inherit it
when the pool spawns.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator, Optional, Tuple

from ..caching import BoundedMemo
from ..core.validity import _cut_depth, _is_connected_mask, debug_validation_enabled
from ..dfg.reachability import ids_from_mask
from .canon import _hash_certificate

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.context import EnumerationContext

#: Environment variable disabling the in-search memo when set to a non-empty
#: value.  An env var (not a wire field) so that pool workers inherit the
#: toggle from the parent process without a chunk-payload shape change.
INSEARCH_ENV = "REPRO_NO_INSEARCH_MEMO"

#: Bound on the number of block-shape domains one memo keeps (LRU evicted).
DEFAULT_MAX_DOMAINS = 64

#: Entry cap of each per-domain table (first-in evicted; see
#: :class:`repro.caching.BoundedMemo`).  Sized so that the search spaces of
#: realistic basic blocks fit without thrash — entries are small (ints and
#: short tuples), so even a full memo stays in the tens of megabytes.
DEFAULT_TABLE_LIMIT = 65536

#: Process-local override of the enable switch: ``None`` defers to the
#: environment, ``True``/``False`` forces the state (parent process only —
#: already-spawned workers keep reading their inherited environment).
_FORCED: Optional[bool] = None

#: The environment switch, resolved once at import: ``insearch_enabled`` sits
#: on per-cut paths, so it must not pay an ``os.environ`` probe per call.
#: Workers re-resolve it when they import this module after pool spawn;
#: in-process toggles go through :func:`set_insearch_enabled` /
#: :func:`insearch_disabled`, which override it via :data:`_FORCED`.
_ENV_ENABLED = not os.environ.get(INSEARCH_ENV)


def insearch_enabled() -> bool:
    """``True`` when the in-search memo is active in this process."""
    if _FORCED is not None:
        return _FORCED
    return _ENV_ENABLED


def set_insearch_enabled(value: Optional[bool]) -> None:
    """Force the memo on/off in this process; ``None`` defers to the env."""
    global _FORCED
    _FORCED = value


@contextmanager
def insearch_disabled() -> Iterator[None]:
    """Temporarily disable the memo — in this process *and*, via
    :data:`INSEARCH_ENV`, in any worker pool spawned inside the block."""
    previous_forced = _FORCED
    previous_env = os.environ.get(INSEARCH_ENV)
    set_insearch_enabled(False)
    os.environ[INSEARCH_ENV] = "1"
    try:
        yield
    finally:
        set_insearch_enabled(previous_forced)
        if previous_env is None:
            os.environ.pop(INSEARCH_ENV, None)
        else:
            os.environ[INSEARCH_ENV] = previous_env


def domain_key_for(context: "EnumerationContext") -> str:
    """Name-blind fingerprint of the context's augmented block.

    Hashes the per-vertex ``(opcode, forbidden, live_out)`` seeds in
    vertex-id order together with the sorted edge list of the *augmented*
    graph, with the forbidden bits taken from the context's live
    ``forbidden_mask`` — the exact determinants of every value the memo
    stores.  Graph names and free-form attributes are excluded, so renamed
    copies of the same block share a domain.
    """
    graph = context.augmented.graph
    forbidden = context.forbidden_mask
    seeds = tuple(
        (
            node.opcode.value,
            bool((forbidden >> node.node_id) & 1),
            bool(node.live_out),
        )
        for node in graph.nodes()
    )
    return _hash_certificate(seeds, tuple(sorted(graph.edges())))


class _Domain:
    """The bounded tables of one block-shape domain."""

    __slots__ = (
        "profiles",
        "contrib",
        "connected",
        "depth",
        "regions",
        "idoms",
        "completions",
        "seeds",
    )

    def __init__(self, table_limit: int) -> None:
        #: mask -> (inputs_mask, outputs_mask, convex) — the acceptance-test
        #: verdict of :meth:`ReachabilityIndex.cut_profile`.
        self.profiles: BoundedMemo[int, Tuple[int, int, bool]] = BoundedMemo(table_limit)
        #: (sources_mask << shift | output) -> B(V, output) union (multi-bit
        #: source sets only; single vertices are a plain table-row lookup).
        self.contrib: BoundedMemo[int, int] = BoundedMemo(table_limit)
        #: mask -> Definition-4 connectivity verdict.
        self.connected: BoundedMemo[int, bool] = BoundedMemo(table_limit)
        #: mask -> longest-path depth of the induced subgraph.
        self.depth: BoundedMemo[int, int] = BoundedMemo(table_limit)
        #: mask -> tuple of its set-bit ids (seed-candidate extraction).
        self.seeds: BoundedMemo[int, Tuple[int, ...]] = BoundedMemo(table_limit)
        # The dominator-query caches of the context hot path.  These three
        # are not consulted through the view: the context re-points its
        # private `_reachable_cache`/`_idom_cache`/`_completion_cache` at
        # them (see :meth:`EnumerationContext.insearch_view`), so the
        # existing region-keyed dominator machinery transparently serves
        # every same-shape block from one shared cache.  They stay *plain
        # dicts* — on that path even a counting wrapper's function call is
        # measurable — and are bounded by the context's own
        # ``REGION_CACHE_LIMIT`` first-in eviction; their effect shows up
        # in ``lt_calls``, not in the memo's hit/miss counters.
        #: avoid_mask -> reachable-region mask.
        self.regions: dict = {}
        #: reachable-region mask -> immediate-dominator array.
        self.idoms: dict = {}
        #: (reachable-region mask, output) -> CompletionResult.
        self.completions: dict = {}

    def tables(self) -> Tuple[BoundedMemo, ...]:
        return (self.profiles, self.contrib, self.connected, self.depth, self.seeds)

    def dominator_dicts(self) -> Tuple[dict, ...]:
        return (self.regions, self.idoms, self.completions)


class InSearchMemo:
    """Bounded, domain-sharded store of in-search verdicts.

    One memo is shared by every context of a :class:`ContextCache` (parent
    or worker side) and therefore by every pruning configuration and every
    same-shape block the cache ever serves.  ``hits``/``misses`` are
    aggregate consultation counters maintained by the views; ``evictions``
    sums table-level FIFO evictions plus the entries dropped with evicted
    domains.
    """

    def __init__(
        self,
        max_domains: int = DEFAULT_MAX_DOMAINS,
        table_limit: int = DEFAULT_TABLE_LIMIT,
    ) -> None:
        if max_domains < 1:
            raise ValueError(f"max_domains must be >= 1, got {max_domains}")
        self.max_domains = max_domains
        self.table_limit = table_limit
        self._domains: "OrderedDict[str, _Domain]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self._retired_hits = 0
        self._retired_misses = 0
        self._retired_evictions = 0

    def domain(self, key: str) -> _Domain:
        """The domain of *key*, created (and LRU-bounded) on demand."""
        dom = self._domains.get(key)
        if dom is not None:
            self._domains.move_to_end(key)
            return dom
        while len(self._domains) >= self.max_domains:
            _, evicted = self._domains.popitem(last=False)
            self._retire(evicted)
        dom = _Domain(self.table_limit)
        self._domains[key] = dom
        return dom

    def _retire(self, dom: _Domain) -> None:
        """Fold a dropped domain's table counters into the retired totals."""
        for table in dom.tables():
            self._retired_hits += table.hits
            self._retired_misses += table.misses
            self._retired_evictions += len(table) + table.evictions
        for cache in dom.dominator_dicts():
            self._retired_evictions += len(cache)

    def view_for(self, context: "EnumerationContext") -> "InSearchView":
        """A view binding *context* to its block-shape domain."""
        key = domain_key_for(context)
        return InSearchView(self, self.domain(key), key, context)

    @property
    def evictions(self) -> int:
        """Total entries evicted, live tables and retired domains combined."""
        total = self._retired_evictions
        for dom in self._domains.values():
            for table in dom.tables():
                total += table.evictions
        return total

    def counters(self) -> Tuple[int, int, int]:
        """``(hits, misses, evictions)`` snapshot for per-run deltas.

        Hits and misses combine the view-maintained consultation counters
        (``self.hits``/``self.misses``; the view probes its tables with
        :meth:`BoundedMemo.peek`, which does not count) with any table-level
        counters, and fold in retired domains so the totals never go
        backwards.  The domain's plain-dict dominator caches are
        deliberately uncounted — their effect is visible as a reduced
        ``lt_calls`` instead.
        """
        hits = self.hits + self._retired_hits
        misses = self.misses + self._retired_misses
        for dom in self._domains.values():
            for table in dom.tables():
                hits += table.hits
                misses += table.misses
        return hits, misses, self.evictions

    def __len__(self) -> int:
        return len(self._domains)

    def clear(self) -> None:
        """Drop every domain (counters keep accumulating)."""
        for dom in self._domains.values():
            self._retire(dom)
        self._domains.clear()


class InSearchView:
    """One context's handle on its memo domain.

    Binds the context's reachability index and contribution tables once, so
    the per-call overhead of every method is the dict probe plus one counter
    increment.  Created through
    :meth:`EnumerationContext.insearch_view`, which revalidates the binding
    whenever the context's forbidden mask or attached memo changes.
    """

    __slots__ = (
        "memo",
        "domain",
        "domain_key",
        "forbidden_fingerprint",
        "_context",
        "_reach",
        "_tables",
        "_pack_shift",
        "_debug",
        "_profiles_get",
        "_profiles_put",
        "_contrib_get",
        "_contrib_put",
        "_connected_get",
        "_connected_put",
        "_depth_get",
        "_depth_put",
        "_seeds_get",
        "_seeds_put",
    )

    def __init__(
        self,
        memo: InSearchMemo,
        domain: _Domain,
        domain_key: str,
        context: "EnumerationContext",
    ) -> None:
        self.memo = memo
        self.domain = domain
        self.domain_key = domain_key
        self._context = context
        self._reach = context.reach
        self._tables = context.contribution_tables
        self.forbidden_fingerprint = context.forbidden_mask
        # Contribution keys pack (sources_mask, output) into one int: the
        # output id occupies the low bits, the mask is shifted above it.
        self._pack_shift = max(1, context.num_nodes).bit_length()
        self._debug = debug_validation_enabled()
        # Probes run every few microseconds, so each table's reader and
        # writer are bound once (see :attr:`BoundedMemo.raw_getter`).
        self._profiles_get = domain.profiles.raw_getter
        self._profiles_put = domain.profiles.put
        self._contrib_get = domain.contrib.raw_getter
        self._contrib_put = domain.contrib.put
        self._connected_get = domain.connected.raw_getter
        self._connected_put = domain.connected.put
        self._depth_get = domain.depth.raw_getter
        self._depth_put = domain.depth.put
        self._seeds_get = domain.seeds.raw_getter
        self._seeds_put = domain.seeds.put

    # ------------------------------------------------------------------ #
    def cut_profile(self, mask: int) -> Tuple[int, int, bool]:
        """Memoized ``(I(S), O(S), convex)`` of the vertex set *mask*."""
        cached = self._profiles_get(mask)
        if cached is not None:
            self.memo.hits += 1
            if self._debug:
                fresh = self._reach.cut_profile(mask)
                assert cached == fresh, (
                    f"in-search memo profile mismatch on {mask:#x}: "
                    f"cached={cached} fresh={fresh}"
                )
            return cached
        self.memo.misses += 1
        profile = self._reach.cut_profile(mask)
        self._profiles_put(mask, profile)
        return profile

    def cut_outputs(self, mask: int) -> int:
        """``O(S)``, answered from the profile table when already warmed.

        Misses fall back to the raw outputs-only pass *without* computing a
        full profile: this query runs on sets the search usually discards,
        so paying the extra inputs/convexity work (and a table slot) for
        them would cost more than the hits save.  The profiles table is
        warmed by :meth:`cut_profile` — the acceptance test — whose sets
        recur.
        """
        cached = self._profiles_get(mask)
        if cached is not None:
            self.memo.hits += 1
            return cached[1]
        self.memo.misses += 1
        return self._reach.cut_outputs_mask(mask)

    def between_union(self, sources_mask: int, output: int) -> int:
        """Memoized ``B(V, output)`` union for multi-vertex source sets.

        Single-vertex sets bypass the memo: the contribution tables already
        answer them with one list index.
        """
        if sources_mask & (sources_mask - 1) == 0:
            if not sources_mask:
                return 0
            return self._tables.between(sources_mask.bit_length() - 1, output)
        key = (sources_mask << self._pack_shift) | output
        cached = self._contrib_get(key)
        if cached is not None:
            self.memo.hits += 1
            if self._debug:
                fresh = self._tables.between_union(sources_mask, output)
                assert cached == fresh, (
                    f"in-search memo contribution mismatch on "
                    f"({sources_mask:#x}, {output}): cached={cached:#x} fresh={fresh:#x}"
                )
            return cached
        self.memo.misses += 1
        union = self._tables.between_union(sources_mask, output)
        self._contrib_put(key, union)
        return union

    def is_connected(self, mask: int, outputs_mask: int) -> bool:
        """Memoized Definition-4 connectivity of the vertex set *mask*.

        *outputs_mask* must be ``O(mask)`` (it is derived from the mask, so
        the mask alone is a sufficient key).
        """
        cached = self._connected_get(mask)
        if cached is not None:
            self.memo.hits += 1
            if self._debug:
                fresh = _is_connected_mask(self._context, mask, outputs_mask)
                assert cached == fresh, (
                    f"in-search memo connectivity mismatch on {mask:#x}: "
                    f"cached={cached} fresh={fresh}"
                )
            return cached
        self.memo.misses += 1
        verdict = _is_connected_mask(self._context, mask, outputs_mask)
        self._connected_put(mask, verdict)
        return verdict

    def cut_depth(self, mask: int) -> int:
        """Memoized longest-path depth of the vertex set *mask*."""
        cached = self._depth_get(mask)
        if cached is not None:
            self.memo.hits += 1
            if self._debug:
                fresh = _cut_depth(self._context, mask)
                assert cached == fresh, (
                    f"in-search memo depth mismatch on {mask:#x}: "
                    f"cached={cached} fresh={fresh}"
                )
            return cached
        self.memo.misses += 1
        depth = _cut_depth(self._context, mask)
        self._depth_put(mask, depth)
        return depth

    def ids_tuple(self, mask: int) -> Tuple[int, ...]:
        """Memoized set-bit extraction of *mask* (seed-candidate lists).

        A pure function of the mask alone, but the same ancestor masks recur
        throughout one block's search — and across same-shape blocks — so
        the cached tuple replaces the per-call bit-extraction loop.
        """
        cached = self._seeds_get(mask)
        if cached is not None:
            self.memo.hits += 1
            return cached
        self.memo.misses += 1
        ids = tuple(ids_from_mask(mask))
        self._seeds_put(mask, ids)
        return ids
