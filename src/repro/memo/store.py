"""Persistent content-addressed store of enumeration results.

A :class:`ResultStore` maps ``(canonical graph hash, algorithm name, request
fingerprint)`` to the cut set that enumeration produced, so that re-running
enumeration on a structurally identical block — in the same process, a later
process, or a different workload containing an isomorphic block — becomes a
disk lookup instead of a recomputation.

Storage layout and format:

* keys are SHA-256 hex digests of the three key components; entries live in a
  two-level sharded directory tree (``root/ab/cd/<key>.json``) so that even
  millions of entries keep directories small;
* every entry is a standalone, versioned JSON document (see
  :data:`STORE_FORMAT_VERSION`); entries written by an unknown format version
  are treated as misses, never misread;
* cut masks are stored in the **canonical** id space of the graph, so one
  entry serves every member of the isomorphism class (callers remap through
  :class:`~repro.memo.canon.CanonicalForm` permutations);
* writes are atomic (temp file + ``os.replace``) so a crashed or concurrent
  writer can never leave a torn entry;
* a bounded in-memory LRU front absorbs repeated lookups within a process.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from collections import OrderedDict
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..core.constraints import Constraints
from ..core.pruning import PruningConfig
from ..core.stats import EnumerationStats
from ..obs import runtime as obs

#: Version of the on-disk entry format.  Bump when the payload schema
#: changes; readers treat entries with any other version as cache misses.
STORE_FORMAT_VERSION = 1


def request_fingerprint(
    constraints: Optional[Constraints],
    pruning: Optional[PruningConfig] = None,
) -> str:
    """Stable hash of everything besides the graph that shapes a result.

    Combines the constraint fingerprint with the pruning configuration (a
    pruning rule must never change the cut set, but fingerprinting it keeps
    the store trustworthy even while debugging a pruning rule).
    """
    payload = json.dumps(
        {
            "constraints": (constraints or Constraints()).to_dict(),
            "pruning": None if pruning is None else asdict(pruning),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def stats_to_dict(stats: EnumerationStats) -> Dict[str, object]:
    """JSON form of :class:`EnumerationStats` (inverse of :func:`stats_from_dict`).

    Every counter of the dataclass must round-trip: this dict is also the
    form in which per-block stats travel from pool workers back to the
    parent, and a field dropped here silently vanishes from parallel runs
    (that is exactly how the forbidden-cache counters once disappeared).
    """
    return {
        "cuts_found": stats.cuts_found,
        "duplicates": stats.duplicates,
        "candidates_checked": stats.candidates_checked,
        "lt_calls": stats.lt_calls,
        "pick_output_calls": stats.pick_output_calls,
        "pick_input_calls": stats.pick_input_calls,
        "pruned": dict(stats.pruned),
        "elapsed_seconds": stats.elapsed_seconds,
        "lt_seconds": stats.lt_seconds,
        "forbidden_cache_hits": stats.forbidden_cache_hits,
        "forbidden_cache_misses": stats.forbidden_cache_misses,
        "insearch_hits": stats.insearch_hits,
        "insearch_misses": stats.insearch_misses,
        "insearch_evictions": stats.insearch_evictions,
    }


def stats_from_dict(data: Dict[str, object]) -> EnumerationStats:
    """Rebuild :class:`EnumerationStats` from :func:`stats_to_dict` output."""
    return EnumerationStats(
        cuts_found=int(data.get("cuts_found", 0)),
        duplicates=int(data.get("duplicates", 0)),
        candidates_checked=int(data.get("candidates_checked", 0)),
        lt_calls=int(data.get("lt_calls", 0)),
        pick_output_calls=int(data.get("pick_output_calls", 0)),
        pick_input_calls=int(data.get("pick_input_calls", 0)),
        pruned={str(k): int(v) for k, v in dict(data.get("pruned", {})).items()},
        elapsed_seconds=float(data.get("elapsed_seconds", 0.0)),
        lt_seconds=float(data.get("lt_seconds", 0.0)),
        forbidden_cache_hits=int(data.get("forbidden_cache_hits", 0)),
        forbidden_cache_misses=int(data.get("forbidden_cache_misses", 0)),
        insearch_hits=int(data.get("insearch_hits", 0)),
        insearch_misses=int(data.get("insearch_misses", 0)),
        insearch_evictions=int(data.get("insearch_evictions", 0)),
    )


@dataclass
class StoredResult:
    """One decoded store entry.

    ``masks`` are cut node masks in the canonical id space of the graph, in
    the discovery order of the original run (so a same-graph warm run
    reproduces the cold run bit-for-bit, order included).
    """

    canonical_hash: str
    algorithm: str
    fingerprint: str
    masks: List[int]
    stats: EnumerationStats

    def to_payload(self) -> Dict[str, object]:
        return {
            "format_version": STORE_FORMAT_VERSION,
            "canonical_hash": self.canonical_hash,
            "algorithm": self.algorithm,
            "fingerprint": self.fingerprint,
            "masks": [format(mask, "x") for mask in self.masks],
            "stats": stats_to_dict(self.stats),
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "StoredResult":
        return cls(
            canonical_hash=str(payload["canonical_hash"]),
            algorithm=str(payload["algorithm"]),
            fingerprint=str(payload["fingerprint"]),
            masks=[int(text, 16) for text in payload["masks"]],
            stats=stats_from_dict(payload.get("stats", {})),
        )


@dataclass
class StoreStats:
    """Lookup/write counters of one :class:`ResultStore` instance."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    invalid: int = 0  # undecodable or wrong-version entries encountered
    evictions: int = 0  # in-memory LRU front evictions

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def summary(self) -> str:
        return (
            f"{self.lookups} lookup(s): {self.hits} hit(s), "
            f"{self.misses} miss(es) (hit rate {self.hit_rate:.1%}), "
            f"{self.writes} write(s), {self.invalid} invalid entr(y/ies), "
            f"{self.evictions} LRU eviction(s)"
        )

    def to_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "invalid": self.invalid,
            "evictions": self.evictions,
        }

    def add_dict(self, data: Dict[str, object]) -> None:
        """Accumulate a :meth:`to_dict`-shaped mapping into these counters."""
        self.hits += int(data.get("hits", 0))
        self.misses += int(data.get("misses", 0))
        self.writes += int(data.get("writes", 0))
        self.invalid += int(data.get("invalid", 0))
        self.evictions += int(data.get("evictions", 0))


class ResultStore:
    """Disk-backed, content-addressed enumeration-result store.

    Parameters
    ----------
    root:
        Directory holding the store (created lazily on first write).
    max_memory_entries:
        Size of the in-memory LRU front (``0`` disables it).
    """

    def __init__(
        self, root: Union[str, Path], max_memory_entries: int = 256
    ) -> None:
        if max_memory_entries < 0:
            raise ValueError("max_memory_entries must be >= 0")
        self.root = Path(root).expanduser()
        self.max_memory_entries = max_memory_entries
        self.stats = StoreStats()
        self._memory: "OrderedDict[str, StoredResult]" = OrderedDict()
        self._persisted = StoreStats()  # counters already flushed to the sidecar

    # ------------------------------------------------------------------ #
    # Keys and paths
    # ------------------------------------------------------------------ #
    @staticmethod
    def make_key(canonical_hash: str, algorithm: str, fingerprint: str) -> str:
        """The store key of one (graph class, algorithm, request) triple."""
        text = f"{canonical_hash}\n{algorithm}\n{fingerprint}"
        return hashlib.sha256(text.encode("utf-8")).hexdigest()

    def path_of(self, key: str) -> Path:
        """On-disk location of *key* (two-level sharding)."""
        return self.root / key[:2] / key[2:4] / f"{key}.json"

    # ------------------------------------------------------------------ #
    # Lookup / insert
    # ------------------------------------------------------------------ #
    def _count_hit(self) -> None:
        self.stats.hits += 1
        obs.metrics().inc("store.hits_total")

    def _count_miss(self, invalid: bool = False) -> None:
        self.stats.misses += 1
        obs.metrics().inc("store.misses_total")
        if invalid:
            # The entry exists but cannot be decoded or has the wrong format
            # version — corruption, not a plain miss; keep the counters
            # honest for operators.
            self.stats.invalid += 1
            obs.metrics().inc("store.invalid_total")

    def get(self, key: str) -> Optional[StoredResult]:
        """Return the stored result for *key*, or ``None`` on a miss."""
        cached = self._memory.get(key)
        if cached is not None:
            self._memory.move_to_end(key)
            self._count_hit()
            return cached
        path = self.path_of(key)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            self._count_miss()
            return None
        try:
            payload = json.loads(text)
        except ValueError:
            self._count_miss(invalid=True)
            return None
        if not isinstance(payload, dict):
            self._count_miss(invalid=True)
            return None
        if payload.get("format_version") != STORE_FORMAT_VERSION:
            self._count_miss(invalid=True)
            return None
        try:
            result = StoredResult.from_payload(payload)
        except (KeyError, TypeError, ValueError):
            self._count_miss(invalid=True)
            return None
        self._remember(key, result)
        self._count_hit()
        return result

    def put(self, key: str, result: StoredResult) -> None:
        """Insert *result* under *key* (atomic; last writer wins)."""
        path = self.path_of(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        text = json.dumps(result.to_payload(), sort_keys=True)
        handle, temp_name = tempfile.mkstemp(
            prefix=f".{key[:8]}-", suffix=".tmp", dir=path.parent
        )
        try:
            with os.fdopen(handle, "w", encoding="utf-8") as stream:
                stream.write(text)
            os.replace(temp_name, path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise
        self._remember(key, result)
        self.stats.writes += 1
        obs.metrics().inc("store.puts_total")

    def put_many(self, entries: Sequence[Tuple[str, StoredResult]]) -> int:
        """Insert a batch of ``(key, result)`` pairs; returns the count written.

        The batch sibling of :meth:`put`, used by the engine's chunked
        scheduler to write one chunk's results back in a single call.  Each
        entry is still written atomically (temp file + ``os.replace``), but
        the per-entry Python overhead (directory probing, LRU bookkeeping)
        is paid once per batch where possible.
        """
        made_dirs = set()
        for key, result in entries:
            path = self.path_of(key)
            parent = path.parent
            if parent not in made_dirs:
                parent.mkdir(parents=True, exist_ok=True)
                made_dirs.add(parent)
            text = json.dumps(result.to_payload(), sort_keys=True)
            handle, temp_name = tempfile.mkstemp(
                prefix=f".{key[:8]}-", suffix=".tmp", dir=parent
            )
            try:
                with os.fdopen(handle, "w", encoding="utf-8") as stream:
                    stream.write(text)
                os.replace(temp_name, path)
            except BaseException:
                try:
                    os.unlink(temp_name)
                except OSError:
                    pass
                raise
            self._remember(key, result)
            self.stats.writes += 1
        if entries:
            obs.metrics().inc("store.puts_total", len(entries))
        return len(entries)

    def _remember(self, key: str, result: StoredResult) -> None:
        if self.max_memory_entries == 0:
            return
        self._memory[key] = result
        self._memory.move_to_end(key)
        while len(self._memory) > self.max_memory_entries:
            self._memory.popitem(last=False)
            self.stats.evictions += 1
            obs.metrics().inc("store.evictions_total")

    # ------------------------------------------------------------------ #
    # Lifetime statistics (cross-run sidecar)
    # ------------------------------------------------------------------ #
    #: Name of the lifetime-counter sidecar at the store root.  Entries live
    #: two shard levels down (``ab/cd/*.json``), so the sidecar never shows
    #: up in entry scans.
    STATS_SIDECAR = "_lifetime_stats.json"

    @property
    def _sidecar_path(self) -> Path:
        return self.root / self.STATS_SIDECAR

    def lifetime_stats(self) -> StoreStats:
        """Cumulative counters across every run that called :meth:`persist_stats`.

        Includes this instance's not-yet-persisted activity, so callers see
        up-to-date totals whether or not a flush happened.
        """
        totals = StoreStats()
        try:
            payload = json.loads(self._sidecar_path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            payload = {}
        if isinstance(payload, dict):
            totals.add_dict(payload)
        delta = self._unpersisted_delta()
        totals.add_dict(delta.to_dict())
        return totals

    def _unpersisted_delta(self) -> StoreStats:
        delta = StoreStats()
        delta.add_dict(self.stats.to_dict())
        for field_name, flushed in self._persisted.to_dict().items():
            setattr(delta, field_name, getattr(delta, field_name) - flushed)
        return delta

    def persist_stats(self) -> None:
        """Flush this instance's counter deltas into the lifetime sidecar.

        Best-effort (a read-modify-write with an atomic replace): concurrent
        writers may drop each other's increment, which is acceptable for
        operator-facing counters and keeps the hot path lock-free.  Safe to
        call repeatedly — only the delta since the previous flush is added.
        """
        delta = self._unpersisted_delta()
        if not any(delta.to_dict().values()):
            return
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            totals = StoreStats()
            try:
                payload = json.loads(self._sidecar_path.read_text(encoding="utf-8"))
                if isinstance(payload, dict):
                    totals.add_dict(payload)
            except (OSError, ValueError):
                pass
            totals.add_dict(delta.to_dict())
            handle, temp_name = tempfile.mkstemp(
                prefix=".stats-", suffix=".tmp", dir=self.root
            )
            with os.fdopen(handle, "w", encoding="utf-8") as stream:
                stream.write(json.dumps(totals.to_dict(), sort_keys=True))
            os.replace(temp_name, self._sidecar_path)
        except OSError:
            return
        self._persisted = StoreStats()
        self._persisted.add_dict(self.stats.to_dict())

    # ------------------------------------------------------------------ #
    # Maintenance
    # ------------------------------------------------------------------ #
    def _entry_paths(self) -> List[Path]:
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("??/??/*.json"))

    def scan(self) -> Dict[str, object]:
        """Walk the store directory: entry count and total size in bytes."""
        entries = self._entry_paths()
        return {
            "root": str(self.root),
            "entries": len(entries),
            "total_bytes": sum(p.stat().st_size for p in entries),
        }

    def clear(self) -> int:
        """Delete every entry; returns the number of entries removed.

        Also prunes the emptied two-level shard directories, so clearing
        genuinely empties the cache root instead of stranding a skeleton of
        ``ab/cd/`` directories.
        """
        entries = self._entry_paths()
        for path in entries:
            path.unlink()
        try:
            self._sidecar_path.unlink()
        except OSError:
            pass
        if self.root.is_dir():
            # Children before parents; rmdir refuses non-empty directories
            # (e.g. a concurrent writer landed a fresh entry), which is what
            # we want — only genuinely emptied shards disappear.
            for shard in sorted(self.root.glob("??/??"), reverse=True):
                try:
                    shard.rmdir()
                except OSError:
                    pass
            for shard in sorted(self.root.glob("??"), reverse=True):
                try:
                    shard.rmdir()
                except OSError:
                    pass
        self._memory.clear()
        return len(entries)

    def __len__(self) -> int:
        return len(self._entry_paths())
