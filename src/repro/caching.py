"""Bounded mapping primitive shared by the repo's hot-path memo tables.

Two subsystems independently grew the same idiom — a plain dict with a size
cap, FIFO eviction of the oldest insertion, and hit/miss counters
(:class:`~repro.dfg.reachability.ReachabilityIndex`'s forbidden-between memo
and the contribution-table region cache).  :class:`BoundedMemo` is the single
implementation both now share, and the building block for the in-search
memo's per-domain tables (:mod:`repro.memo.insearch`).

Design notes:

* **FIFO, not LRU.**  Re-ordering on every hit costs a dict delete+insert on
  the hottest read path in the enumerator.  The workloads these tables serve
  are dominated by temporal locality of *insertion* (the enumerator revisits
  recently-extended subgraphs), so evicting the oldest insertion loses little
  over LRU and keeps ``get`` a single dict probe.
* **Insertion-order eviction** uses the ``pop(next(iter(...)))`` idiom relied
  on elsewhere in the tree — Python dicts preserve insertion order, so the
  first iterator element is always the oldest entry.
* This module must stay dependency-free (stdlib only): it is imported from
  ``repro.dfg``, below every other package in the import DAG.
"""

from __future__ import annotations

from typing import Dict, Generic, Iterator, Optional, Tuple, TypeVar

K = TypeVar("K")
V = TypeVar("V")

_MISSING = object()


class BoundedMemo(Generic[K, V]):
    """Size-capped dict with FIFO eviction and hit/miss/eviction counters.

    ``get`` / ``put`` intentionally mirror a plain dict probe plus insert;
    there is no ``__getitem__`` because every caller wants the
    counted-miss behaviour, not a ``KeyError``.
    """

    __slots__ = ("_entries", "limit", "hits", "misses", "evictions")

    def __init__(self, limit: int) -> None:
        if limit < 1:
            raise ValueError(f"BoundedMemo limit must be >= 1, got {limit}")
        self._entries: Dict[K, V] = {}
        self.limit = limit
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: K, default: Optional[V] = None) -> Optional[V]:
        """Return the cached value for *key*, counting the hit or miss."""
        value = self._entries.get(key, _MISSING)
        if value is _MISSING:
            self.misses += 1
            return default
        self.hits += 1
        return value  # type: ignore[return-value]

    def peek(self, key: K, default: Optional[V] = None) -> Optional[V]:
        """Like :meth:`get` but without touching the counters."""
        return self._entries.get(key, default)

    @property
    def raw_getter(self):
        """Bound ``dict.get`` over the live entry mapping.

        For hot paths that probe every few microseconds: binding this once
        removes the attribute chase and wrapper frame of :meth:`peek` from
        each probe.  Misses return ``None`` (uncounted, like ``peek``);
        writes must still go through :meth:`put` so the bound stays
        enforced.  The binding stays valid for the memo's lifetime —
        :meth:`clear` empties the same dict object it points at.
        """
        return self._entries.get

    def put(self, key: K, value: V) -> None:
        """Insert *key* → *value*, evicting the oldest entry when full."""
        entries = self._entries
        if key not in entries and len(entries) >= self.limit:
            entries.pop(next(iter(entries)))
            self.evictions += 1
        entries[key] = value

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: K) -> bool:
        return key in self._entries

    def __iter__(self) -> Iterator[K]:
        return iter(self._entries)

    def items(self) -> Iterator[Tuple[K, V]]:
        return iter(self._entries.items())

    def clear(self, *, reset_counters: bool = False) -> None:
        """Drop all entries; optionally zero the counters too."""
        self._entries.clear()
        if reset_counters:
            self.hits = 0
            self.misses = 0
            self.evictions = 0
