"""Structural validation of data-flow graphs.

The enumeration algorithms assume a handful of structural invariants (the
graph is a DAG, external inputs have no predecessors, stores produce no value,
et cetera).  :func:`validate_graph` checks them all and either raises
:class:`ValidationError` or returns a report listing benign warnings, so that
workload generators and file loaders can be checked before benchmarking.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from .graph import DataFlowGraph
from .opcodes import Opcode, is_external


class ValidationError(ValueError):
    """Raised when a data-flow graph violates a structural invariant."""


@dataclass
class ValidationReport:
    """Outcome of :func:`validate_graph`.

    Attributes
    ----------
    errors:
        Fatal problems; non-empty only when ``raise_on_error=False``.
    warnings:
        Suspicious-but-legal structures (e.g. an operation with no operands).
    """

    errors: List[str] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """``True`` if no fatal error was found."""
        return not self.errors


_MAX_OPERANDS = {
    Opcode.NOT: 1,
    Opcode.NEG: 1,
    Opcode.ABS: 1,
    Opcode.SEXT: 1,
    Opcode.ZEXT: 1,
    Opcode.TRUNC: 1,
    Opcode.LOAD: 2,
    Opcode.SELECT: 3,
    Opcode.MAC: 3,
    Opcode.STORE: 2,
    Opcode.BITINSERT: 3,
}


def validate_graph(graph: DataFlowGraph, raise_on_error: bool = True) -> ValidationReport:
    """Check the structural invariants of *graph*.

    Parameters
    ----------
    graph:
        The graph to validate.
    raise_on_error:
        When ``True`` (the default) a :class:`ValidationError` is raised on the
        first category of fatal problem; when ``False`` all problems are
        collected into the returned report.
    """
    report = ValidationReport()

    if not graph.is_dag():
        report.errors.append("graph contains a cycle")

    for node in graph.nodes():
        preds = graph.predecessors(node.node_id)
        succs = graph.successors(node.node_id)
        if is_external(node.opcode):
            if preds:
                report.errors.append(
                    f"external vertex {node.label} has predecessors {list(preds)}"
                )
            if not node.forbidden:
                report.errors.append(f"external vertex {node.label} is not forbidden")
        elif node.opcode in (Opcode.SOURCE, Opcode.SINK):
            continue
        else:
            if not preds:
                report.warnings.append(
                    f"operation {node.label} has no operands (treated as a root)"
                )
            limit = _MAX_OPERANDS.get(node.opcode)
            if limit is not None and len(preds) > limit:
                report.warnings.append(
                    f"operation {node.label} ({node.opcode.value}) has {len(preds)} operands, "
                    f"expected at most {limit}"
                )
            binary = node.opcode not in _MAX_OPERANDS
            if binary and len(preds) > 2:
                report.warnings.append(
                    f"operation {node.label} ({node.opcode.value}) has {len(preds)} operands, "
                    "expected at most 2"
                )
        if node.opcode is Opcode.STORE and succs:
            report.warnings.append(
                f"store {node.label} produces a value used by {list(succs)}"
            )
        if not succs and not node.live_out and node.is_operation:
            report.warnings.append(
                f"operation {node.label} is dead (no successors and not live-out)"
            )

    if not any(node.is_operation for node in graph.nodes()):
        report.warnings.append("graph contains no operation vertices")

    if raise_on_error and report.errors:
        raise ValidationError("; ".join(report.errors))
    return report
