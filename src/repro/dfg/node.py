"""DFG vertex model.

A :class:`DFGNode` is a lightweight record describing one vertex of a
basic-block data-flow graph: its integer identifier inside the graph, its
opcode, an optional human-readable name, and whether the user marked it as
forbidden over and above the opcode-based default.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .opcodes import (
    Opcode,
    hardware_latency,
    is_artificial,
    is_external,
    is_forbidden_by_default,
    software_latency,
)


@dataclass
class DFGNode:
    """One vertex of a data-flow graph.

    Attributes
    ----------
    node_id:
        Integer identifier, unique within the owning :class:`~repro.dfg.graph.DataFlowGraph`.
    opcode:
        Operation performed by this vertex.
    name:
        Optional human-readable label (e.g. the destination register or the
        source-level variable).  Purely informational.
    forbidden:
        ``True`` if the vertex may not be part of any cut.  The flag combines
        the opcode default with any user override; it is finalised by
        :meth:`repro.dfg.graph.DataFlowGraph.add_node`.
    live_out:
        ``True`` if the value produced by this vertex is consumed outside the
        basic block, i.e. the vertex belongs to the paper's ``Oext`` set even
        if it has successors inside the block.
    """

    node_id: int
    opcode: Opcode
    name: Optional[str] = None
    forbidden: bool = False
    live_out: bool = False
    attributes: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.node_id < 0:
            raise ValueError(f"node_id must be non-negative, got {self.node_id}")
        if not isinstance(self.opcode, Opcode):
            raise TypeError(f"opcode must be an Opcode, got {type(self.opcode)!r}")

    @property
    def label(self) -> str:
        """Display label: the explicit name if any, else ``<opcode><id>``."""
        if self.name:
            return self.name
        return f"{self.opcode.value}{self.node_id}"

    @property
    def is_external(self) -> bool:
        """``True`` for external-input vertices (``Iext``)."""
        return is_external(self.opcode)

    @property
    def is_artificial(self) -> bool:
        """``True`` for the artificial source/sink."""
        return is_artificial(self.opcode)

    @property
    def is_operation(self) -> bool:
        """``True`` if the vertex performs an actual computation."""
        return not self.is_external and not self.is_artificial

    @property
    def default_forbidden(self) -> bool:
        """Whether this vertex is forbidden by opcode alone."""
        return is_forbidden_by_default(self.opcode)

    @property
    def sw_latency(self) -> float:
        """Software latency of the operation, in baseline-processor cycles."""
        return software_latency(self.opcode)

    @property
    def hw_latency(self) -> float:
        """Hardware latency of the operator, in fractions of a cycle."""
        return hardware_latency(self.opcode)

    def copy(self) -> "DFGNode":
        """Return an independent copy of this node."""
        return DFGNode(
            node_id=self.node_id,
            opcode=self.opcode,
            name=self.name,
            forbidden=self.forbidden,
            live_out=self.live_out,
            attributes=dict(self.attributes),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flags = []
        if self.forbidden:
            flags.append("forbidden")
        if self.live_out:
            flags.append("live_out")
        suffix = f" [{', '.join(flags)}]" if flags else ""
        return f"DFGNode({self.node_id}, {self.opcode.value}{suffix})"
