"""Reachability precomputation on data-flow graphs.

Section 5.4 of the paper keeps, next to the adjacency structure, a
precomputed "presence of paths between two nodes" relation together with
information about forbidden vertices lying on those paths.  This module
provides that precomputation as a **packed transitive-closure matrix**:
every row (the descendant set, the ancestor set, the immediate neighbour
sets of one vertex) is a Python big integer with bit ``v`` meaning "vertex
``v`` belongs to the set", and the whole matrix is built once per graph by
OR-ing successor rows in reverse topological order (and predecessor rows in
topological order for the ancestor matrix).

This representation gives constant-time path queries, lets the incremental
algorithm of Figure 3 snapshot and restore the growing cut ``S`` for free
(integers are immutable), and — new with the hot-path optimisation — lets
the cut-oriented queries operate on the closure rows directly:

* ``I(S)`` is one union of predecessor rows over the set bits of ``S``;
* ``O(S)`` needs one successor-row probe per set bit;
* convexity (Definition 2) collapses to a *single* mask identity, because a
  vertex outside ``S`` lies on a path between two cut vertices exactly when
  it belongs to both the descendant closure and the ancestor closure of
  ``S``:  ``S`` is convex  ⇔  ``D(S) ∧ A(S) ⊆ S``.

Set bits are enumerated with low-bit extraction (``mask & -mask``), which is
O(popcount) big-integer operations instead of the O(num_nodes) shift loop
the first implementation used, and popcounts use :meth:`int.bit_count`.

The central quantity of the paper, ``B(V, w)`` ("the vertices between a set
``V`` and a vertex ``w``", Definition 6), reduces to two mask intersections::

    B(V, w) = (union of descendants(v) for v in V)  &  (ancestors(w) | {w})
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Set, Tuple

from ..caching import BoundedMemo
from .graph import DataFlowGraph

#: Entry cap of the forbidden-between memo (see
#: :meth:`ReachabilityIndex.forbidden_between_count`).  Under the batch
#: runner a long-lived index services many enumerations; without a cap the
#: memo grows with every distinct (input, output) pair ever probed.
FORBIDDEN_BETWEEN_CACHE_LIMIT = 4096


def mask_from_ids(ids: Iterable[int]) -> int:
    """Build a bit mask from an iterable of vertex ids."""
    mask = 0
    for node_id in ids:
        mask |= 1 << node_id
    return mask


def ids_from_mask(mask: int) -> List[int]:
    """Expand a bit mask into the sorted list of vertex ids it contains."""
    result = []
    while mask:
        low = mask & -mask
        result.append(low.bit_length() - 1)
        mask ^= low
    return result


def iterate_mask(mask: int):
    """Iterate over the vertex ids contained in *mask* (ascending order)."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


#: Number of vertices in a mask.  Alias of :meth:`int.bit_count` (the 3.10+
#: intrinsic) — kept under the historical name so call sites and tests did
#: not have to churn when the hand-rolled ``bin(mask).count("1")`` went away.
popcount = int.bit_count


class ReachabilityIndex:
    """Packed transitive-closure index of a :class:`DataFlowGraph`.

    Parameters
    ----------
    graph:
        The (augmented or plain) data-flow graph.
    forbidden:
        Optional explicit forbidden set; defaults to ``graph.forbidden_nodes()``.
    """

    def __init__(self, graph: DataFlowGraph, forbidden: Optional[Iterable[int]] = None) -> None:
        self.graph = graph
        self.num_nodes = graph.num_nodes
        if forbidden is None:
            forbidden_set: Set[int] = set(graph.forbidden_nodes())
        else:
            forbidden_set = set(forbidden)
        self.forbidden_mask = mask_from_ids(forbidden_set)

        self._desc: List[int] = [0] * self.num_nodes
        self._anc: List[int] = [0] * self.num_nodes
        self._pred_mask: List[int] = [0] * self.num_nodes
        self._succ_mask: List[int] = [0] * self.num_nodes
        self._compute()
        self._forbidden_between_cache: BoundedMemo[Tuple[int, int], int] = BoundedMemo(
            FORBIDDEN_BETWEEN_CACHE_LIMIT
        )

    @property
    def forbidden_cache_hits(self) -> int:
        """Hits of the forbidden-between memo (surfaced in ``EnumerationStats``)."""
        return self._forbidden_between_cache.hits

    @property
    def forbidden_cache_misses(self) -> int:
        """Misses of the forbidden-between memo (surfaced in ``EnumerationStats``)."""
        return self._forbidden_between_cache.misses

    # ------------------------------------------------------------------ #
    # Precomputation
    # ------------------------------------------------------------------ #
    def _compute(self) -> None:
        """Build the closure matrices by row-OR propagation.

        Descendant rows are accumulated in reverse topological order (every
        successor row is final when it is OR-ed in), ancestor rows in
        topological order.  One pass each — the matrix is never recomputed.
        """
        graph = self.graph
        order = graph.topological_order()
        for v in graph.node_ids():
            self._pred_mask[v] = mask_from_ids(graph.predecessors(v))
            self._succ_mask[v] = mask_from_ids(graph.successors(v))
        desc = self._desc
        anc = self._anc
        for v in reversed(order):
            mask = 0
            for succ in graph.successors(v):
                mask |= (1 << succ) | desc[succ]
            desc[v] = mask
        for v in order:
            mask = 0
            for pred in graph.predecessors(v):
                mask |= (1 << pred) | anc[pred]
            anc[v] = mask

    # ------------------------------------------------------------------ #
    # Mask accessors
    # ------------------------------------------------------------------ #
    def descendants_mask(self, v: int) -> int:
        """Mask of vertices reachable from *v* through at least one edge."""
        return self._desc[v]

    def ancestors_mask(self, v: int) -> int:
        """Mask of vertices that reach *v* through at least one edge."""
        return self._anc[v]

    def predecessors_mask(self, v: int) -> int:
        """Mask of the immediate predecessors of *v*."""
        return self._pred_mask[v]

    def successors_mask(self, v: int) -> int:
        """Mask of the immediate successors of *v*."""
        return self._succ_mask[v]

    def successor_rows(self) -> List[int]:
        """The packed successor rows, indexed by vertex id (do not mutate)."""
        return self._succ_mask

    def predecessor_rows(self) -> List[int]:
        """The packed predecessor rows, indexed by vertex id (do not mutate)."""
        return self._pred_mask

    # ------------------------------------------------------------------ #
    # Row unions over a vertex set
    # ------------------------------------------------------------------ #
    def union_descendants(self, mask: int) -> int:
        """Union of the descendant rows of every vertex in *mask*."""
        union = 0
        desc = self._desc
        while mask:
            low = mask & -mask
            union |= desc[low.bit_length() - 1]
            mask ^= low
        return union

    def union_ancestors(self, mask: int) -> int:
        """Union of the ancestor rows of every vertex in *mask*."""
        union = 0
        anc = self._anc
        while mask:
            low = mask & -mask
            union |= anc[low.bit_length() - 1]
            mask ^= low
        return union

    def union_predecessors(self, mask: int) -> int:
        """Union of the immediate-predecessor rows of every vertex in *mask*."""
        union = 0
        pred = self._pred_mask
        while mask:
            low = mask & -mask
            union |= pred[low.bit_length() - 1]
            mask ^= low
        return union

    def union_successors(self, mask: int) -> int:
        """Union of the immediate-successor rows of every vertex in *mask*."""
        union = 0
        succ = self._succ_mask
        while mask:
            low = mask & -mask
            union |= succ[low.bit_length() - 1]
            mask ^= low
        return union

    # ------------------------------------------------------------------ #
    # Path queries
    # ------------------------------------------------------------------ #
    def has_path(self, u: int, v: int) -> bool:
        """``True`` if there is a directed path (>= 1 edge) from *u* to *v*."""
        return bool((self._desc[u] >> v) & 1)

    def is_ancestor(self, u: int, v: int) -> bool:
        """``True`` if *u* is a proper ancestor of *v*."""
        return self.has_path(u, v)

    def reaches_any(self, u: int, mask: int) -> bool:
        """``True`` if *u* reaches at least one vertex of *mask*."""
        return bool(self._desc[u] & mask)

    def reached_by_any(self, v: int, mask: int) -> bool:
        """``True`` if at least one vertex of *mask* reaches *v*."""
        return bool(self._anc[v] & mask)

    # ------------------------------------------------------------------ #
    # B(V, w) — Definition 6 of the paper
    # ------------------------------------------------------------------ #
    def between_mask(self, sources_mask: int, target: int) -> int:
        """Mask of ``B(V, w)``: vertices on some path from a vertex of *V* to *w*.

        Following Definition 6, the starting vertices are not implicitly
        included but *w* is; a starting vertex that lies on a path from
        another starting vertex does appear in the result.
        """
        return self.union_descendants(sources_mask) & (
            self._anc[target] | (1 << target)
        )

    def between(self, sources: Iterable[int], target: int) -> Set[int]:
        """Set version of :meth:`between_mask`."""
        return set(ids_from_mask(self.between_mask(mask_from_ids(sources), target)))

    # ------------------------------------------------------------------ #
    # Forbidden-node path information (Section 5.3, output-input pruning)
    # ------------------------------------------------------------------ #
    def forbidden_on_path(self, u: int, w: int) -> bool:
        """``True`` if some path from *u* to *w* contains a forbidden vertex.

        The end points themselves are not considered: the query asks about
        *interior* vertices, which is the relevant question when *u* is a
        candidate input (possibly forbidden itself) and *w* a candidate
        output.
        """
        interior = self._desc[u] & self._anc[w]
        return bool(interior & self.forbidden_mask)

    def forbidden_between_count(self, u: int, w: int) -> int:
        """Lower bound on extra inputs forced by forbidden predecessors.

        Counts the distinct forbidden vertices that are predecessors of some
        vertex of ``B({u}, w)`` without lying inside ``B({u}, w)`` themselves
        and without being *u*.  Every such vertex necessarily becomes an input
        of any cut that contains the whole of ``B({u}, w)`` (Section 5.3).

        Memoised per (u, w) in a :class:`~repro.caching.BoundedMemo` capped
        at :data:`FORBIDDEN_BETWEEN_CACHE_LIMIT` entries (first-in evicted)
        so a long-lived index under the batch runner cannot grow without
        bound; the memo's hit/miss counters are surfaced through
        ``EnumerationStats``.
        """
        cached = self._forbidden_between_cache.get((u, w))
        if cached is not None:
            return cached
        between = self.between_mask(1 << u, w)
        forced = self.union_predecessors(between)
        forced &= self.forbidden_mask
        forced &= ~between
        forced &= ~(1 << u)
        count = forced.bit_count()
        self._forbidden_between_cache.put((u, w), count)
        return count

    # ------------------------------------------------------------------ #
    # Cut-oriented helpers (closure-backed)
    # ------------------------------------------------------------------ #
    def cut_inputs_mask(self, cut_mask: int) -> int:
        """Inputs ``I(S)`` of the cut *cut_mask*: predecessors outside the cut."""
        return self.union_predecessors(cut_mask) & ~cut_mask

    def cut_outputs_mask(self, cut_mask: int) -> int:
        """Outputs ``O(S)``: cut vertices with at least one successor outside."""
        outputs = 0
        succ = self._succ_mask
        outside = ~cut_mask
        mask = cut_mask
        while mask:
            low = mask & -mask
            if succ[low.bit_length() - 1] & outside:
                outputs |= low
            mask ^= low
        return outputs

    def is_convex_mask(self, cut_mask: int) -> bool:
        """Check Definition 2 (convexity) for the cut given as a mask.

        A vertex ``w`` outside the cut lies on a path between two cut
        vertices exactly when some cut vertex reaches ``w`` **and** ``w``
        reaches some cut vertex — i.e. when ``w`` belongs to both the
        descendant closure and the ancestor closure of the cut.  Convexity is
        therefore the single identity ``D(S) ∧ A(S) ⊆ S`` on the closure
        rows.
        """
        return not (
            self.union_descendants(cut_mask)
            & self.union_ancestors(cut_mask)
            & ~cut_mask
        )

    def cut_profile(self, cut_mask: int) -> Tuple[int, int, bool]:
        """``(I(S), O(S), convex)`` of a cut in one pass over its set bits.

        The single loop accumulates the descendant/ancestor/predecessor row
        unions and probes the successor rows, so the enumerators' acceptance
        test derives everything it needs with one traversal instead of three.
        """
        desc = self._desc
        anc = self._anc
        pred = self._pred_mask
        succ = self._succ_mask
        outside = ~cut_mask
        down = up = preds = outputs = 0
        mask = cut_mask
        while mask:
            low = mask & -mask
            v = low.bit_length() - 1
            mask ^= low
            down |= desc[v]
            up |= anc[v]
            preds |= pred[v]
            if succ[v] & outside:
                outputs |= low
        convex = not (down & up & outside)
        return preds & outside, outputs, convex


#: Historical name of :class:`ReachabilityIndex`, kept so existing imports
#: (and pickles of objects that reference the class) keep working.
ReachabilityInfo = ReachabilityIndex
