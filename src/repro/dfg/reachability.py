"""Reachability precomputation on data-flow graphs.

Section 5.4 of the paper keeps, next to the adjacency structure, a
precomputed "presence of paths between two nodes" relation together with
information about forbidden vertices lying on those paths.  This module
provides that precomputation.

Sets of vertices are represented as Python integers used as bit masks (bit
``v`` set means vertex ``v`` belongs to the set).  This representation gives
us constant-time path queries, and — crucially for the incremental algorithm
of Figure 3 — lets the enumerator snapshot and restore the growing cut ``S``
for free, because integers are immutable.

The central quantity of the paper, ``B(V, w)`` ("the vertices between a set
``V`` and a vertex ``w``", Definition 6), reduces to two mask intersections::

    B(V, w) = (union of descendants(v) for v in V)  &  (ancestors(w) | {w})
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .graph import DataFlowGraph


def mask_from_ids(ids: Iterable[int]) -> int:
    """Build a bit mask from an iterable of vertex ids."""
    mask = 0
    for node_id in ids:
        mask |= 1 << node_id
    return mask


def ids_from_mask(mask: int) -> List[int]:
    """Expand a bit mask into the sorted list of vertex ids it contains."""
    result = []
    index = 0
    while mask:
        if mask & 1:
            result.append(index)
        mask >>= 1
        index += 1
    return result


def iterate_mask(mask: int):
    """Iterate over the vertex ids contained in *mask* (ascending order)."""
    index = 0
    while mask:
        if mask & 1:
            yield index
        mask >>= 1
        index += 1


def popcount(mask: int) -> int:
    """Number of vertices in the mask."""
    return bin(mask).count("1")


class ReachabilityInfo:
    """Precomputed reachability masks for a :class:`DataFlowGraph`.

    Parameters
    ----------
    graph:
        The (augmented or plain) data-flow graph.
    forbidden:
        Optional explicit forbidden set; defaults to ``graph.forbidden_nodes()``.
    """

    def __init__(self, graph: DataFlowGraph, forbidden: Optional[Iterable[int]] = None) -> None:
        self.graph = graph
        self.num_nodes = graph.num_nodes
        if forbidden is None:
            forbidden_set: Set[int] = set(graph.forbidden_nodes())
        else:
            forbidden_set = set(forbidden)
        self.forbidden_mask = mask_from_ids(forbidden_set)

        self._desc: List[int] = [0] * self.num_nodes
        self._anc: List[int] = [0] * self.num_nodes
        self._pred_mask: List[int] = [0] * self.num_nodes
        self._succ_mask: List[int] = [0] * self.num_nodes
        self._compute()
        self._forbidden_between_cache: Dict[Tuple[int, int], int] = {}

    # ------------------------------------------------------------------ #
    # Precomputation
    # ------------------------------------------------------------------ #
    def _compute(self) -> None:
        graph = self.graph
        order = graph.topological_order()
        for v in graph.node_ids():
            self._pred_mask[v] = mask_from_ids(graph.predecessors(v))
            self._succ_mask[v] = mask_from_ids(graph.successors(v))
        # Descendants: sweep in reverse topological order.
        for v in reversed(order):
            mask = 0
            for succ in graph.successors(v):
                mask |= (1 << succ) | self._desc[succ]
            self._desc[v] = mask
        # Ancestors: sweep in topological order.
        for v in order:
            mask = 0
            for pred in graph.predecessors(v):
                mask |= (1 << pred) | self._anc[pred]
            self._anc[v] = mask

    # ------------------------------------------------------------------ #
    # Mask accessors
    # ------------------------------------------------------------------ #
    def descendants_mask(self, v: int) -> int:
        """Mask of vertices reachable from *v* through at least one edge."""
        return self._desc[v]

    def ancestors_mask(self, v: int) -> int:
        """Mask of vertices that reach *v* through at least one edge."""
        return self._anc[v]

    def predecessors_mask(self, v: int) -> int:
        """Mask of the immediate predecessors of *v*."""
        return self._pred_mask[v]

    def successors_mask(self, v: int) -> int:
        """Mask of the immediate successors of *v*."""
        return self._succ_mask[v]

    # ------------------------------------------------------------------ #
    # Path queries
    # ------------------------------------------------------------------ #
    def has_path(self, u: int, v: int) -> bool:
        """``True`` if there is a directed path (>= 1 edge) from *u* to *v*."""
        return bool((self._desc[u] >> v) & 1)

    def is_ancestor(self, u: int, v: int) -> bool:
        """``True`` if *u* is a proper ancestor of *v*."""
        return self.has_path(u, v)

    def reaches_any(self, u: int, mask: int) -> bool:
        """``True`` if *u* reaches at least one vertex of *mask*."""
        return bool(self._desc[u] & mask)

    def reached_by_any(self, v: int, mask: int) -> bool:
        """``True`` if at least one vertex of *mask* reaches *v*."""
        return bool(self._anc[v] & mask)

    # ------------------------------------------------------------------ #
    # B(V, w) — Definition 6 of the paper
    # ------------------------------------------------------------------ #
    def between_mask(self, sources_mask: int, target: int) -> int:
        """Mask of ``B(V, w)``: vertices on some path from a vertex of *V* to *w*.

        Following Definition 6, the starting vertices are not implicitly
        included but *w* is; a starting vertex that lies on a path from
        another starting vertex does appear in the result.
        """
        reach_down = 0
        remaining = sources_mask
        index = 0
        while remaining:
            if remaining & 1:
                reach_down |= self._desc[index]
            remaining >>= 1
            index += 1
        return reach_down & (self._anc[target] | (1 << target))

    def between(self, sources: Iterable[int], target: int) -> Set[int]:
        """Set version of :meth:`between_mask`."""
        return set(ids_from_mask(self.between_mask(mask_from_ids(sources), target)))

    # ------------------------------------------------------------------ #
    # Forbidden-node path information (Section 5.3, output-input pruning)
    # ------------------------------------------------------------------ #
    def forbidden_on_path(self, u: int, w: int) -> bool:
        """``True`` if some path from *u* to *w* contains a forbidden vertex.

        The end points themselves are not considered: the query asks about
        *interior* vertices, which is the relevant question when *u* is a
        candidate input (possibly forbidden itself) and *w* a candidate
        output.
        """
        interior = self._desc[u] & self._anc[w]
        return bool(interior & self.forbidden_mask)

    def forbidden_between_count(self, u: int, w: int) -> int:
        """Lower bound on extra inputs forced by forbidden predecessors.

        Counts the distinct forbidden vertices that are predecessors of some
        vertex of ``B({u}, w)`` without lying inside ``B({u}, w)`` themselves
        and without being *u*.  Every such vertex necessarily becomes an input
        of any cut that contains the whole of ``B({u}, w)`` (Section 5.3).
        """
        key = (u, w)
        cached = self._forbidden_between_cache.get(key)
        if cached is not None:
            return cached
        between = self.between_mask(1 << u, w)
        forced = 0
        for v in iterate_mask(between):
            forced |= self._pred_mask[v]
        forced &= self.forbidden_mask
        forced &= ~between
        forced &= ~(1 << u)
        count = popcount(forced)
        self._forbidden_between_cache[key] = count
        return count

    # ------------------------------------------------------------------ #
    # Cut-oriented helpers
    # ------------------------------------------------------------------ #
    def cut_inputs_mask(self, cut_mask: int) -> int:
        """Inputs ``I(S)`` of the cut *cut_mask*: predecessors outside the cut."""
        inputs = 0
        for v in iterate_mask(cut_mask):
            inputs |= self._pred_mask[v]
        return inputs & ~cut_mask

    def cut_outputs_mask(self, cut_mask: int) -> int:
        """Outputs ``O(S)``: cut vertices with at least one successor outside."""
        outputs = 0
        for v in iterate_mask(cut_mask):
            if self._succ_mask[v] & ~cut_mask:
                outputs |= 1 << v
        return outputs

    def is_convex_mask(self, cut_mask: int) -> bool:
        """Check Definition 2 (convexity) for the cut given as a mask.

        A cut is convex iff no vertex outside the cut lies on a path between
        two cut vertices, i.e. iff for every outside vertex ``w`` it is not the
        case that some cut vertex reaches ``w`` and ``w`` reaches some cut
        vertex.
        """
        for v in iterate_mask(cut_mask):
            # Successors of v outside the cut must not reach back into the cut.
            escaped = self._succ_mask[v] & ~cut_mask
            for w in iterate_mask(escaped):
                if self._desc[w] & cut_mask:
                    return False
        return True
