"""Convenience builder for constructing data-flow graphs.

Writing DFGs by hand with :meth:`DataFlowGraph.add_node` / ``add_edge`` is
verbose.  :class:`DFGBuilder` offers an expression-like interface used heavily
by the hand-written kernel workloads (:mod:`repro.workloads.kernels`) and by
the tests::

    b = DFGBuilder("saturating_add")
    x, y = b.inputs("x", "y")
    s = b.op(Opcode.ADD, x, y)
    hi = b.const("hi")
    out = b.op(Opcode.MIN, s, hi, live_out=True)
    graph = b.build()

Every helper returns the integer vertex id, so results can be combined freely.
"""

from __future__ import annotations

from typing import Optional, Tuple

from .graph import DataFlowGraph
from .opcodes import Opcode


class DFGBuilder:
    """Incremental builder of :class:`~repro.dfg.graph.DataFlowGraph` objects."""

    def __init__(self, name: str = "dfg") -> None:
        self._graph = DataFlowGraph(name=name)
        self._built = False

    # ------------------------------------------------------------------ #
    # Vertex creation helpers
    # ------------------------------------------------------------------ #
    def input(self, name: Optional[str] = None) -> int:
        """Add an external input vertex (member of ``Iext``)."""
        return self._graph.add_node(Opcode.INPUT, name=name)

    def inputs(self, *names: str) -> Tuple[int, ...]:
        """Add several external inputs at once and return their ids."""
        return tuple(self.input(name) for name in names)

    def const(self, name: Optional[str] = None) -> int:
        """Add a constant vertex (external, forbidden, usually named)."""
        return self._graph.add_node(Opcode.CONSTANT, name=name)

    def op(
        self,
        opcode: Opcode,
        *operands: int,
        name: Optional[str] = None,
        forbidden: Optional[bool] = None,
        live_out: bool = False,
    ) -> int:
        """Add an operation vertex fed by *operands* and return its id."""
        node_id = self._graph.add_node(
            opcode, name=name, forbidden=forbidden, live_out=live_out
        )
        for operand in operands:
            self._graph.add_edge(operand, node_id)
        return node_id

    def load(self, address: int, name: Optional[str] = None, live_out: bool = False) -> int:
        """Add a (forbidden-by-default) load fed by *address*."""
        return self.op(Opcode.LOAD, address, name=name, live_out=live_out)

    def store(self, address: int, value: int, name: Optional[str] = None) -> int:
        """Add a (forbidden-by-default) store of *value* to *address*."""
        return self.op(Opcode.STORE, address, value, name=name)

    # Arithmetic shorthands -------------------------------------------------
    def add(self, a: int, b: int, **kwargs: object) -> int:
        """Shorthand for an ``ADD`` operation."""
        return self.op(Opcode.ADD, a, b, **kwargs)

    def sub(self, a: int, b: int, **kwargs: object) -> int:
        """Shorthand for a ``SUB`` operation."""
        return self.op(Opcode.SUB, a, b, **kwargs)

    def mul(self, a: int, b: int, **kwargs: object) -> int:
        """Shorthand for a ``MUL`` operation."""
        return self.op(Opcode.MUL, a, b, **kwargs)

    def xor(self, a: int, b: int, **kwargs: object) -> int:
        """Shorthand for a ``XOR`` operation."""
        return self.op(Opcode.XOR, a, b, **kwargs)

    def and_(self, a: int, b: int, **kwargs: object) -> int:
        """Shorthand for an ``AND`` operation."""
        return self.op(Opcode.AND, a, b, **kwargs)

    def or_(self, a: int, b: int, **kwargs: object) -> int:
        """Shorthand for an ``OR`` operation."""
        return self.op(Opcode.OR, a, b, **kwargs)

    def shl(self, a: int, b: int, **kwargs: object) -> int:
        """Shorthand for a left shift."""
        return self.op(Opcode.SHL, a, b, **kwargs)

    def shr(self, a: int, b: int, **kwargs: object) -> int:
        """Shorthand for a logical right shift."""
        return self.op(Opcode.SHR, a, b, **kwargs)

    # ------------------------------------------------------------------ #
    # Finalisation
    # ------------------------------------------------------------------ #
    def mark_live_out(self, *node_ids: int) -> None:
        """Flag vertices as live outside the basic block."""
        for node_id in node_ids:
            self._graph.set_live_out(node_id, True)

    def mark_forbidden(self, *node_ids: int) -> None:
        """Flag vertices as forbidden (may not belong to any cut)."""
        for node_id in node_ids:
            self._graph.set_forbidden(node_id, True)

    @property
    def graph(self) -> DataFlowGraph:
        """The graph under construction (shared reference)."""
        return self._graph

    def build(self) -> DataFlowGraph:
        """Return the constructed graph after a structural sanity check."""
        self._graph.topological_order()  # raises on cycles
        self._built = True
        return self._graph


def linear_chain(length: int, opcode: Opcode = Opcode.ADD, name: str = "chain") -> DataFlowGraph:
    """Build a simple chain ``input -> op -> op -> ... -> op`` of *length* operations.

    Useful in tests: a chain of length ``k`` has exactly ``k * (k + 1) / 2``
    connected convex cuts when I/O constraints allow them all.
    """
    if length < 1:
        raise ValueError("length must be >= 1")
    builder = DFGBuilder(name)
    prev = builder.input("in")
    second = builder.input("in2")
    for index in range(length):
        prev = builder.op(opcode, prev, second if index == 0 else prev, name=f"n{index}")
    builder.mark_live_out(prev)
    return builder.build()


def diamond(name: str = "diamond") -> DataFlowGraph:
    """Build the canonical 4-operation diamond used throughout the tests."""
    builder = DFGBuilder(name)
    a = builder.input("a")
    b = builder.input("b")
    top = builder.add(a, b, name="top")
    left = builder.shl(top, builder.const("c1"), name="left")
    right = builder.xor(top, b, name="right")
    bottom = builder.sub(left, right, name="bottom", live_out=True)
    builder.mark_live_out(bottom)
    return builder.build()
