"""Graphviz DOT export/import for data-flow graphs.

The exporter is self-contained (no graphviz dependency); the importer handles
the subset of DOT that the exporter produces, which is enough to round-trip
graphs and to load hand-edited examples.
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, Optional

from .graph import DataFlowGraph
from .opcodes import Opcode

_NODE_RE = re.compile(r'^\s*(\w+)\s*\[(.*)\]\s*;?\s*$')
_EDGE_RE = re.compile(r'^\s*(\w+)\s*->\s*(\w+)\s*(?:\[.*\])?\s*;?\s*$')
_ATTR_RE = re.compile(r'(\w+)\s*=\s*"([^"]*)"')

_SHAPES = {
    "input": "invtriangle",
    "const": "invtriangle",
    "load": "box",
    "store": "box",
    "source": "point",
    "sink": "point",
}


def to_dot(
    graph: DataFlowGraph,
    highlight: Optional[Iterable[int]] = None,
    title: Optional[str] = None,
) -> str:
    """Render *graph* as a Graphviz DOT string.

    Parameters
    ----------
    graph:
        The data-flow graph to render.
    highlight:
        Optional set of vertex ids to shade (used to visualise a cut).
    title:
        Graph label; defaults to the graph name.
    """
    highlight_set = set(highlight or ())
    lines = [f'digraph "{title or graph.name}" {{']
    lines.append("  rankdir=TB;")
    lines.append('  node [fontname="Helvetica"];')
    for node in graph.nodes():
        attrs = {
            "label": node.label,
            "opcode": node.opcode.value,
        }
        shape = _SHAPES.get(node.opcode.value, "ellipse")
        attrs["shape"] = shape
        styles = []
        if node.forbidden:
            styles.append("dashed")
        if node.node_id in highlight_set:
            styles.append("filled")
            attrs["fillcolor"] = "lightblue"
        if styles:
            attrs["style"] = ",".join(styles)
        if node.live_out:
            attrs["peripheries"] = "2"
        if node.forbidden:
            attrs["forbidden"] = "true"
        if node.live_out:
            attrs["live_out"] = "true"
        rendered = ", ".join(f'{key}="{value}"' for key, value in attrs.items())
        lines.append(f"  n{node.node_id} [{rendered}];")
    for src, dst in sorted(graph.edges()):
        lines.append(f"  n{src} -> n{dst};")
    lines.append("}")
    return "\n".join(lines) + "\n"


def from_dot(text: str, name: str = "dfg") -> DataFlowGraph:
    """Parse a DOT string produced by :func:`to_dot` back into a DFG."""
    graph = DataFlowGraph(name=name)
    id_map: Dict[str, int] = {}
    pending_edges = []
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line or line.startswith(("digraph", "}", "//", "rankdir", "node [")):
            continue
        edge_match = _EDGE_RE.match(line)
        if edge_match:
            pending_edges.append((edge_match.group(1), edge_match.group(2)))
            continue
        node_match = _NODE_RE.match(line)
        if node_match:
            dot_id, attr_text = node_match.group(1), node_match.group(2)
            attrs = dict(_ATTR_RE.findall(attr_text))
            opcode_value = attrs.get("opcode", "add")
            opcode = Opcode(opcode_value)
            node_id = graph.add_node(
                opcode,
                name=attrs.get("label"),
                forbidden=True if attrs.get("forbidden") == "true" else None,
                live_out=attrs.get("live_out") == "true",
            )
            id_map[dot_id] = node_id
    for src, dst in pending_edges:
        if src in id_map and dst in id_map:
            graph.add_edge(id_map[src], id_map[dst])
    return graph
