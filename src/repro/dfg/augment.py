"""Augmentation of a data-flow graph into a rooted graph.

Section 3 of the paper transforms the DFG ``G`` into a rooted graph by adding

* a single artificial **source** vertex that is a predecessor of every vertex
  in ``Iext`` (and, without loss of generality, of every user-forbidden vertex
  that has no predecessor), so that dominators are well defined, and
* a single artificial **sink** vertex that is a successor of every vertex in
  ``Oext``, so that the reverse graph is rooted as well and postdominators are
  well defined.  Connecting ``Oext`` to the sink also guarantees that a
  live-out vertex inside a cut is always one of the cut's outputs.

Both artificial vertices are forbidden.  The :class:`AugmentedDFG` wrapper
keeps the original vertex ids unchanged and exposes the source/sink ids, so
all enumeration code can work on a single graph object.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Set

from .graph import DataFlowGraph
from .opcodes import Opcode


@dataclass
class AugmentedDFG:
    """A DFG augmented with an artificial source and sink.

    Attributes
    ----------
    graph:
        The augmented graph.  Vertices ``0 .. n-1`` are the original vertices
        (same ids as in the input graph); the last two vertices are the
        artificial source and sink.
    source:
        Vertex id of the artificial source (root of the graph).
    sink:
        Vertex id of the artificial sink (root of the reverse graph).
    original_num_nodes:
        Number of vertices of the original, un-augmented graph.
    forbidden:
        The complete forbidden set ``F``: user-forbidden vertices, external
        inputs, and the two artificial vertices.
    """

    graph: DataFlowGraph
    source: int
    sink: int
    original_num_nodes: int
    forbidden: Set[int] = field(default_factory=set)

    def original_node_ids(self) -> range:
        """Ids of the vertices of the original graph."""
        return range(self.original_num_nodes)

    def is_artificial(self, node_id: int) -> bool:
        """``True`` if *node_id* is the artificial source or sink."""
        return node_id in (self.source, self.sink)

    def candidate_nodes(self) -> List[int]:
        """Vertices that may belong to a cut."""
        return [
            v
            for v in self.original_node_ids()
            if v not in self.forbidden
        ]


def augment(graph: DataFlowGraph) -> AugmentedDFG:
    """Return the rooted augmentation of *graph*.

    The original graph is not modified; the augmented graph contains a copy of
    every original vertex (with identical ids) plus the artificial source and
    sink described in the module docstring.
    """
    augmented = graph.copy(name=f"{graph.name}_rooted")
    original_n = augmented.num_nodes

    source = augmented.add_node(Opcode.SOURCE, name="__source__")
    sink = augmented.add_node(Opcode.SINK, name="__sink__")

    forbidden: Set[int] = set(graph.forbidden_nodes())
    forbidden.add(source)
    forbidden.add(sink)

    # The source feeds every external input, and -- as the paper notes at the
    # end of Section 3 -- every forbidden vertex without a predecessor, so
    # that the graph has a single root.
    for v in range(original_n):
        node = augmented.node(v)
        if not augmented.predecessors(v):
            augmented.add_edge(source, v)
        elif node.forbidden and v not in (source, sink):
            # Forbidden vertices partition the search space; giving them a
            # direct edge from the source keeps dominator queries faithful to
            # the paper's model ("all the nodes v in F can be connected to the
            # same artificial source as the external inputs").
            augmented.add_edge(source, v)

    # The sink consumes every live-out value and every vertex without
    # successors, so the reverse graph is rooted at the sink.
    for v in range(original_n):
        node = augmented.node(v)
        if not augmented.successors(v) or node.live_out:
            augmented.add_edge(v, sink)

    augmented.topological_order()  # sanity: still a DAG
    return AugmentedDFG(
        graph=augmented,
        source=source,
        sink=sink,
        original_num_nodes=original_n,
        forbidden=forbidden,
    )
