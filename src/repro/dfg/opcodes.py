"""Operation codes used in basic-block data-flow graphs.

The paper operates on data-flow graphs extracted from compiled embedded
applications (MiBench).  Each DFG vertex is either

* an *external input* (``Opcode.INPUT``): a value produced outside the basic
  block (register live-in, constant pool entry, ...).  Such vertices form the
  ``Iext`` set of the paper and are always forbidden (they cannot belong to a
  cut, but they can be inputs to a cut);
* an *operation*: an arithmetic/logic/memory operation.  Memory operations are
  the canonical user-specified forbidden nodes (a custom functional unit
  without a memory port cannot execute them);
* one of the two artificial vertices (``SOURCE``/``SINK``) added when the graph
  is augmented to be rooted (see :mod:`repro.dfg.augment`).

Besides the classification needed by the enumeration algorithm itself
(forbidden or not), every opcode carries a software latency (cycles on the
baseline single-issue processor) and a hardware latency (normalised delay of
the operator when implemented inside a custom functional unit).  Those numbers
feed the ISE merit function of :mod:`repro.ise` and follow the per-operation
cost model popularised by Atasu et al. [4]: cheap bitwise operations are almost
free in hardware, adders cost a fraction of a cycle, multipliers and memory
operations are expensive.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, FrozenSet


class OpcodeClass(enum.Enum):
    """Coarse classification of operations, used by workload generators."""

    EXTERNAL = "external"
    ARITHMETIC = "arithmetic"
    LOGIC = "logic"
    SHIFT = "shift"
    COMPARE = "compare"
    MULTIPLY = "multiply"
    DIVIDE = "divide"
    MEMORY = "memory"
    CONTROL = "control"
    ARTIFICIAL = "artificial"


class Opcode(enum.Enum):
    """Operation codes for DFG vertices."""

    # External / artificial vertices
    INPUT = "input"
    CONSTANT = "const"
    SOURCE = "source"
    SINK = "sink"

    # Integer arithmetic
    ADD = "add"
    SUB = "sub"
    NEG = "neg"
    ABS = "abs"

    # Multiplication / division
    MUL = "mul"
    MULH = "mulh"
    DIV = "div"
    REM = "rem"
    MAC = "mac"

    # Bitwise logic
    AND = "and"
    OR = "or"
    XOR = "xor"
    NOT = "not"

    # Shifts / rotates / bit manipulation
    SHL = "shl"
    SHR = "shr"
    SAR = "sar"
    ROL = "rol"
    ROR = "ror"
    BITEXTRACT = "bitextract"
    BITINSERT = "bitinsert"

    # Comparisons / selection
    EQ = "eq"
    NE = "ne"
    LT = "lt"
    LE = "le"
    GT = "gt"
    GE = "ge"
    MIN = "min"
    MAX = "max"
    SELECT = "select"

    # Conversions
    SEXT = "sext"
    ZEXT = "zext"
    TRUNC = "trunc"

    # Memory operations (usually forbidden)
    LOAD = "load"
    STORE = "store"

    # Control / calls (always forbidden)
    BRANCH = "branch"
    CALL = "call"


@dataclass(frozen=True)
class OpcodeInfo:
    """Static properties of an opcode.

    Attributes
    ----------
    opclass:
        Coarse classification of the operation.
    sw_latency:
        Latency, in cycles, of the operation on the baseline processor.
    hw_latency:
        Normalised delay of the operator inside a custom functional unit, in
        fractions of the processor cycle time (an adder ~0.3, a multiplier
        ~1.5, wiring/logic ~0.05).
    area:
        Relative area cost of the operator (adder = 1.0).
    forbidden_by_default:
        ``True`` for operations that the paper treats as forbidden unless the
        custom functional unit explicitly supports them (memory and control
        operations, plus external/artificial vertices).
    """

    opclass: OpcodeClass
    sw_latency: float
    hw_latency: float
    area: float
    forbidden_by_default: bool = False


_OPCODE_TABLE: Dict[Opcode, OpcodeInfo] = {
    Opcode.INPUT: OpcodeInfo(OpcodeClass.EXTERNAL, 0.0, 0.0, 0.0, True),
    Opcode.CONSTANT: OpcodeInfo(OpcodeClass.EXTERNAL, 0.0, 0.0, 0.0, True),
    Opcode.SOURCE: OpcodeInfo(OpcodeClass.ARTIFICIAL, 0.0, 0.0, 0.0, True),
    Opcode.SINK: OpcodeInfo(OpcodeClass.ARTIFICIAL, 0.0, 0.0, 0.0, True),
    Opcode.ADD: OpcodeInfo(OpcodeClass.ARITHMETIC, 1.0, 0.30, 1.0),
    Opcode.SUB: OpcodeInfo(OpcodeClass.ARITHMETIC, 1.0, 0.30, 1.0),
    Opcode.NEG: OpcodeInfo(OpcodeClass.ARITHMETIC, 1.0, 0.20, 0.5),
    Opcode.ABS: OpcodeInfo(OpcodeClass.ARITHMETIC, 1.0, 0.35, 1.2),
    Opcode.MUL: OpcodeInfo(OpcodeClass.MULTIPLY, 3.0, 1.50, 8.0),
    Opcode.MULH: OpcodeInfo(OpcodeClass.MULTIPLY, 3.0, 1.50, 8.0),
    Opcode.DIV: OpcodeInfo(OpcodeClass.DIVIDE, 20.0, 8.00, 20.0),
    Opcode.REM: OpcodeInfo(OpcodeClass.DIVIDE, 20.0, 8.00, 20.0),
    Opcode.MAC: OpcodeInfo(OpcodeClass.MULTIPLY, 3.0, 1.70, 9.0),
    Opcode.AND: OpcodeInfo(OpcodeClass.LOGIC, 1.0, 0.05, 0.1),
    Opcode.OR: OpcodeInfo(OpcodeClass.LOGIC, 1.0, 0.05, 0.1),
    Opcode.XOR: OpcodeInfo(OpcodeClass.LOGIC, 1.0, 0.05, 0.15),
    Opcode.NOT: OpcodeInfo(OpcodeClass.LOGIC, 1.0, 0.02, 0.05),
    Opcode.SHL: OpcodeInfo(OpcodeClass.SHIFT, 1.0, 0.20, 0.8),
    Opcode.SHR: OpcodeInfo(OpcodeClass.SHIFT, 1.0, 0.20, 0.8),
    Opcode.SAR: OpcodeInfo(OpcodeClass.SHIFT, 1.0, 0.20, 0.8),
    Opcode.ROL: OpcodeInfo(OpcodeClass.SHIFT, 1.0, 0.22, 0.9),
    Opcode.ROR: OpcodeInfo(OpcodeClass.SHIFT, 1.0, 0.22, 0.9),
    Opcode.BITEXTRACT: OpcodeInfo(OpcodeClass.SHIFT, 1.0, 0.10, 0.3),
    Opcode.BITINSERT: OpcodeInfo(OpcodeClass.SHIFT, 1.0, 0.15, 0.4),
    Opcode.EQ: OpcodeInfo(OpcodeClass.COMPARE, 1.0, 0.25, 0.6),
    Opcode.NE: OpcodeInfo(OpcodeClass.COMPARE, 1.0, 0.25, 0.6),
    Opcode.LT: OpcodeInfo(OpcodeClass.COMPARE, 1.0, 0.30, 0.7),
    Opcode.LE: OpcodeInfo(OpcodeClass.COMPARE, 1.0, 0.30, 0.7),
    Opcode.GT: OpcodeInfo(OpcodeClass.COMPARE, 1.0, 0.30, 0.7),
    Opcode.GE: OpcodeInfo(OpcodeClass.COMPARE, 1.0, 0.30, 0.7),
    Opcode.MIN: OpcodeInfo(OpcodeClass.COMPARE, 1.0, 0.40, 1.3),
    Opcode.MAX: OpcodeInfo(OpcodeClass.COMPARE, 1.0, 0.40, 1.3),
    Opcode.SELECT: OpcodeInfo(OpcodeClass.COMPARE, 1.0, 0.10, 0.3),
    Opcode.SEXT: OpcodeInfo(OpcodeClass.LOGIC, 1.0, 0.02, 0.05),
    Opcode.ZEXT: OpcodeInfo(OpcodeClass.LOGIC, 1.0, 0.02, 0.05),
    Opcode.TRUNC: OpcodeInfo(OpcodeClass.LOGIC, 1.0, 0.02, 0.02),
    Opcode.LOAD: OpcodeInfo(OpcodeClass.MEMORY, 2.0, 2.00, 0.0, True),
    Opcode.STORE: OpcodeInfo(OpcodeClass.MEMORY, 1.0, 2.00, 0.0, True),
    Opcode.BRANCH: OpcodeInfo(OpcodeClass.CONTROL, 1.0, 1.00, 0.0, True),
    Opcode.CALL: OpcodeInfo(OpcodeClass.CONTROL, 2.0, 2.00, 0.0, True),
}

#: Opcodes that may never be part of a custom instruction, regardless of user
#: configuration: they either carry no computation (external/artificial
#: vertices) or transfer control out of the basic block.
ALWAYS_FORBIDDEN_OPCODES: FrozenSet[Opcode] = frozenset(
    {
        Opcode.INPUT,
        Opcode.CONSTANT,
        Opcode.SOURCE,
        Opcode.SINK,
        Opcode.BRANCH,
        Opcode.CALL,
    }
)

#: Opcodes forbidden by default (memory operations) but that a user may allow
#: if the custom functional unit has a memory port (cf. Biswas et al. [7]).
DEFAULT_FORBIDDEN_OPCODES: FrozenSet[Opcode] = frozenset(
    {Opcode.LOAD, Opcode.STORE}
) | ALWAYS_FORBIDDEN_OPCODES


def opcode_info(opcode: Opcode) -> OpcodeInfo:
    """Return the static :class:`OpcodeInfo` for *opcode*."""
    return _OPCODE_TABLE[opcode]


def software_latency(opcode: Opcode) -> float:
    """Latency of *opcode* on the baseline processor, in cycles."""
    return _OPCODE_TABLE[opcode].sw_latency


def hardware_latency(opcode: Opcode) -> float:
    """Normalised delay of *opcode* inside a custom functional unit."""
    return _OPCODE_TABLE[opcode].hw_latency


def area_cost(opcode: Opcode) -> float:
    """Relative area of the hardware operator implementing *opcode*."""
    return _OPCODE_TABLE[opcode].area


def is_memory(opcode: Opcode) -> bool:
    """``True`` if *opcode* is a memory operation (load/store)."""
    return _OPCODE_TABLE[opcode].opclass is OpcodeClass.MEMORY


def is_external(opcode: Opcode) -> bool:
    """``True`` if *opcode* denotes a value produced outside the basic block."""
    return _OPCODE_TABLE[opcode].opclass is OpcodeClass.EXTERNAL


def is_artificial(opcode: Opcode) -> bool:
    """``True`` for the artificial source/sink vertices."""
    return _OPCODE_TABLE[opcode].opclass is OpcodeClass.ARTIFICIAL


def is_forbidden_by_default(opcode: Opcode) -> bool:
    """``True`` if *opcode* is forbidden unless explicitly allowed."""
    return opcode in DEFAULT_FORBIDDEN_OPCODES


def all_operation_opcodes() -> FrozenSet[Opcode]:
    """Every opcode that represents an actual computation inside the block."""
    return frozenset(
        op
        for op, info in _OPCODE_TABLE.items()
        if info.opclass not in (OpcodeClass.EXTERNAL, OpcodeClass.ARTIFICIAL)
    )
