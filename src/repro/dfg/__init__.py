"""Data-flow graph substrate.

This package provides everything needed to model a basic block as the paper
does: the vertex/opcode model, the :class:`DataFlowGraph` container, the
rooted augmentation with artificial source/sink, reachability precomputation
(including the ``B(V, w)`` primitive of Definition 6), construction helpers,
validation, and DOT/JSON interchange.
"""

from .augment import AugmentedDFG, augment
from .builder import DFGBuilder, diamond, linear_chain
from .dot import from_dot, to_dot
from .graph import DataFlowGraph, GraphStructureError
from .node import DFGNode
from .opcodes import (
    ALWAYS_FORBIDDEN_OPCODES,
    DEFAULT_FORBIDDEN_OPCODES,
    Opcode,
    OpcodeClass,
    OpcodeInfo,
    all_operation_opcodes,
    area_cost,
    hardware_latency,
    is_forbidden_by_default,
    is_memory,
    opcode_info,
    software_latency,
)
from .reachability import (
    ReachabilityIndex,
    ReachabilityInfo,
    ids_from_mask,
    iterate_mask,
    mask_from_ids,
    popcount,
)
from .serialization import (
    WIRE_VERSION,
    dumps,
    graph_from_dict,
    graph_from_wire,
    graph_to_dict,
    graph_to_wire,
    load,
    loads,
    save,
)
from .validate import ValidationError, ValidationReport, validate_graph

__all__ = [
    "AugmentedDFG",
    "augment",
    "DFGBuilder",
    "diamond",
    "linear_chain",
    "from_dot",
    "to_dot",
    "DataFlowGraph",
    "GraphStructureError",
    "DFGNode",
    "Opcode",
    "OpcodeClass",
    "OpcodeInfo",
    "ALWAYS_FORBIDDEN_OPCODES",
    "DEFAULT_FORBIDDEN_OPCODES",
    "all_operation_opcodes",
    "area_cost",
    "hardware_latency",
    "is_forbidden_by_default",
    "is_memory",
    "opcode_info",
    "software_latency",
    "ReachabilityIndex",
    "ReachabilityInfo",
    "ids_from_mask",
    "iterate_mask",
    "mask_from_ids",
    "popcount",
    "dumps",
    "loads",
    "save",
    "load",
    "graph_to_dict",
    "graph_from_dict",
    "graph_to_wire",
    "graph_from_wire",
    "WIRE_VERSION",
    "ValidationError",
    "ValidationReport",
    "validate_graph",
]
