"""Basic-block data-flow graph container.

The :class:`DataFlowGraph` is the substrate every other package builds on.  It
stores a directed acyclic graph whose vertices are :class:`~repro.dfg.node.DFGNode`
records identified by dense integer ids, and keeps the two representations the
paper uses simultaneously (Section 5.4): predecessor/successor adjacency lists
for traversal, plus (on demand, see :mod:`repro.dfg.reachability`) a
path-presence matrix for constant-time "is there a path" queries.

Terminology (mirroring the paper):

* ``Iext`` — external inputs: vertices with no predecessors, representing
  values computed outside the basic block.  They are always forbidden.
* ``Oext`` — vertices whose value is live outside the basic block.  This set
  is a superset of the vertices with no successors; additional vertices can
  be flagged with ``live_out=True``.
* forbidden set ``F`` — vertices that may never belong to a cut.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

import networkx as nx

from .node import DFGNode
from .opcodes import Opcode, is_forbidden_by_default


class GraphStructureError(ValueError):
    """Raised when an operation would corrupt the DFG structure."""


class DataFlowGraph:
    """A rooted-convertible DAG of data-flow operations.

    Vertices are created through :meth:`add_node` and receive consecutive
    integer identifiers starting at zero; edges are added with
    :meth:`add_edge`.  The class enforces acyclicity lazily: cycles are only
    detected when a topological order is requested or :meth:`validate` is
    called, which keeps edge insertion O(1).
    """

    def __init__(self, name: str = "dfg") -> None:
        self.name = name
        self._nodes: List[DFGNode] = []
        self._preds: List[List[int]] = []
        self._succs: List[List[int]] = []
        self._edge_set: Set[Tuple[int, int]] = set()
        self._topo_cache: Optional[List[int]] = None
        self._structural_hash: Optional[str] = None

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add_node(
        self,
        opcode: Opcode,
        name: Optional[str] = None,
        forbidden: Optional[bool] = None,
        live_out: bool = False,
        **attributes: object,
    ) -> int:
        """Add a vertex and return its identifier.

        Parameters
        ----------
        opcode:
            Operation performed by the vertex.
        name:
            Optional human-readable label.
        forbidden:
            Explicit forbidden flag.  When ``None`` the opcode default is used
            (memory/control/external vertices are forbidden, everything else is
            allowed).  Passing ``False`` for an *always*-forbidden opcode
            (external inputs, source, sink, branches) is rejected.
        live_out:
            ``True`` if the produced value is consumed outside the basic block.
        """
        node_id = len(self._nodes)
        if forbidden is None:
            forbidden = is_forbidden_by_default(opcode)
        node = DFGNode(
            node_id=node_id,
            opcode=opcode,
            name=name,
            forbidden=forbidden,
            live_out=live_out,
            attributes=dict(attributes),
        )
        if not forbidden and node.default_forbidden and not node.is_operation:
            raise GraphStructureError(
                f"vertex {node.label}: opcode {opcode.value} cannot be allowed in cuts"
            )
        self._nodes.append(node)
        self._preds.append([])
        self._succs.append([])
        self._topo_cache = None
        self._structural_hash = None
        return node_id

    def add_edge(self, src: int, dst: int) -> None:
        """Add a data dependence edge ``src -> dst``.

        Parallel edges are collapsed (a vertex reading the same value twice,
        e.g. ``x * x``, contributes a single graph edge, like in the paper's
        graphs); self-loops are rejected.
        """
        self._check_id(src)
        self._check_id(dst)
        if src == dst:
            raise GraphStructureError(f"self-loop on vertex {src} is not allowed")
        if (src, dst) in self._edge_set:
            return
        self._edge_set.add((src, dst))
        self._succs[src].append(dst)
        self._preds[dst].append(src)
        self._topo_cache = None
        self._structural_hash = None

    def _check_id(self, node_id: int) -> None:
        if not 0 <= node_id < len(self._nodes):
            raise GraphStructureError(
                f"vertex id {node_id} out of range (graph has {len(self._nodes)} vertices)"
            )

    # ------------------------------------------------------------------ #
    # Basic queries
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._nodes)

    @property
    def num_nodes(self) -> int:
        """Number of vertices."""
        return len(self._nodes)

    @property
    def num_edges(self) -> int:
        """Number of edges."""
        return len(self._edge_set)

    def node(self, node_id: int) -> DFGNode:
        """Return the :class:`DFGNode` record for *node_id*."""
        self._check_id(node_id)
        return self._nodes[node_id]

    def nodes(self) -> Iterator[DFGNode]:
        """Iterate over all node records in id order."""
        return iter(self._nodes)

    def node_ids(self) -> range:
        """Range of all vertex identifiers."""
        return range(len(self._nodes))

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate over all edges as ``(src, dst)`` pairs."""
        for src in self.node_ids():
            for dst in self._succs[src]:
                yield (src, dst)

    def has_edge(self, src: int, dst: int) -> bool:
        """``True`` if the edge ``src -> dst`` exists."""
        return (src, dst) in self._edge_set

    def predecessors(self, node_id: int) -> Sequence[int]:
        """Immediate predecessors of *node_id* (operands)."""
        self._check_id(node_id)
        return tuple(self._preds[node_id])

    def successors(self, node_id: int) -> Sequence[int]:
        """Immediate successors of *node_id* (uses of its value)."""
        self._check_id(node_id)
        return tuple(self._succs[node_id])

    def in_degree(self, node_id: int) -> int:
        """Number of operands of *node_id*."""
        self._check_id(node_id)
        return len(self._preds[node_id])

    def out_degree(self, node_id: int) -> int:
        """Number of uses of the value produced by *node_id*."""
        self._check_id(node_id)
        return len(self._succs[node_id])

    def opcode(self, node_id: int) -> Opcode:
        """Opcode of vertex *node_id*."""
        return self.node(node_id).opcode

    def structural_hash(self) -> str:
        """Cached SHA-256 fingerprint of the graph's full content.

        Covers the name, every node record (opcode, name, forbidden,
        live-out, attributes) and the edge set — everything the stable JSON
        serialization covers — so two graph objects share a hash exactly
        when :func:`repro.dfg.serialization.graph_to_dict` would emit the
        same document.  Unlike the JSON pass this is computed **once** and
        cached; mutations through the graph API (:meth:`add_node`,
        :meth:`add_edge`, :meth:`set_forbidden`, :meth:`set_live_out`)
        invalidate it.  Mutating a :class:`~repro.dfg.node.DFGNode` record
        directly bypasses the invalidation — use the setters.

        This is the fingerprint of the engine's context cache, the batch
        wire format and the worker-resident graph registries.
        """
        cached = self._structural_hash
        if cached is None:
            parts: List[str] = [repr(self.name)]
            for node in self._nodes:
                parts.append(
                    repr(
                        (
                            node.opcode.value,
                            node.name,
                            node.forbidden,
                            node.live_out,
                            sorted(node.attributes.items()) if node.attributes else (),
                        )
                    )
                )
            parts.append(repr(sorted(self._edge_set)))
            digest = hashlib.sha256("\n".join(parts).encode("utf-8"))
            cached = digest.hexdigest()
            self._structural_hash = cached
        return cached

    # ------------------------------------------------------------------ #
    # Paper-specific vertex sets
    # ------------------------------------------------------------------ #
    def external_inputs(self) -> List[int]:
        """The ``Iext`` set: vertices with no predecessors.

        Per Section 3 of the paper these represent input variables of the
        basic block; they are always forbidden.
        """
        return [v for v in self.node_ids() if not self._preds[v]]

    def live_out_nodes(self) -> List[int]:
        """The ``Oext`` set: sinks of the DAG plus explicitly flagged vertices."""
        result = []
        for v in self.node_ids():
            node = self._nodes[v]
            if node.is_artificial:
                continue
            if not self._succs[v] or node.live_out:
                result.append(v)
        return result

    def forbidden_nodes(self) -> Set[int]:
        """The forbidden set ``F`` (user-forbidden plus external inputs)."""
        return {v for v in self.node_ids() if self._nodes[v].forbidden}

    def operation_nodes(self) -> List[int]:
        """Vertices that represent actual computations."""
        return [v for v in self.node_ids() if self._nodes[v].is_operation]

    def candidate_nodes(self) -> List[int]:
        """Vertices that may belong to a cut (operations that are not forbidden)."""
        return [
            v
            for v in self.node_ids()
            if self._nodes[v].is_operation and not self._nodes[v].forbidden
        ]

    def set_forbidden(self, node_id: int, forbidden: bool = True) -> None:
        """Override the forbidden flag of an operation vertex."""
        node = self.node(node_id)
        if not forbidden and (node.is_external or node.is_artificial):
            raise GraphStructureError(
                f"vertex {node.label} is external/artificial and must stay forbidden"
            )
        node.forbidden = forbidden
        self._structural_hash = None

    def set_live_out(self, node_id: int, live_out: bool = True) -> None:
        """Flag a vertex as live outside the basic block (member of ``Oext``)."""
        self.node(node_id).live_out = live_out
        self._structural_hash = None

    # ------------------------------------------------------------------ #
    # Traversals
    # ------------------------------------------------------------------ #
    def topological_order(self) -> List[int]:
        """Vertices in a topological order (raises on cycles).

        The order is cached and invalidated whenever the graph is mutated.
        """
        if self._topo_cache is not None:
            return list(self._topo_cache)
        in_deg = [len(self._preds[v]) for v in self.node_ids()]
        ready = [v for v in self.node_ids() if in_deg[v] == 0]
        order: List[int] = []
        while ready:
            v = ready.pop()
            order.append(v)
            for succ in self._succs[v]:
                in_deg[succ] -= 1
                if in_deg[succ] == 0:
                    ready.append(succ)
        if len(order) != len(self._nodes):
            raise GraphStructureError(f"graph {self.name!r} contains a cycle")
        self._topo_cache = order
        return list(order)

    def is_dag(self) -> bool:
        """``True`` if the graph is acyclic."""
        try:
            self.topological_order()
        except GraphStructureError:
            return False
        return True

    def ancestors(self, node_id: int) -> Set[int]:
        """All vertices from which *node_id* is reachable (excluding itself)."""
        self._check_id(node_id)
        seen: Set[int] = set()
        stack = list(self._preds[node_id])
        while stack:
            v = stack.pop()
            if v in seen:
                continue
            seen.add(v)
            stack.extend(self._preds[v])
        return seen

    def descendants(self, node_id: int) -> Set[int]:
        """All vertices reachable from *node_id* (excluding itself)."""
        self._check_id(node_id)
        seen: Set[int] = set()
        stack = list(self._succs[node_id])
        while stack:
            v = stack.pop()
            if v in seen:
                continue
            seen.add(v)
            stack.extend(self._succs[v])
        return seen

    def depth(self, node_id: int) -> int:
        """Length (in edges) of the longest path from any root to *node_id*."""
        depths = self.all_depths()
        return depths[node_id]

    def all_depths(self) -> List[int]:
        """Longest-path depth of every vertex, roots having depth 0."""
        depths = [0] * len(self._nodes)
        for v in self.topological_order():
            for succ in self._succs[v]:
                if depths[v] + 1 > depths[succ]:
                    depths[succ] = depths[v] + 1
        return depths

    def critical_path_length(self) -> int:
        """Number of edges on the longest path of the DAG."""
        if not self._nodes:
            return 0
        return max(self.all_depths())

    # ------------------------------------------------------------------ #
    # Derived graphs / interop
    # ------------------------------------------------------------------ #
    def copy(self, name: Optional[str] = None) -> "DataFlowGraph":
        """Deep copy of the graph (node records are copied)."""
        clone = DataFlowGraph(name=name or self.name)
        clone._nodes = [node.copy() for node in self._nodes]
        clone._preds = [list(p) for p in self._preds]
        clone._succs = [list(s) for s in self._succs]
        clone._edge_set = set(self._edge_set)
        return clone

    def to_networkx(self) -> "nx.DiGraph":
        """Convert to a :class:`networkx.DiGraph` (node ids become nx nodes)."""
        g = nx.DiGraph(name=self.name)
        for node in self._nodes:
            g.add_node(
                node.node_id,
                opcode=node.opcode.value,
                label=node.label,
                forbidden=node.forbidden,
                live_out=node.live_out,
            )
        g.add_edges_from(self._edge_set)
        return g

    @classmethod
    def from_networkx(cls, g: "nx.DiGraph", name: Optional[str] = None) -> "DataFlowGraph":
        """Build a DFG from a networkx DiGraph.

        Node attributes ``opcode`` (string value of :class:`Opcode`),
        ``forbidden`` and ``live_out`` are honoured; nodes without an opcode
        attribute become ``ADD`` operations if they have predecessors and
        ``INPUT`` vertices otherwise.
        """
        dfg = cls(name=name or str(g.name or "dfg"))
        mapping: Dict[object, int] = {}
        for nx_node in g.nodes():
            data = g.nodes[nx_node]
            opcode_value = data.get("opcode")
            if opcode_value is None:
                opcode = Opcode.INPUT if g.in_degree(nx_node) == 0 else Opcode.ADD
            else:
                opcode = Opcode(opcode_value)
            mapping[nx_node] = dfg.add_node(
                opcode,
                name=data.get("label") or str(nx_node),
                forbidden=data.get("forbidden"),
                live_out=bool(data.get("live_out", False)),
            )
        for src, dst in g.edges():
            dfg.add_edge(mapping[src], mapping[dst])
        return dfg

    def induced_subgraph(self, vertex_ids: Iterable[int]) -> "DataFlowGraph":
        """Return the subgraph induced by *vertex_ids* (re-numbered densely)."""
        keep = sorted(set(vertex_ids))
        for v in keep:
            self._check_id(v)
        remap = {old: new for new, old in enumerate(keep)}
        sub = DataFlowGraph(name=f"{self.name}_sub")
        for old in keep:
            node = self._nodes[old]
            new_id = sub.add_node(
                node.opcode,
                name=node.name,
                forbidden=node.forbidden,
                live_out=node.live_out,
                **node.attributes,
            )
            assert new_id == remap[old]
        for src, dst in self._edge_set:
            if src in remap and dst in remap:
                sub.add_edge(remap[src], remap[dst])
        return sub

    # ------------------------------------------------------------------ #
    # Misc
    # ------------------------------------------------------------------ #
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DataFlowGraph({self.name!r}, nodes={self.num_nodes}, "
            f"edges={self.num_edges})"
        )
