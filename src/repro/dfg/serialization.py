"""JSON serialization for data-flow graphs.

The JSON schema is intentionally simple and stable so that workload suites
can be saved to disk and benchmark runs are reproducible::

    {
      "name": "crc32_step",
      "nodes": [
        {"id": 0, "opcode": "input", "name": "crc", "forbidden": true,
         "live_out": false},
        ...
      ],
      "edges": [[0, 3], [1, 3], ...]
    }
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Union

from .graph import DataFlowGraph
from .opcodes import Opcode


def graph_to_dict(graph: DataFlowGraph) -> Dict[str, object]:
    """Convert a DFG to a JSON-serialisable dictionary."""
    nodes: List[Dict[str, object]] = []
    for node in graph.nodes():
        entry: Dict[str, object] = {
            "id": node.node_id,
            "opcode": node.opcode.value,
            "forbidden": node.forbidden,
            "live_out": node.live_out,
        }
        if node.name is not None:
            entry["name"] = node.name
        if node.attributes:
            entry["attributes"] = dict(node.attributes)
        nodes.append(entry)
    return {
        "name": graph.name,
        "nodes": nodes,
        "edges": sorted(graph.edges()),
    }


def graph_from_dict(data: Dict[str, object]) -> DataFlowGraph:
    """Rebuild a DFG from the dictionary produced by :func:`graph_to_dict`."""
    graph = DataFlowGraph(name=str(data.get("name", "dfg")))
    nodes = sorted(data["nodes"], key=lambda entry: entry["id"])  # type: ignore[index]
    for expected_id, entry in enumerate(nodes):
        if entry["id"] != expected_id:
            raise ValueError(
                f"node ids must be dense: expected {expected_id}, got {entry['id']}"
            )
        node_id = graph.add_node(
            Opcode(entry["opcode"]),
            name=entry.get("name"),
            forbidden=bool(entry.get("forbidden", False)) or None
            if entry.get("forbidden") is None
            else bool(entry.get("forbidden")),
            live_out=bool(entry.get("live_out", False)),
            **entry.get("attributes", {}),
        )
        assert node_id == expected_id
    for src, dst in data["edges"]:  # type: ignore[union-attr]
        graph.add_edge(int(src), int(dst))
    return graph


def dumps(graph: DataFlowGraph, indent: int = 2) -> str:
    """Serialize *graph* to a JSON string."""
    return json.dumps(graph_to_dict(graph), indent=indent)


def loads(text: str) -> DataFlowGraph:
    """Deserialize a DFG from a JSON string."""
    return graph_from_dict(json.loads(text))


def save(graph: DataFlowGraph, path: Union[str, Path]) -> None:
    """Write *graph* to *path* as JSON."""
    Path(path).write_text(dumps(graph), encoding="utf-8")


def load(path: Union[str, Path]) -> DataFlowGraph:
    """Read a DFG from a JSON file."""
    return loads(Path(path).read_text(encoding="utf-8"))
