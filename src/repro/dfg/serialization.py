"""JSON serialization for data-flow graphs.

The JSON schema is intentionally simple and stable so that workload suites
can be saved to disk and benchmark runs are reproducible::

    {
      "version": 1,
      "name": "crc32_step",
      "nodes": [
        {"id": 0, "opcode": "input", "name": "crc", "forbidden": true,
         "live_out": false},
        ...
      ],
      "edges": [[0, 3], [1, 3], ...]
    }

The ``version`` field is the schema version, validated on load so that stored
graphs (and the memoization store built on top of them) can be migrated
safely: a graph written by a newer schema fails with a clear error instead of
being silently misread.  Dictionaries without the field are treated as
version 1 (the format predating the field).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union, cast

from .graph import DataFlowGraph
from .opcodes import Opcode

#: One node of the wire tuple: ``(opcode_value, name, forbidden, live_out,
#: attr_pairs)`` — see :func:`graph_to_wire` for the layout contract.
WireNode = Tuple[str, Optional[str], bool, bool, Tuple[Tuple[str, Any], ...]]

#: The full wire tuple: ``(WIRE_VERSION, name, nodes, edges)``.
WireGraph = Tuple[int, str, Tuple[WireNode, ...], Tuple[Tuple[int, int], ...]]

#: Version of the DFG JSON schema written by :func:`graph_to_dict`.
SCHEMA_VERSION = 1

#: Schema versions :func:`graph_from_dict` knows how to read.
SUPPORTED_SCHEMA_VERSIONS = frozenset({1})

#: Version of the compact in-memory wire format (:func:`graph_to_wire`).
WIRE_VERSION = 1

#: Statically-extracted shape of the tuple :func:`graph_to_wire` builds,
#: pinned by ``repro lint``'s wire-drift pass.  Changing the tuple layout
#: requires bumping :data:`WIRE_VERSION` and recording the new hash here —
#: old entries stay for provenance.
GRAPH_TO_WIRE_SHAPE_HISTORY: Dict[int, str] = {1: "07aa5ebe74601b5b"}


def graph_to_dict(graph: DataFlowGraph) -> Dict[str, object]:
    """Convert a DFG to a JSON-serialisable dictionary."""
    nodes: List[Dict[str, object]] = []
    for node in graph.nodes():
        entry: Dict[str, object] = {
            "id": node.node_id,
            "opcode": node.opcode.value,
            "forbidden": node.forbidden,
            "live_out": node.live_out,
        }
        if node.name is not None:
            entry["name"] = node.name
        if node.attributes:
            entry["attributes"] = dict(node.attributes)
        nodes.append(entry)
    return {
        "version": SCHEMA_VERSION,
        "name": graph.name,
        "nodes": nodes,
        "edges": sorted(graph.edges()),
    }


def graph_from_dict(data: Dict[str, object]) -> DataFlowGraph:
    """Rebuild a DFG from the dictionary produced by :func:`graph_to_dict`.

    Raises ``ValueError`` (naming the graph) when the dictionary was written
    by a schema version this build cannot read.
    """
    name = str(data.get("name", "dfg"))
    version = data.get("version", 1)
    if version not in SUPPORTED_SCHEMA_VERSIONS:
        supported = ", ".join(str(v) for v in sorted(SUPPORTED_SCHEMA_VERSIONS))
        raise ValueError(
            f"graph {name!r}: unsupported DFG schema version {version!r} "
            f"(this build reads version(s) {supported}); "
            "regenerate the file or migrate it before loading"
        )
    graph = DataFlowGraph(name=name)
    nodes = sorted(
        cast(List[Dict[str, Any]], data["nodes"]),
        key=lambda entry: cast(int, entry["id"]),
    )
    for expected_id, entry in enumerate(nodes):
        if entry["id"] != expected_id:
            raise ValueError(
                f"node ids must be dense: expected {expected_id}, got {entry['id']}"
            )
        node_id = graph.add_node(
            Opcode(entry["opcode"]),
            name=entry.get("name"),
            forbidden=bool(entry.get("forbidden", False)) or None
            if entry.get("forbidden") is None
            else bool(entry.get("forbidden")),
            live_out=bool(entry.get("live_out", False)),
            **entry.get("attributes", {}),
        )
        assert node_id == expected_id
    for src, dst in cast(List[Tuple[int, int]], data["edges"]):
        graph.add_edge(int(src), int(dst))
    return graph


# --------------------------------------------------------------------------- #
# Compact wire format (process-to-process, not for disk)
# --------------------------------------------------------------------------- #
def graph_to_wire(graph: DataFlowGraph) -> WireGraph:
    """Convert a DFG to a compact, picklable tuple.

    The wire form is the hot-path sibling of :func:`graph_to_dict`: same
    information, but plain nested tuples instead of a dictionary-of-
    dictionaries document, so shipping a graph to a batch worker costs one
    cheap pickle instead of a JSON encode/decode round-trip.  It is **not** a
    storage format — it carries no self-describing field names and its layout
    may change between versions (:data:`WIRE_VERSION` guards mismatches
    within one process tree).

    Layout::

        (WIRE_VERSION, name,
         ((opcode_value, node_name, forbidden, live_out, attr_pairs), ...),
         ((src, dst), ...))
    """
    return (
        WIRE_VERSION,
        graph.name,
        tuple(
            (
                node.opcode.value,
                node.name,
                node.forbidden,
                node.live_out,
                tuple(sorted(node.attributes.items())) if node.attributes else (),
            )
            for node in graph.nodes()
        ),
        tuple(sorted(graph.edges())),
    )


def graph_from_wire(wire: WireGraph) -> DataFlowGraph:
    """Rebuild a DFG from :func:`graph_to_wire` output."""
    version, name, nodes, edges = wire
    if version != WIRE_VERSION:
        raise ValueError(
            f"graph {name!r}: unsupported DFG wire version {version!r} "
            f"(this build speaks version {WIRE_VERSION})"
        )
    graph = DataFlowGraph(name=name)
    for opcode_value, node_name, forbidden, live_out, attr_pairs in nodes:
        graph.add_node(
            Opcode(opcode_value),
            name=node_name,
            forbidden=forbidden,
            live_out=live_out,
            **dict(attr_pairs),
        )
    for src, dst in edges:
        graph.add_edge(src, dst)
    return graph


def dumps(graph: DataFlowGraph, indent: int = 2) -> str:
    """Serialize *graph* to a JSON string."""
    return json.dumps(graph_to_dict(graph), indent=indent)


def loads(text: str) -> DataFlowGraph:
    """Deserialize a DFG from a JSON string."""
    return graph_from_dict(json.loads(text))


def save(graph: DataFlowGraph, path: Union[str, Path]) -> None:
    """Write *graph* to *path* as JSON."""
    Path(path).write_text(dumps(graph), encoding="utf-8")


def load(path: Union[str, Path]) -> DataFlowGraph:
    """Read a DFG from a JSON file."""
    return loads(Path(path).read_text(encoding="utf-8"))
