"""Streaming, fault-tolerant multi-block batch enumeration.

The paper's conclusion is that full subgraph enumeration pays off when it is
driven across *whole applications* — many basic blocks, weighted by execution
counts — inside a compiler toolchain.  :class:`BatchRunner` is that driver: it
takes a :class:`~repro.workloads.suite.WorkloadSuite` (or any iterable of
graphs / profiled blocks), enumerates every block with one registry algorithm,
and returns per-block results in input order plus aggregated statistics.

Parallel runs (``jobs >= 2``) use a ``ProcessPoolExecutor`` behind a
**streaming scheduler**: at most ``2 * jobs`` tasks are outstanding at any
moment (so million-block suites never materialize every serialized graph up
front), results are collected as they complete, and
:meth:`BatchRunner.iter_run` yields each finished :class:`BatchItem`
immediately — :meth:`BatchRunner.run` is a thin wrapper that drains the
stream and restores input order.  Graphs travel to the workers through the
stable :mod:`repro.dfg.serialization` dictionary form; workers send back cut
bit masks and counters only, and the parent rebuilds the
:class:`~repro.core.cut.Cut` objects against a locally built context, so the
results of a parallel run are bit-identical to a sequential run.  Both the
parent and each worker keep a bounded :class:`ContextCache` so repeated
enumerations of the same graph (ablation sweeps, repeated benchmark runs)
skip the context precomputation.

Timeout semantics (corrected in the streaming rewrite): a block's deadline is
measured from the moment its task actually *starts*, never from submission —
time spent waiting in the pool queue is not charged to the block.  Workers
stamp the task wall-clock time into the result payload; the parent enforces
deadlines on still-running tasks by polling the in-flight set with
``concurrent.futures.wait``.  A block that is still running at its deadline
is abandoned (``timed_out`` set, no result) and the worker pool is recycled;
a block that *completes* over budget — in sequential mode, where the run
cannot be interrupted, or in parallel mode when the result arrives late —
keeps its result and is only flagged.  When a worker process crashes
(``BrokenProcessPool``) the in-flight blocks are retried on a fresh pool:
a crash strike is charged only when the culprit is unambiguous — a sole
casualty, or exactly one block observed *running* when the pool broke —
and two strikes fail a block.  Every other casualty is requeued
penalty-free, so a poison block cannot burn an innocent neighbour's retry.
Ambiguous crashes charge no one and re-run their casualties one at a time,
which makes any repeat crash attributable; a hard per-block encounter cap
guarantees termination.

Both execution paths apply one exception policy: any ``Exception`` raised by
the algorithm is caught and recorded as ``item.error`` in the same
``"TypeName: message"`` form, so a block fails identically under ``jobs=1``
and ``jobs=2``.

When a :class:`~repro.memo.store.ResultStore` is attached, the runner
consults it *before* dispatching work — blocks whose isomorphism class was
already enumerated (under the same algorithm and request fingerprint) are
rebuilt from the stored canonical cut masks and marked ``cached`` — and
writes each freshly computed result back *as it completes*, so a crash in
the middle of a suite loses none of the work already finished, and later
runs (and runs on isomorphic blocks) become cache hits.
"""

from __future__ import annotations

import json
import time
from collections import OrderedDict, deque
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    CancelledError,
    Future,
    ProcessPoolExecutor,
    wait,
)
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
    Union,
)

from ..core.constraints import Constraints
from ..core.context import EnumerationContext
from ..core.cut import Cut
from ..core.pruning import FULL_PRUNING, PruningConfig
from ..core.stats import EnumerationResult, EnumerationStats
from ..dfg.graph import DataFlowGraph
from ..dfg.serialization import graph_from_dict, graph_to_dict
from ..memo.canon import CanonicalForm, canonical_form
from ..memo.store import ResultStore, StoredResult, request_fingerprint
from ..workloads.suite import WorkloadSuite
from .registry import DEFAULT_ALGORITHM, EnumerationRequest, get_algorithm

#: Anything the runner accepts as "a batch of blocks".
BlockLike = Union[DataFlowGraph, Tuple[DataFlowGraph, float]]
BatchInput = Union[WorkloadSuite, Iterable[BlockLike]]

#: Per-item progress hook: ``callback(item, completed, total)``.
ProgressCallback = Callable[["BatchItem", int, int], None]

#: Outstanding-task window of the streaming scheduler, as a multiple of
#: ``jobs``: enough to keep every worker busy while the parent rebuilds the
#: previous results, small enough that huge suites are serialized lazily.
WINDOW_FACTOR = 2

#: How long (seconds) to wait for the surviving futures of a broken pool to
#: settle before classifying them.
_BROKEN_POOL_DRAIN_SECONDS = 10.0

#: A block observed *running* when the pool broke is charged a crash strike
#: (it is a probable culprit); two strikes and it is marked failed.
_MAX_CRASH_CHARGES = 2

#: Hard bound on how many pool crashes any single block may witness while in
#: flight — charged or not — before it is marked failed.  Guarantees the
#: stream terminates even when crashes cannot be attributed (a worker that
#: dies before the parent ever observes its task running).
_MAX_CRASH_ENCOUNTERS = 4


class ContextCache:
    """Bounded LRU cache of :class:`EnumerationContext` objects.

    Keys combine the *structure* of the graph (its serialized dictionary
    form) with the constraints, so two graph objects with identical content
    share one context while a renamed or edited graph does not.
    """

    def __init__(self, max_entries: int = 64) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self._entries: "OrderedDict[Tuple[str, Constraints], EnumerationContext]" = (
            OrderedDict()
        )

    @staticmethod
    def fingerprint(graph: DataFlowGraph) -> str:
        """Deterministic structural key of *graph*."""
        return json.dumps(graph_to_dict(graph), sort_keys=True)

    def get(
        self,
        graph: DataFlowGraph,
        constraints: Optional[Constraints],
        fingerprint: Optional[str] = None,
    ) -> EnumerationContext:
        """Return a (possibly cached) context for *graph* under *constraints*.

        *fingerprint* may be supplied when the caller already serialized the
        graph, to avoid a second :func:`graph_to_dict` pass.
        """
        key = (fingerprint or self.fingerprint(graph), constraints or Constraints())
        cached = self._entries.get(key)
        if cached is not None:
            self.hits += 1
            self._entries.move_to_end(key)
            return cached
        self.misses += 1
        context = EnumerationContext.build(graph, constraints)
        self._entries[key] = context
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
        return context

    def __len__(self) -> int:
        return len(self._entries)


@dataclass
class BatchItem:
    """Outcome of enumerating one block of a batch."""

    index: int
    graph: DataFlowGraph
    graph_name: str
    execution_count: float = 1.0
    result: Optional[EnumerationResult] = None
    context: Optional[EnumerationContext] = None
    elapsed_seconds: float = 0.0
    timed_out: bool = False
    error: Optional[str] = None
    #: ``True`` when the result was rebuilt from the memoization store
    #: instead of being enumerated in this run.
    cached: bool = False
    #: ``True`` when the result was remapped from an isomorphic block's run
    #: (see :func:`repro.memo.dedup.enumerate_deduplicated`).
    deduplicated: bool = False

    @property
    def ok(self) -> bool:
        """``True`` when an enumeration result is available."""
        return self.result is not None


@dataclass
class BatchReport:
    """Input-ordered results of one batch run."""

    algorithm: str
    constraints: Constraints
    jobs: int
    items: List[BatchItem] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self):
        return iter(self.items)

    def results(self) -> List[EnumerationResult]:
        """The successful per-block results, in input order."""
        return [item.result for item in self.items if item.ok]

    def failures(self) -> List[BatchItem]:
        """Items that errored or timed out without a result."""
        return [item for item in self.items if not item.ok]

    def timed_out(self) -> List[BatchItem]:
        """Items flagged over budget, in input order.

        Covers both blocks abandoned at their deadline (no result) and
        blocks that completed past the budget with their result kept (the
        only possible outcome of a sequential run, which cannot be
        interrupted).
        """
        return [item for item in self.items if item.timed_out]

    def total_cuts(self) -> int:
        """Number of cuts found across all successful blocks."""
        return sum(len(item.result.cuts) for item in self.items if item.ok)

    def total_stats(self) -> EnumerationStats:
        """Aggregated search statistics of the successful blocks."""
        total = EnumerationStats()
        for item in self.items:
            if item.ok:
                total.merge(item.result.stats)
        return total

    def summary(self) -> str:
        """One-paragraph human-readable account of the run."""
        stats = self.total_stats()
        lines = [
            f"batch of {len(self.items)} block(s), algorithm {self.algorithm!r}, "
            f"jobs={self.jobs}: {self.total_cuts()} cuts "
            f"in {stats.elapsed_seconds:.3f}s of enumeration time",
        ]
        for item in self.failures():
            reason = "timed out" if item.timed_out else (item.error or "failed")
            lines.append(f"  block {item.graph_name!r}: {reason}")
        for item in self.timed_out():
            if item.ok:
                lines.append(
                    f"  block {item.graph_name!r}: exceeded the budget "
                    f"({item.elapsed_seconds:.3f}s) but completed; result kept"
                )
        return "\n".join(lines)


def normalize_blocks(blocks: BatchInput) -> List[BatchItem]:
    """Turn any accepted batch input into an ordered :class:`BatchItem` list.

    Shared by :class:`BatchRunner` and the isomorphism-deduplication driver
    (:func:`repro.memo.dedup.enumerate_deduplicated`).
    """
    if isinstance(blocks, WorkloadSuite):
        pairs = [(graph, 1.0) for graph in blocks]
    else:
        pairs = []
        for entry in blocks:
            if isinstance(entry, DataFlowGraph):
                pairs.append((entry, 1.0))
            elif isinstance(entry, tuple):
                graph, count = entry
                pairs.append((graph, float(count)))
            elif hasattr(entry, "graph"):
                # Duck-typed profile, e.g. repro.ise.pipeline.BlockProfile.
                pairs.append(
                    (entry.graph, float(getattr(entry, "execution_count", 1.0)))
                )
            else:
                raise TypeError(
                    f"cannot interpret {entry!r} as a basic block; expected a "
                    "DataFlowGraph, a (graph, execution_count) pair, or an "
                    "object with a .graph attribute"
                )
    return [
        BatchItem(
            index=index,
            graph=graph,
            graph_name=graph.name,
            execution_count=count,
        )
        for index, (graph, count) in enumerate(pairs)
    ]


# --------------------------------------------------------------------------- #
# Worker side
# --------------------------------------------------------------------------- #
#: Per-process context cache reused across the tasks a worker executes.
_worker_cache: Optional[ContextCache] = None


def _enumerate_serialized_block(
    payload: Tuple[str, Dict[str, object], Optional[Constraints], Optional[PruningConfig]],
) -> Dict[str, object]:
    """Enumerate one serialized graph inside a worker process.

    Returns a compact, picklable summary: the cut bit masks, the statistics,
    the algorithm label and the wall-clock time the task actually ran
    (``task_seconds``, measured from the worker-side start stamp — the basis
    of the parent's over-budget accounting, which must never charge queue
    wait to a block).  The parent rebuilds the ``Cut`` objects.
    """
    global _worker_cache
    task_start = time.perf_counter()
    algorithm_name, graph_dict, constraints, pruning = payload
    algorithm = get_algorithm(algorithm_name)
    graph = graph_from_dict(graph_dict)
    context = None
    if algorithm.capabilities.supports_context:
        if _worker_cache is None:
            _worker_cache = ContextCache()
        context = _worker_cache.get(graph, constraints)
    result = algorithm.enumerate(
        EnumerationRequest(
            graph=graph, constraints=constraints, pruning=pruning, context=context
        )
    )
    return {
        "graph_name": result.graph_name,
        "algorithm": result.algorithm,
        "masks": [cut.node_mask() for cut in result.cuts],
        "stats": result.stats,
        "task_seconds": time.perf_counter() - task_start,
    }


# --------------------------------------------------------------------------- #
# Runner
# --------------------------------------------------------------------------- #
class BatchRunner:
    """Enumerate many basic blocks with one registry algorithm.

    Parameters
    ----------
    algorithm:
        Registry name (or alias) of the enumeration algorithm.
    constraints:
        I/O constraints applied to every block (defaults to Nin=4, Nout=2).
    pruning:
        Optional pruning configuration; only forwarded to algorithms whose
        capabilities declare ``supports_pruning``.
    jobs:
        Number of worker processes; ``1`` (default) runs in-process.
    timeout:
        Optional per-block wall-clock budget in seconds, measured from the
        moment the block's task starts running — queue wait is never charged
        (see the module docstring for the exact semantics).
    context_cache:
        Parent-side context cache to share across runs; one is created per
        runner by default.
    store:
        Optional persistent :class:`~repro.memo.store.ResultStore`.  Blocks
        with a stored result (same canonical graph hash, algorithm and
        request fingerprint) skip enumeration entirely; fresh results are
        written back one by one as they complete.
    mp_context:
        Optional :mod:`multiprocessing` context for the worker pool (e.g.
        ``multiprocessing.get_context("fork")``); the platform default is
        used when omitted.
    """

    def __init__(
        self,
        algorithm: str = DEFAULT_ALGORITHM,
        constraints: Optional[Constraints] = None,
        pruning: Optional[PruningConfig] = None,
        jobs: int = 1,
        timeout: Optional[float] = None,
        context_cache: Optional[ContextCache] = None,
        store: Optional[ResultStore] = None,
        mp_context=None,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if timeout is not None and timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        self.algorithm = get_algorithm(algorithm).name
        self.constraints = constraints or Constraints()
        self.pruning = pruning
        self.jobs = jobs
        self.timeout = timeout
        self.cache = context_cache or ContextCache()
        self.store = store
        self.mp_context = mp_context

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def run(
        self,
        blocks: BatchInput,
        canonical_forms: Optional[List[CanonicalForm]] = None,
        progress: Optional[ProgressCallback] = None,
    ) -> BatchReport:
        """Enumerate every block and return the input-ordered report.

        Implemented on :meth:`iter_run`: the stream is drained to completion
        and the items — the same objects the generator yields — are restored
        to input order.  *canonical_forms* (store runs only) supplies
        pre-computed canonical forms, one per block in input order, to skip
        re-canonicalization; they must have been computed with this runner's
        constraints.  *progress* is invoked as ``progress(item, completed,
        total)`` after every finished block.
        """
        items = sorted(
            self.iter_run(blocks, canonical_forms=canonical_forms, progress=progress),
            key=lambda item: item.index,
        )
        return BatchReport(
            algorithm=self.algorithm,
            constraints=self.constraints,
            jobs=self.jobs,
            items=items,
        )

    def iter_run(
        self,
        blocks: BatchInput,
        canonical_forms: Optional[List[CanonicalForm]] = None,
        progress: Optional[ProgressCallback] = None,
    ) -> Iterator[BatchItem]:
        """Enumerate *blocks*, yielding each :class:`BatchItem` as it finishes.

        Items arrive in completion order (``item.index`` carries the input
        position); every input block is yielded exactly once — successes,
        cache hits, errors and timeouts alike.  With a store attached, each
        fresh result is written back *before* the item is yielded, so a
        consumer crash mid-suite never loses completed work.  *progress*, if
        given, is called as ``progress(item, completed, total)`` right before
        each item is yielded.
        """
        algorithm = get_algorithm(self.algorithm)
        # Pruning-capable algorithms treat "no pruning config" as full
        # pruning (see the registry adapters); normalizing here keeps that
        # default out of the cache key, so e.g. a `cache warm` run
        # (pruning=None) serves a later ISE run (pruning=FULL_PRUNING).
        if algorithm.capabilities.supports_pruning:
            pruning = self.pruning or FULL_PRUNING
        else:
            pruning = None
        items = normalize_blocks(blocks)
        total = len(items)
        completed = 0
        for item in self._iter_resolved(algorithm, pruning, items, canonical_forms):
            completed += 1
            if progress is not None:
                progress(item, completed, total)
            yield item

    # ------------------------------------------------------------------ #
    # Store-aware streaming
    # ------------------------------------------------------------------ #
    def _iter_resolved(
        self,
        algorithm,
        pruning: Optional[PruningConfig],
        items: List[BatchItem],
        canonical_forms: Optional[List[CanonicalForm]],
    ) -> Iterator[BatchItem]:
        """Stream *items* through the store front and the scheduler."""
        if self.store is None:
            yield from self._stream(algorithm, pruning, items)
            return

        forms: Dict[int, CanonicalForm] = {}
        if canonical_forms is not None:
            if len(canonical_forms) != len(items):
                raise ValueError(
                    f"expected {len(items)} canonical form(s), "
                    f"got {len(canonical_forms)}"
                )
            forms.update(enumerate(canonical_forms))

        # Within one run, isomorphic duplicates ride on the first copy of
        # their class: enumerate one leader per store key; as each leader
        # finishes, write it back and serve its followers from the fresh
        # entry.  Followers of a failed leader are known store misses, so
        # they are dispatched together in one trailing round (deferring them
        # one by one would serialize a parallel run).
        #
        # Store resolution is *lazy*: the scheduler pulls blocks from this
        # source as its submission window frees up, so canonicalization and
        # store probes interleave with enumeration instead of forming an
        # O(N) barrier in front of a large suite, and workers start on the
        # first miss while later blocks are still being looked up.
        followers_by_key: Dict[str, List[BatchItem]] = {}

        def classified() -> Iterator[Tuple[BatchItem, bool]]:
            for item in items:
                if not self._resolve_from_store([item], pruning, forms):
                    yield item, True  # served from the store
                    continue
                key = self._store_key(forms[item.index], pruning)
                if key in followers_by_key:
                    followers_by_key[key].append(item)
                else:
                    followers_by_key[key] = []
                    yield item, False  # leader: dispatch it

        deferred: List[BatchItem] = []
        for item in self._stream_source(algorithm, pruning, classified()):
            if item.cached:
                yield item
                continue
            self._write_back([item], pruning, forms)
            yield item
            key = self._store_key(forms[item.index], pruning)
            waiting = followers_by_key.pop(key, [])
            if not waiting:
                continue
            if item.result is None:
                deferred.extend(waiting)
                continue
            still_missing = self._resolve_from_store(waiting, pruning, forms)
            for follower in waiting:
                if follower.result is not None:
                    yield follower
            deferred.extend(still_missing)

        for item in self._stream(algorithm, pruning, deferred):
            self._write_back([item], pruning, forms)
            yield item

    # ------------------------------------------------------------------ #
    # Memoization store integration
    # ------------------------------------------------------------------ #
    def _store_key(self, form: CanonicalForm, pruning: Optional[PruningConfig]) -> str:
        return ResultStore.make_key(
            form.hash,
            self.algorithm,
            request_fingerprint(self.constraints, pruning),
        )

    def _resolve_from_store(
        self,
        items: List[BatchItem],
        pruning: Optional[PruningConfig],
        forms: Dict[int, CanonicalForm],
    ) -> List[BatchItem]:
        """Fill items with stored results; return the ones still to enumerate.

        Stored masks live in the canonical id space, so a hit produced by an
        isomorphic block remaps cleanly onto this block's vertex ids.
        """
        assert self.store is not None
        pending: List[BatchItem] = []
        for item in items:
            start = time.perf_counter()
            form = forms.get(item.index)
            if form is None:
                form = canonical_form(item.graph, self.constraints)
                forms[item.index] = form
            stored = self.store.get(self._store_key(form, pruning))
            if stored is None:
                pending.append(item)
                continue
            item.context = self.cache.get(item.graph, self.constraints)
            # Copy the stats: the stored object is shared by the store's LRU
            # front and every other hit on this key, and EnumerationStats is
            # mutated in place by merge().
            stats = EnumerationStats()
            stats.merge(stored.stats)
            item.result = EnumerationResult(
                cuts=[
                    Cut.from_mask(item.context, form.from_canonical_mask(mask))
                    for mask in stored.masks
                ],
                stats=stats,
                graph_name=item.graph_name,
                # The label the algorithm itself emitted (it may differ from
                # the registry name, e.g. "exhaustive-pruned"), so a warm run
                # reproduces the cold run's reports byte-for-byte.
                algorithm=stored.algorithm,
            )
            item.cached = True
            item.elapsed_seconds = time.perf_counter() - start
        return pending

    def _write_back(
        self,
        computed: List[BatchItem],
        pruning: Optional[PruningConfig],
        forms: Dict[int, CanonicalForm],
    ) -> None:
        """Persist the results enumerated in this run (masks in canonical ids)."""
        assert self.store is not None
        for item in computed:
            if item.result is None:
                continue
            form = forms[item.index]
            self.store.put(
                self._store_key(form, pruning),
                StoredResult(
                    canonical_hash=form.hash,
                    # The result's own label, not the registry name (see the
                    # reconstruction in _resolve_from_store).
                    algorithm=item.result.algorithm,
                    fingerprint=request_fingerprint(self.constraints, pruning),
                    masks=[
                        form.to_canonical_mask(cut.node_mask())
                        for cut in item.result.cuts
                    ],
                    stats=item.result.stats,
                ),
            )

    # ------------------------------------------------------------------ #
    # Execution paths
    # ------------------------------------------------------------------ #
    def _stream(
        self,
        algorithm,
        pruning: Optional[PruningConfig],
        items: List[BatchItem],
    ) -> Iterator[BatchItem]:
        """Yield *items* as they finish, sequentially or through the pool."""
        if not items:
            return
        yield from self._stream_source(
            algorithm, pruning, ((item, False) for item in items)
        )

    def _stream_source(
        self,
        algorithm,
        pruning: Optional[PruningConfig],
        source: Iterator[Tuple[BatchItem, bool]],
    ) -> Iterator[BatchItem]:
        """Yield blocks from a lazy ``(item, already_resolved)`` source.

        Already-resolved items (store hits) pass straight through; the rest
        are enumerated.  The source is pulled incrementally, so store
        lookups and canonicalization interleave with execution.
        """
        # jobs >= 2 goes through the pool even for a single block: only the
        # parallel path can abandon a block that blows its timeout.
        if self.jobs == 1:
            yield from self._stream_sequential(algorithm, pruning, source)
        else:
            yield from self._stream_parallel(pruning, source)

    def _stream_sequential(
        self,
        algorithm,
        pruning: Optional[PruningConfig],
        source: Iterator[Tuple[BatchItem, bool]],
    ) -> Iterator[BatchItem]:
        for item, resolved in source:
            if resolved:
                yield item
                continue
            item.context = self.cache.get(item.graph, self.constraints)
            context = item.context if algorithm.capabilities.supports_context else None
            start = time.perf_counter()
            try:
                item.result = algorithm.enumerate(
                    EnumerationRequest(
                        graph=item.graph,
                        constraints=self.constraints,
                        pruning=pruning,
                        context=context,
                    )
                )
            except Exception as exc:  # same policy as the parallel path
                item.error = f"{type(exc).__name__}: {exc}"
            item.elapsed_seconds = time.perf_counter() - start
            if self.timeout is not None and item.elapsed_seconds > self.timeout:
                # The run cannot be interrupted in-process; keep the result,
                # flag the overrun.
                item.timed_out = True
            yield item

    def _stream_parallel(
        self,
        pruning: Optional[PruningConfig],
        source: Iterator[Tuple[BatchItem, bool]],
    ) -> Iterator[BatchItem]:
        """The streaming scheduler (see the module docstring).

        Bounded submission window over a lazily pulled source, as-completed
        collection, per-task deadlines measured from actual task start,
        retry on a crashed worker (strikes charged to the blocks observed
        running when the pool broke), pool recycling when a deadline fires
        (a running task cannot be cancelled cooperatively, so its worker
        must die).
        """
        window = max(WINDOW_FACTOR * self.jobs, 2)
        retry: "deque[BatchItem]" = deque()  # crash/timeout resubmissions
        staged: "deque[BatchItem]" = deque()  # pulled misses awaiting capacity
        crash_charges: Dict[int, int] = {}  # strikes: observed-running crashes
        crash_encounters: Dict[int, int] = {}  # any crash witnessed in flight
        in_flight: Dict[Future, Tuple[BatchItem, str]] = {}
        started: Dict[Future, float] = {}  # first observed running, monotonic
        ready: List[BatchItem] = []  # store hits pulled from the source
        exhausted = False
        # Remaining tasks to run one-at-a-time after an *unattributable*
        # crash (nobody was observed running): isolation makes any repeat
        # crash attributable, so innocents keep their clean record.
        quarantine = 0
        pool = self._new_pool()
        try:
            while True:
                # Top up the submission window, pulling the source lazily:
                # at most `window` source pulls per iteration and `window`
                # staged misses (plus the in-flight tasks) exist at a time,
                # so million-block suites are never materialized up front.
                pulls = 0
                limit = 1 if quarantine else window
                while True:
                    if retry and len(in_flight) < limit:
                        item = retry.popleft()
                    elif staged and len(in_flight) < limit:
                        item = staged.popleft()
                    elif (
                        not exhausted and pulls < window and len(staged) < window
                    ):
                        entry = next(source, None)
                        if entry is None:
                            exhausted = True
                            continue
                        item, resolved = entry
                        pulls += 1
                        if resolved:
                            ready.append(item)
                            continue
                        if len(in_flight) >= limit:
                            # No capacity yet: park the miss so the source
                            # can keep serving store hits behind it.
                            staged.append(item)
                            continue
                    else:
                        break
                    graph_dict = graph_to_dict(item.graph)
                    try:
                        future = pool.submit(
                            _enumerate_serialized_block,
                            (self.algorithm, graph_dict, self.constraints, pruning),
                        )
                    except BrokenExecutor:
                        # The pool broke before we noticed; the in-flight
                        # futures (if any) surface the crash below.
                        retry.appendleft(item)
                        break
                    in_flight[future] = (item, json.dumps(graph_dict, sort_keys=True))

                if ready:
                    for item in ready:
                        yield item
                    ready.clear()
                    if pulls >= window and not exhausted:
                        # The pull cap — not capacity — ended the top-up: a
                        # run of store hits is flowing.  Keep draining it
                        # instead of blocking on the in-flight tasks.
                        continue

                if not in_flight:
                    if retry:  # broken pool with nothing left in flight
                        pool.shutdown(wait=False, cancel_futures=True)
                        pool = self._new_pool()
                        continue
                    if exhausted and not staged:
                        break
                    continue  # source (or the staged misses) still has blocks

                tick = (
                    None
                    if self.timeout is None
                    else max(min(self.timeout / 10.0, 0.1), 0.005)
                )
                done, _ = wait(list(in_flight), timeout=tick, return_when=FIRST_COMPLETED)

                # (item, was_observed_running) casualties of a broken pool.
                crashed: List[Tuple[BatchItem, bool]] = []
                for future in done:
                    item, fingerprint = in_flight.pop(future)
                    was_running = started.pop(future, None) is not None
                    finished = self._collect(future, item, fingerprint)
                    if finished is None:
                        crashed.append((item, was_running))
                    else:
                        quarantine = max(quarantine - 1, 0)
                        yield finished

                if crashed:
                    # The pool is broken: every other in-flight future fails
                    # with it.  Drain them (already-computed results survive),
                    # then rebuild the pool and retry the casualties.
                    if in_flight:
                        wait(list(in_flight), timeout=_BROKEN_POOL_DRAIN_SECONDS)
                        for future, (item, fingerprint) in list(in_flight.items()):
                            was_running = started.pop(future, None) is not None
                            finished = self._collect(future, item, fingerprint)
                            if finished is None:
                                crashed.append((item, was_running))
                            else:
                                yield finished
                        in_flight.clear()
                        started.clear()
                    pool.shutdown(wait=False, cancel_futures=True)
                    failed, isolate = self._triage_crash(
                        crashed, retry, crash_charges, crash_encounters
                    )
                    for item in failed:
                        quarantine = max(quarantine - 1, 0)
                        yield item
                    quarantine += isolate
                    if retry or not exhausted:
                        pool = self._new_pool()
                    continue

                if not in_flight:
                    continue

                # Stamp a task when it is first observed running, capped at
                # `jobs` stamps so the executor's one-deep call-queue buffer
                # is never treated as executing.  The stamps drive both the
                # deadline accounting and the crash attribution above.
                now = time.monotonic()
                for future in in_flight:
                    if (
                        future not in started
                        and len(started) < self.jobs
                        and future.running()
                    ):
                        started[future] = now

                if self.timeout is None:
                    continue
                expired = [
                    future
                    for future, stamp in started.items()
                    if now - stamp >= self.timeout and not future.done()
                ]
                if not expired:
                    continue
                for future in expired:
                    item, _ = in_flight.pop(future)
                    stamp = started.pop(future)
                    item.timed_out = True
                    item.elapsed_seconds = now - stamp
                    quarantine = max(quarantine - 1, 0)
                    yield item
                # A running task cannot be cancelled cooperatively: kill the
                # workers and rebuild the pool.  Innocent in-flight blocks
                # are resubmitted with no crash penalty (results that landed
                # between the wait() and now are kept as-is).
                survivors: List[BatchItem] = []
                for future, (item, fingerprint) in list(in_flight.items()):
                    if future.done():
                        finished = self._collect(future, item, fingerprint)
                        if finished is not None:
                            quarantine = max(quarantine - 1, 0)
                            yield finished
                            continue
                    survivors.append(item)
                in_flight.clear()
                started.clear()
                self._kill_pool(pool)
                retry.extendleft(reversed(survivors))
                pool = self._new_pool()
        finally:
            if in_flight:
                # The consumer abandoned the stream with tasks still running.
                self._kill_pool(pool)
            else:
                pool.shutdown(wait=True, cancel_futures=True)

    @staticmethod
    def _triage_crash(
        crashed: List[Tuple[BatchItem, bool]],
        retry: "deque[BatchItem]",
        charges: Dict[int, int],
        encounters: Dict[int, int],
    ) -> Tuple[List[BatchItem], int]:
        """Requeue or fail the casualties of one broken-pool event.

        A strike (*charges*) is issued only when the culprit is unambiguous:
        the event had a sole casualty, or exactly one block was observed
        *running* when the pool broke.  Everyone else is requeued
        penalty-free, so one poison block can never burn an innocent
        neighbour's retry — not even a slow innocent running right next to
        it.  Ambiguous crashes (zero or several blocks observed running)
        charge nobody and requeue the casualties for *isolated* re-runs —
        the second number returned — so a repeat crash has exactly one
        suspect.  The *encounters* cap bounds the worst case per block, so
        the stream always terminates.  Returns the items whose error was
        just sealed, plus the quarantine count.
        """
        suspects = sum(1 for _, was_running in crashed if was_running)
        attributable = len(crashed) == 1 or suspects == 1
        failed: List[BatchItem] = []
        requeued: List[BatchItem] = []
        for item, was_running in crashed:
            encounters[item.index] = encounters.get(item.index, 0) + 1
            if attributable and (was_running or len(crashed) == 1):
                charges[item.index] = charges.get(item.index, 0) + 1
            if charges.get(item.index, 0) >= _MAX_CRASH_CHARGES:
                item.error = (
                    "BrokenProcessPool: worker process crashed "
                    f"{_MAX_CRASH_CHARGES} times while running this block"
                )
                failed.append(item)
            elif encounters[item.index] >= _MAX_CRASH_ENCOUNTERS:
                item.error = (
                    "BrokenProcessPool: worker pool crashed "
                    f"{_MAX_CRASH_ENCOUNTERS} times with this block in flight"
                )
                failed.append(item)
            else:
                requeued.append(item)
        retry.extendleft(reversed(requeued))
        return failed, (0 if attributable else len(requeued))

    def _collect(
        self,
        future: Future,
        item: BatchItem,
        fingerprint: str,
    ) -> Optional[BatchItem]:
        """Turn a finished future into its item, or report a worker death.

        Returns the item when it is ready to be yielded (success, worker
        error, or completed-over-budget), ``None`` when the worker died and
        the caller must triage the item for the crash-retry pass.
        """
        try:
            payload = future.result(timeout=0)
        except (BrokenExecutor, CancelledError, FuturesTimeoutError):
            return None
        except Exception as exc:  # worker-side failure, e.g. oracle limit
            item.error = f"{type(exc).__name__}: {exc}"
            return item
        item.context = self.cache.get(
            item.graph, self.constraints, fingerprint=fingerprint
        )
        item.result = EnumerationResult(
            cuts=[Cut.from_mask(item.context, mask) for mask in payload["masks"]],
            stats=payload["stats"],
            graph_name=payload["graph_name"],
            algorithm=payload["algorithm"],
        )
        item.elapsed_seconds = payload["stats"].elapsed_seconds
        if (
            self.timeout is not None
            and float(payload.get("task_seconds", 0.0)) > self.timeout
        ):
            # Completed over budget between two scheduler ticks: keep the
            # result, flag the overrun — identical to sequential semantics.
            item.timed_out = True
        return item

    def _new_pool(self) -> ProcessPoolExecutor:
        # max_workers is a cap: the executor spawns workers on demand, so a
        # jobs-sized pool never over-provisions for a short queue.
        return ProcessPoolExecutor(
            max_workers=self.jobs, mp_context=self.mp_context
        )

    @staticmethod
    def _kill_pool(pool: ProcessPoolExecutor) -> None:
        # A timed-out task cannot be cancelled cooperatively, and a worker
        # stuck in it would also block interpreter exit (the executor joins
        # its workers atexit) — kill the processes.
        workers = list((getattr(pool, "_processes", None) or {}).values())
        pool.shutdown(wait=False, cancel_futures=True)
        for process in workers:
            process.terminate()


def enumerate_batch(
    blocks: BatchInput,
    algorithm: str = DEFAULT_ALGORITHM,
    constraints: Optional[Constraints] = None,
    pruning: Optional[PruningConfig] = None,
    jobs: int = 1,
    timeout: Optional[float] = None,
) -> BatchReport:
    """One-shot convenience wrapper around :class:`BatchRunner`."""
    runner = BatchRunner(
        algorithm=algorithm,
        constraints=constraints,
        pruning=pruning,
        jobs=jobs,
        timeout=timeout,
    )
    return runner.run(blocks)
