"""Streaming, fault-tolerant multi-block batch enumeration.

The paper's conclusion is that full subgraph enumeration pays off when it is
driven across *whole applications* — many basic blocks, weighted by execution
counts — inside a compiler toolchain.  :class:`BatchRunner` is that driver: it
takes a :class:`~repro.workloads.suite.WorkloadSuite` (or any iterable of
graphs / profiled blocks), enumerates every block with one registry algorithm,
and returns per-block results in input order plus aggregated statistics.

Parallel runs (``jobs >= 2``, ``jobs="auto"``, or ``force_pool=True``) use a
**persistent** ``ProcessPoolExecutor`` behind a streaming scheduler.  Three
design decisions make the pool actually win against sub-40ms enumerations
from the paper's polynomial-time enumerator:

* **Worker-resident state.**  Each worker process keeps a bounded registry of
  deserialized graphs keyed by the parent's structural fingerprint, plus a
  :class:`ContextCache` of prepared :class:`EnumerationContext` objects.  A
  graph is shipped and deserialized once per worker, not once per block;
  subsequent tasks refer to it by fingerprint only.  The parent tracks how
  many copies of each graph it has shipped and stops attaching the graph
  body once every worker can have seen it; a worker that nevertheless misses
  a graph (registry eviction, unlucky task routing) reports ``missing`` and
  the block is resubmitted with the body attached.
* **Size-binned chunked dispatch.**  Blocks are binned by node count
  (:data:`CHUNK_BIN_NODE_WIDTH` nodes per bin) and many same-bin blocks
  travel in one task (up to :data:`MAX_CHUNK_BLOCKS`), so the per-task
  executor overhead — pickling, queue wakeups, future bookkeeping — is
  amortized across a chunk whose runtime stays predictable.  Workers stamp
  per-block ``task_seconds`` inside the chunk, so over-budget accounting
  stays per-block.
* **Compact wire format.**  Graphs travel as plain nested tuples
  (:func:`~repro.dfg.serialization.graph_to_wire`), and workers send back cut
  bit masks and counters only — no JSON encode/decode anywhere on the hot
  path.  The parent rebuilds the :class:`~repro.core.cut.Cut` objects
  against a locally built context, so the results of a parallel run are
  bit-identical to a sequential run.

The scheduler streams: at most ``2 * jobs`` chunks are outstanding at any
moment (so million-block suites never materialize every serialized graph up
front), results are collected as they complete, and
:meth:`BatchRunner.iter_run` yields each finished :class:`BatchItem`
immediately — :meth:`BatchRunner.run` is a thin wrapper that drains the
stream and restores input order.

Timeout semantics: a block's deadline is measured from the moment its task
actually *starts*, never from submission — time spent waiting in the pool
queue is not charged to the block.  A chunk of ``k`` blocks gets a combined
``k * timeout`` running deadline; a multi-block chunk that blows it is
re-split into single-block tasks (penalty-free) so the slow block is isolated
and charged individually, exactly like a chunk of one.  A single block still
running at its deadline is abandoned (``timed_out`` set, no result) and the
worker pool is recycled; a block that *completes* over budget — measured by
its own worker-side ``task_seconds`` stamp, even mid-chunk — keeps its result
and is only flagged, matching sequential runs (which cannot be interrupted).

When a worker process crashes (``BrokenProcessPool``) the in-flight chunks
are retried on a fresh pool.  A crash strike is charged only when the culprit
is unambiguous — a sole single-block casualty, or exactly one single-block
task observed *running* when the pool broke — and two strikes fail a block.
Any crash event involving a multi-block chunk is inherently ambiguous: every
casualty is re-split into single-block tasks and re-run one at a time
(quarantine), penalty-free, which makes any repeat crash attributable.  A
hard per-block encounter cap guarantees termination either way.

Both execution paths apply one exception policy: any ``Exception`` raised by
the algorithm is caught and recorded as ``item.error`` in the same
``"TypeName: message"`` form, so a block fails identically under ``jobs=1``
and ``jobs=2``.

When a :class:`~repro.memo.store.ResultStore` is attached, the runner
consults it *before* dispatching work — blocks whose isomorphism class was
already enumerated (under the same algorithm and request fingerprint) are
rebuilt from the stored canonical cut masks and marked ``cached`` — and
writes freshly computed results back chunk by chunk as they complete (one
:meth:`~repro.memo.store.ResultStore.put_many` call per finished chunk), so
a crash in the middle of a suite loses none of the work already finished,
and later runs (and runs on isomorphic blocks) become cache hits.

The pool is owned by the runner and survives across :meth:`BatchRunner.run`
calls, so repeated runs (sweeps, benchmark loops, services) pay the worker
spawn cost once; :meth:`BatchRunner.warm_pool` pre-spawns the workers
explicitly and :meth:`BatchRunner.close` (or using the runner as a context
manager) releases them.
"""

from __future__ import annotations

import os
import time
from collections import OrderedDict, deque
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    CancelledError,
    Future,
    ProcessPoolExecutor,
    TimeoutError as FuturesTimeoutError,
    wait,
)
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
    Union,
)

from ..core.constraints import Constraints
from ..core.context import EnumerationContext
from ..core.cut import Cut
from ..core.pruning import FULL_PRUNING, PruningConfig
from ..core.stats import EnumerationResult, EnumerationStats
from ..dfg.graph import DataFlowGraph
from ..dfg.serialization import graph_from_wire, graph_to_wire
from ..memo.canon import CanonicalForm, canonical_form
from ..memo.insearch import InSearchMemo
from ..memo.store import ResultStore, StoredResult, request_fingerprint
from ..obs import runtime as obs
from ..workloads.suite import WorkloadSuite
from .registry import DEFAULT_ALGORITHM, EnumerationRequest, get_algorithm

#: Anything the runner accepts as "a batch of blocks".
BlockLike = Union[DataFlowGraph, Tuple[DataFlowGraph, float]]
BatchInput = Union[WorkloadSuite, Iterable[BlockLike]]

#: Per-item progress hook: ``callback(item, completed, total)``.
ProgressCallback = Callable[["BatchItem", int, int], None]

#: Outstanding-task window of the streaming scheduler, as a multiple of
#: ``jobs``: enough to keep every worker busy while the parent rebuilds the
#: previous results, small enough that huge suites are serialized lazily.
WINDOW_FACTOR = 2

#: Width (in nodes) of one chunk size bin: blocks whose node counts fall in
#: the same bin may share a chunk, so chunk runtimes stay predictable.
CHUNK_BIN_NODE_WIDTH = 8

#: Hard cap on blocks per chunk, whatever the auto sizing says.
MAX_CHUNK_BLOCKS = 16

#: Auto chunk sizing targets about this many chunks per worker, so the
#: streaming window keeps every worker busy while chunks stay small enough
#: for timely completion-order yielding.
CHUNK_TARGET_PER_WORKER = 3

#: Bound on the per-worker graph registry (graphs kept deserialized in each
#: worker process, keyed by structural fingerprint).
WORKER_GRAPH_REGISTRY_LIMIT = 256

#: How long (seconds) to wait for the surviving futures of a broken pool to
#: settle before classifying them.
_BROKEN_POOL_DRAIN_SECONDS = 10.0

#: A block observed *running* when the pool broke is charged a crash strike
#: (it is a probable culprit); two strikes and it is marked failed.
_MAX_CRASH_CHARGES = 2

#: Hard bound on how many pool crashes any single block may witness while in
#: flight — charged or not — before it is marked failed.  Guarantees the
#: stream terminates even when crashes cannot be attributed (a worker that
#: dies before the parent ever observes its task running).
_MAX_CRASH_ENCOUNTERS = 4


def resolve_jobs(jobs: Union[int, str]) -> int:
    """Resolve a ``jobs`` argument (an int or ``"auto"``) to a worker count.

    ``"auto"`` maps to ``os.cpu_count()``; on a single-core machine (or when
    the count is unknown) that is 1, so the losing pool is never spawned
    silently.  Integers are validated (must be >= 1) and passed through.
    """
    if isinstance(jobs, str):
        if jobs != "auto":
            raise ValueError(f'jobs must be a positive integer or "auto", got {jobs!r}')
        return max(1, os.cpu_count() or 1)
    count = int(jobs)
    if count < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return count


class ContextCache:
    """Bounded LRU cache of :class:`EnumerationContext` objects.

    Keys combine the *structure* of the graph — its cached
    :meth:`~repro.dfg.graph.DataFlowGraph.structural_hash` — with the
    constraints, so two graph objects with identical content share one
    context while a renamed or edited graph does not.
    """

    def __init__(
        self,
        max_entries: int = 64,
        side: str = "parent",
        insearch_memo: Optional[InSearchMemo] = None,
    ) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        #: Which end of the pool this cache serves ("parent" or "worker") —
        #: the ``side`` label of its observability counters.
        self.side = side
        self.hits = 0
        self.misses = 0
        #: The in-search memo shared by every context this cache serves.  It
        #: outlives the contexts themselves: a context evicted and rebuilt
        #: re-attaches to the same memo, and same-shape blocks land in the
        #: same memo domain regardless of which context they ran under.
        self.insearch = insearch_memo or InSearchMemo()
        self._entries: "OrderedDict[Tuple[str, Constraints], EnumerationContext]" = (
            OrderedDict()
        )

    @staticmethod
    def fingerprint(graph: DataFlowGraph) -> str:
        """Deterministic structural key of *graph* (cached on the graph)."""
        return graph.structural_hash()

    def get(
        self,
        graph: DataFlowGraph,
        constraints: Optional[Constraints],
        fingerprint: Optional[str] = None,
    ) -> EnumerationContext:
        """Return a (possibly cached) context for *graph* under *constraints*.

        *fingerprint* may be supplied when the caller already fingerprinted
        the graph, to skip even the cached-hash lookup.
        """
        key = (fingerprint or self.fingerprint(graph), constraints or Constraints())
        cached = self._entries.get(key)
        if cached is not None:
            self.hits += 1
            obs.metrics().inc("context_cache.hits_total", side=self.side)
            self._entries.move_to_end(key)
            cached.insearch_memo = self.insearch
            return cached
        self.misses += 1
        obs.metrics().inc("context_cache.misses_total", side=self.side)
        context = EnumerationContext.build(graph, constraints)
        context.insearch_memo = self.insearch
        self._entries[key] = context
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
        return context

    def __len__(self) -> int:
        return len(self._entries)


@dataclass
class BatchItem:
    """Outcome of enumerating one block of a batch."""

    index: int
    graph: DataFlowGraph
    graph_name: str
    execution_count: float = 1.0
    result: Optional[EnumerationResult] = None
    context: Optional[EnumerationContext] = None
    elapsed_seconds: float = 0.0
    timed_out: bool = False
    error: Optional[str] = None
    #: ``True`` when the result was rebuilt from the memoization store
    #: instead of being enumerated in this run.
    cached: bool = False
    #: ``True`` when the result was remapped from an isomorphic block's run
    #: (see :func:`repro.memo.dedup.enumerate_deduplicated`).
    deduplicated: bool = False

    @property
    def ok(self) -> bool:
        """``True`` when an enumeration result is available."""
        return self.result is not None


@dataclass
class BatchReport:
    """Input-ordered results of one batch run."""

    algorithm: str
    constraints: Constraints
    jobs: int
    items: List[BatchItem] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self):
        return iter(self.items)

    def results(self) -> List[EnumerationResult]:
        """The successful per-block results, in input order."""
        return [item.result for item in self.items if item.ok]

    def failures(self) -> List[BatchItem]:
        """Items that errored or timed out without a result."""
        return [item for item in self.items if not item.ok]

    def timed_out(self) -> List[BatchItem]:
        """Items flagged over budget, in input order.

        Covers both blocks abandoned at their deadline (no result) and
        blocks that completed past the budget with their result kept (the
        only possible outcome of a sequential run, which cannot be
        interrupted).
        """
        return [item for item in self.items if item.timed_out]

    def total_cuts(self) -> int:
        """Number of cuts found across all successful blocks."""
        return sum(len(item.result.cuts) for item in self.items if item.ok)

    def total_stats(self) -> EnumerationStats:
        """Aggregated search statistics of the successful blocks."""
        total = EnumerationStats()
        for item in self.items:
            if item.ok:
                total.merge(item.result.stats)
        return total

    def summary(self) -> str:
        """One-paragraph human-readable account of the run."""
        stats = self.total_stats()
        lines = [
            f"batch of {len(self.items)} block(s), algorithm {self.algorithm!r}, "
            f"jobs={self.jobs}: {self.total_cuts()} cuts "
            f"in {stats.elapsed_seconds:.3f}s of enumeration time",
        ]
        for item in self.failures():
            reason = "timed out" if item.timed_out else (item.error or "failed")
            lines.append(f"  block {item.graph_name!r}: {reason}")
        for item in self.timed_out():
            if item.ok:
                lines.append(
                    f"  block {item.graph_name!r}: exceeded the budget "
                    f"({item.elapsed_seconds:.3f}s) but completed; result kept"
                )
        return "\n".join(lines)


def normalize_blocks(blocks: BatchInput) -> List[BatchItem]:
    """Turn any accepted batch input into an ordered :class:`BatchItem` list.

    Shared by :class:`BatchRunner` and the isomorphism-deduplication driver
    (:func:`repro.memo.dedup.enumerate_deduplicated`).
    """
    if isinstance(blocks, WorkloadSuite):
        pairs = [(graph, 1.0) for graph in blocks]
    else:
        pairs = []
        for entry in blocks:
            if isinstance(entry, DataFlowGraph):
                pairs.append((entry, 1.0))
            elif isinstance(entry, tuple):
                graph, count = entry
                pairs.append((graph, float(count)))
            elif hasattr(entry, "graph"):
                # Duck-typed profile, e.g. repro.ise.pipeline.BlockProfile.
                pairs.append(
                    (entry.graph, float(getattr(entry, "execution_count", 1.0)))
                )
            else:
                raise TypeError(
                    f"cannot interpret {entry!r} as a basic block; expected a "
                    "DataFlowGraph, a (graph, execution_count) pair, or an "
                    "object with a .graph attribute"
                )
    return [
        BatchItem(
            index=index,
            graph=graph,
            graph_name=graph.name,
            execution_count=count,
        )
        for index, (graph, count) in enumerate(pairs)
    ]


def _size_bin(graph: DataFlowGraph) -> int:
    """The chunking size bin of *graph* (node count bucket)."""
    return graph.num_nodes // CHUNK_BIN_NODE_WIDTH


# --------------------------------------------------------------------------- #
# Worker side
# --------------------------------------------------------------------------- #
#: Per-process context cache reused across the tasks a worker executes.
_worker_cache: Optional[ContextCache] = None

#: Per-process registry of deserialized graphs, keyed by the parent's
#: structural fingerprint.  Bounded LRU: a graph is deserialized once per
#: worker and then referenced by fingerprint for the rest of the pool's life.
_worker_graphs: "OrderedDict[str, DataFlowGraph]" = OrderedDict()


#: Statically-extracted shape of the chunk result records produced by
#: :func:`_enumerate_chunk` (every appended dict plus the return
#: expressions), pinned by ``repro lint``'s wire-drift pass.  Changing the
#: record layout requires bumping ``_ENUMERATE_CHUNK_SHAPE_VERSION`` and
#: recording the new hash here — old entries stay for provenance.
_ENUMERATE_CHUNK_SHAPE_VERSION = 1
_ENUMERATE_CHUNK_SHAPE_HISTORY = {1: "dda190e6e754a264"}


# repro-lint: worker-entry
def _worker_ping(seconds: float) -> int:
    """Warm-up task: occupy a worker briefly so the pool actually spawns."""
    time.sleep(seconds)
    return os.getpid()


# repro-lint: worker-entry
def _enumerate_chunk(
    payload: Tuple[
        str,
        Optional[Constraints],
        Optional[PruningConfig],
        Tuple[Tuple[str, Optional[tuple]], ...],
        Optional[Tuple[str, int]],
    ],
) -> Union[List[Dict[str, object]], Dict[str, object]]:
    """Enumerate one chunk of blocks inside a worker process.

    ``payload`` is ``(algorithm_name, constraints, pruning, blocks,
    obs_config)`` where each block is ``(fingerprint, wire_or_None)`` — the
    wire form is attached only when the parent believes this worker may not
    have seen the graph yet; otherwise the worker resolves the fingerprint
    in its registry.  ``obs_config`` is the parent's observability
    activation (see :func:`repro.obs.runtime.ensure_worker`); payloads from
    older callers may omit it.

    Returns one compact, picklable summary per block, aligned with the
    input: cut bit masks, statistics, algorithm label and the wall-clock
    time the block actually ran (``task_seconds``, stamped per block *inside*
    the chunk — the basis of the parent's over-budget accounting, which must
    never charge queue wait or a sibling block's runtime to a block).  A
    block whose graph is neither attached nor registered yields
    ``{"missing": True}`` and the parent resubmits it with the body; a block
    whose enumeration raises yields an ``{"error": ...}`` record without
    poisoning its siblings.

    With observability on, the per-block list is wrapped as
    ``{"results": [...], "metrics": <wire>, "spans": <wire>}`` — the
    worker's drained metric/span deltas ride back inside the chunk result
    and are folded in by the parent's :meth:`BatchRunner._collect_chunk`.
    """
    global _worker_cache
    algorithm_name, constraints, pruning, blocks = payload[:4]
    obs.ensure_worker(payload[4] if len(payload) > 4 else None)
    algorithm = get_algorithm(algorithm_name)
    results: List[Dict[str, object]] = []
    tracer = obs.tracer()
    with tracer.span("worker.chunk", cat="pool", blocks=len(blocks)):
        for fingerprint, wire in blocks:
            task_start = time.perf_counter()
            graph = _worker_graphs.get(fingerprint)
            if graph is None:
                if wire is None:
                    results.append({"missing": True})
                    continue
                graph = graph_from_wire(wire)
                _worker_graphs[fingerprint] = graph
                while len(_worker_graphs) > WORKER_GRAPH_REGISTRY_LIMIT:
                    _worker_graphs.popitem(last=False)
            else:
                _worker_graphs.move_to_end(fingerprint)
            try:
                with tracer.span("worker.block", cat="pool", graph=graph.name) as span:
                    context = None
                    if algorithm.capabilities.supports_context:
                        if _worker_cache is None:
                            _worker_cache = ContextCache(side="worker")
                        context = _worker_cache.get(
                            graph, constraints, fingerprint=fingerprint
                        )
                    result = algorithm.enumerate(
                        EnumerationRequest(
                            graph=graph,
                            constraints=constraints,
                            pruning=pruning,
                            context=context,
                        )
                    )
                    span.note(cuts=len(result.cuts))
            except Exception as exc:  # same policy as the sequential path
                results.append(
                    {
                        "error": f"{type(exc).__name__}: {exc}",
                        "task_seconds": time.perf_counter() - task_start,
                    }
                )
                continue
            results.append(
                {
                    "graph_name": result.graph_name,
                    "algorithm": result.algorithm,
                    "masks": [cut.node_mask() for cut in result.cuts],
                    "stats": result.stats,
                    "task_seconds": time.perf_counter() - task_start,
                }
            )
    drained = obs.drain_worker()
    if drained:
        return {"results": results, **drained}
    return results


class _WorkerPool:
    """A ``ProcessPoolExecutor`` plus its graph-shipping ledger.

    The ledger tracks, per structural fingerprint, how many task payloads
    carried the graph body to this pool.  Once ``jobs`` copies have shipped,
    every worker *may* have registered the graph, so further chunks refer to
    it by fingerprint alone; ``must_ship`` pins fingerprints a worker
    reported missing (eviction or unlucky routing), forcing the body onto
    every later shipment.  The ledger dies with the pool — fresh workers
    have empty registries.
    """

    def __init__(self, executor: ProcessPoolExecutor, jobs: int) -> None:
        self.executor = executor
        self.jobs = jobs
        self.shipped: Dict[str, int] = {}
        self.must_ship: Set[str] = set()
        #: Set once the executor is shut down; a dead pool is never reused.
        self.dead = False

    def submit_chunk(
        self,
        algorithm: str,
        constraints: Optional[Constraints],
        pruning: Optional[PruningConfig],
        chunk: List[BatchItem],
    ) -> Future:
        metrics = obs.metrics()
        blocks = []
        for item in chunk:
            fingerprint = item.graph.structural_hash()
            shipped_before = self.shipped.get(fingerprint, 0)
            ship = fingerprint in self.must_ship or shipped_before < self.jobs
            if ship:
                self.shipped[fingerprint] = shipped_before + 1
                metrics.inc("pool.graphs_shipped_total")
                if shipped_before >= self.jobs:
                    # Every worker could have seen this graph and one still
                    # reported it missing — an eviction- or routing-driven
                    # re-ship, worth watching separately.
                    metrics.inc("pool.graph_reships_total")
            blocks.append(
                (fingerprint, graph_to_wire(item.graph) if ship else None)
            )
        metrics.inc("pool.chunks_dispatched_total")
        metrics.inc("pool.blocks_dispatched_total", len(blocks))
        return self.executor.submit(
            _enumerate_chunk,
            (algorithm, constraints, pruning, tuple(blocks), obs.worker_config()),
        )

    def discard(self) -> None:
        """Shut the executor down without waiting (crashed-pool path)."""
        self.dead = True
        self.executor.shutdown(wait=False, cancel_futures=True)

    def kill(self) -> None:
        """Terminate the worker processes outright (timeout path).

        A timed-out task cannot be cancelled cooperatively, and a worker
        stuck in it would also block interpreter exit (the executor joins
        its workers atexit) — kill the processes.
        """
        self.dead = True
        workers = list((getattr(self.executor, "_processes", None) or {}).values())
        self.executor.shutdown(wait=False, cancel_futures=True)
        for process in workers:
            process.terminate()

    def shutdown(self) -> None:
        """Orderly release (idle pool)."""
        self.dead = True
        self.executor.shutdown(wait=True, cancel_futures=True)


# --------------------------------------------------------------------------- #
# Runner
# --------------------------------------------------------------------------- #
class BatchRunner:
    """Enumerate many basic blocks with one registry algorithm.

    Parameters
    ----------
    algorithm:
        Registry name (or alias) of the enumeration algorithm.
    constraints:
        I/O constraints applied to every block (defaults to Nin=4, Nout=2).
    pruning:
        Optional pruning configuration; only forwarded to algorithms whose
        capabilities declare ``supports_pruning``.
    jobs:
        Number of worker processes, or ``"auto"`` for ``os.cpu_count()``
        (clamped to 1 on a single-core machine); ``1`` (default) runs
        in-process.
    timeout:
        Optional per-block wall-clock budget in seconds, measured from the
        moment the block's task starts running — queue wait is never charged
        (see the module docstring for the exact semantics).
    context_cache:
        Parent-side context cache to share across runs; one is created per
        runner by default.
    store:
        Optional persistent :class:`~repro.memo.store.ResultStore`.  Blocks
        with a stored result (same canonical graph hash, algorithm and
        request fingerprint) skip enumeration entirely; fresh results are
        written back chunk by chunk as they complete.
    mp_context:
        Optional :mod:`multiprocessing` context for the worker pool (e.g.
        ``multiprocessing.get_context("fork")``); the platform default is
        used when omitted.
    chunk_size:
        Blocks per dispatched task: ``"auto"`` (default) targets
        :data:`CHUNK_TARGET_PER_WORKER` chunks per worker capped at
        :data:`MAX_CHUNK_BLOCKS`, an integer forces a fixed capacity
        (``1`` restores task-per-block dispatch).
    force_pool:
        Route execution through the worker pool even at ``jobs=1``.  Used
        to measure dispatch overhead honestly (the benchmark gate) and to
        get abandonable timeouts on a single-core machine.

    A runner owns a persistent worker pool: the pool survives across
    :meth:`run` calls (so sweeps pay worker spawn once) and is released by
    :meth:`close`, by using the runner as a context manager, or at garbage
    collection.  The pool snapshots the process state (e.g. dynamically
    registered algorithms) when its workers spawn — create the runner after
    registering custom algorithms.
    """

    def __init__(
        self,
        algorithm: str = DEFAULT_ALGORITHM,
        constraints: Optional[Constraints] = None,
        pruning: Optional[PruningConfig] = None,
        jobs: Union[int, str] = 1,
        timeout: Optional[float] = None,
        context_cache: Optional[ContextCache] = None,
        store: Optional[ResultStore] = None,
        mp_context=None,
        chunk_size: Union[int, str] = "auto",
        force_pool: bool = False,
    ) -> None:
        if timeout is not None and timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        if isinstance(chunk_size, str):
            if chunk_size != "auto":
                raise ValueError(
                    f'chunk_size must be a positive integer or "auto", '
                    f"got {chunk_size!r}"
                )
        elif chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.algorithm = get_algorithm(algorithm).name
        self.constraints = constraints or Constraints()
        self.pruning = pruning
        self.jobs = resolve_jobs(jobs)
        self.timeout = timeout
        self.cache = context_cache or ContextCache()
        self.store = store
        self.mp_context = mp_context
        self.chunk_size = chunk_size
        self.force_pool = bool(force_pool)
        self._pool: Optional[_WorkerPool] = None

    # ------------------------------------------------------------------ #
    # Pool lifecycle
    # ------------------------------------------------------------------ #
    def _uses_pool(self) -> bool:
        return self.jobs >= 2 or self.force_pool

    def _make_pool(self) -> _WorkerPool:
        # max_workers is a cap: the executor spawns workers on demand, so a
        # jobs-sized pool never over-provisions for a short queue.
        executor = ProcessPoolExecutor(
            max_workers=self.jobs, mp_context=self.mp_context
        )
        return _WorkerPool(executor, self.jobs)

    def _checkout_pool(self) -> _WorkerPool:
        """Take the persistent pool (or build one); caller must return it."""
        pool, self._pool = self._pool, None
        if pool is not None and not pool.dead:
            return pool
        return self._make_pool()

    def _return_pool(self, pool: _WorkerPool) -> None:
        """Hand a pool back for reuse (dead pools are dropped)."""
        if pool.dead:
            return
        if self._pool is None:
            self._pool = pool
        else:  # a nested stream already returned one; keep a single pool
            pool.shutdown()

    def warm_pool(self) -> None:
        """Pre-spawn the worker processes (no-op for in-process runs).

        Useful before timing-sensitive work: the first ``run`` after this
        call pays no worker fork/spawn cost.
        """
        if not self._uses_pool():
            return
        pool = self._checkout_pool()
        try:
            with obs.tracer().span("pool.warm", cat="pool", jobs=pool.jobs):
                # Overlapping sleeps force the executor to actually spawn all
                # `jobs` workers instead of funnelling the pings through one.
                futures = [
                    pool.executor.submit(_worker_ping, 0.05) for _ in range(pool.jobs)
                ]
                for future in futures:
                    future.result()
        except BrokenExecutor:
            pool.discard()
        finally:
            self._return_pool(pool)

    def close(self) -> None:
        """Release the persistent worker pool (the runner stays usable)."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown()

    def __enter__(self) -> "BatchRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def run(
        self,
        blocks: BatchInput,
        canonical_forms: Optional[List[CanonicalForm]] = None,
        progress: Optional[ProgressCallback] = None,
    ) -> BatchReport:
        """Enumerate every block and return the input-ordered report.

        Implemented on :meth:`iter_run`: the stream is drained to completion
        and the items — the same objects the generator yields — are restored
        to input order.  *canonical_forms* (store runs only) supplies
        pre-computed canonical forms, one per block in input order, to skip
        re-canonicalization; they must have been computed with this runner's
        constraints.  *progress* is invoked as ``progress(item, completed,
        total)`` after every finished block.
        """
        items = sorted(
            self.iter_run(blocks, canonical_forms=canonical_forms, progress=progress),
            key=lambda item: item.index,
        )
        return BatchReport(
            algorithm=self.algorithm,
            constraints=self.constraints,
            jobs=self.jobs,
            items=items,
        )

    def iter_run(
        self,
        blocks: BatchInput,
        canonical_forms: Optional[List[CanonicalForm]] = None,
        progress: Optional[ProgressCallback] = None,
    ) -> Iterator[BatchItem]:
        """Enumerate *blocks*, yielding each :class:`BatchItem` as it finishes.

        Items arrive in completion order (``item.index`` carries the input
        position); every input block is yielded exactly once — successes,
        cache hits, errors and timeouts alike.  With a store attached, each
        fresh result is written back *before* the item is yielded, so a
        consumer crash mid-suite never loses completed work.  *progress*, if
        given, is called as ``progress(item, completed, total)`` right before
        each item is yielded.
        """
        algorithm = get_algorithm(self.algorithm)
        # Pruning-capable algorithms treat "no pruning config" as full
        # pruning (see the registry adapters); normalizing here keeps that
        # default out of the cache key, so e.g. a `cache warm` run
        # (pruning=None) serves a later ISE run (pruning=FULL_PRUNING).
        if algorithm.capabilities.supports_pruning:
            pruning = self.pruning or FULL_PRUNING
        else:
            pruning = None
        items = normalize_blocks(blocks)
        total = len(items)
        completed = 0
        # Snapshot the observability switch once: activation never changes
        # mid-run, and the disabled path must not pay per-item bookkeeping.
        observing = obs.enabled()
        with obs.tracer().span(
            "batch.run",
            cat="batch",
            algorithm=self.algorithm,
            jobs=self.jobs,
            blocks=total,
        ):
            for item in self._iter_resolved(algorithm, pruning, items, canonical_forms):
                completed += 1
                if observing:
                    self._record_item_metrics(item)
                if progress is not None:
                    progress(item, completed, total)
                yield item

    def _record_item_metrics(self, item: BatchItem) -> None:
        """Fold one finished block into the active metrics registry.

        Runs in the parent only, on the single funnel every item passes
        through (sequential, pool and store-hit paths alike), so counters
        are absorbed exactly once per block regardless of chunk re-splits,
        crash retries or caching.  Cached items contribute their status
        only: their stats describe the original (already-counted) run.
        """
        metrics = obs.metrics()
        if item.cached:
            status = "cached"
        elif item.result is not None:
            status = "fresh"
        elif item.timed_out:
            status = "timeout"
        else:
            status = "error"
        metrics.inc("enum.blocks_total", status=status, algorithm=self.algorithm)
        if status != "fresh":
            return
        stats = item.result.stats
        metrics.inc("enum.cuts_found_total", stats.cuts_found)
        metrics.inc("enum.duplicates_total", stats.duplicates)
        metrics.inc("enum.candidates_checked_total", stats.candidates_checked)
        metrics.inc("enum.lt_calls_total", stats.lt_calls)
        metrics.inc("enum.lt_seconds_total", stats.lt_seconds)
        metrics.inc("enum.pick_output_calls_total", stats.pick_output_calls)
        metrics.inc("enum.pick_input_calls_total", stats.pick_input_calls)
        metrics.inc("enum.forbidden_cache_hits_total", stats.forbidden_cache_hits)
        metrics.inc("enum.forbidden_cache_misses_total", stats.forbidden_cache_misses)
        metrics.inc("enum.insearch_hits_total", stats.insearch_hits)
        metrics.inc("enum.insearch_misses_total", stats.insearch_misses)
        metrics.inc("enum.insearch_evictions_total", stats.insearch_evictions)
        for rule, amount in stats.pruned.items():
            metrics.inc("enum.pruned_total", amount, rule=rule)
        metrics.observe("enum.block_seconds", stats.elapsed_seconds)

    # ------------------------------------------------------------------ #
    # Store-aware streaming
    # ------------------------------------------------------------------ #
    def _iter_resolved(
        self,
        algorithm,
        pruning: Optional[PruningConfig],
        items: List[BatchItem],
        canonical_forms: Optional[List[CanonicalForm]],
    ) -> Iterator[BatchItem]:
        """Stream *items* through the store front and the scheduler."""
        if self.store is None:
            yield from self._stream(algorithm, pruning, items)
            return

        forms: Dict[int, CanonicalForm] = {}
        if canonical_forms is not None:
            if len(canonical_forms) != len(items):
                raise ValueError(
                    f"expected {len(items)} canonical form(s), "
                    f"got {len(canonical_forms)}"
                )
            forms.update(enumerate(canonical_forms))

        # Within one run, isomorphic duplicates ride on the first copy of
        # their class: enumerate one leader per store key; as each leader
        # finishes, write it back and serve its followers from the fresh
        # entry.  Followers of a failed leader are known store misses, so
        # they are dispatched together in one trailing round (deferring them
        # one by one would serialize a parallel run).
        #
        # Store resolution is *lazy*: the scheduler pulls blocks from this
        # source as its submission window frees up, so canonicalization and
        # store probes interleave with enumeration instead of forming an
        # O(N) barrier in front of a large suite, and workers start on the
        # first miss while later blocks are still being looked up.
        followers_by_key: Dict[str, List[BatchItem]] = {}

        def classified() -> Iterator[Tuple[BatchItem, bool]]:
            for item in items:
                if not self._resolve_from_store([item], pruning, forms):
                    yield item, True  # served from the store
                    continue
                key = self._store_key(forms[item.index], pruning)
                if key in followers_by_key:
                    followers_by_key[key].append(item)
                else:
                    followers_by_key[key] = []
                    yield item, False  # leader: dispatch it

        deferred: List[BatchItem] = []
        for group in self._stream_groups(
            algorithm, pruning, classified(), total_hint=len(items)
        ):
            # One write-back per finished chunk, not per block.
            self._write_back(group, pruning, forms)
            for item in group:
                yield item
                if item.cached:
                    continue
                key = self._store_key(forms[item.index], pruning)
                waiting = followers_by_key.pop(key, [])
                if not waiting:
                    continue
                if item.result is None:
                    deferred.extend(waiting)
                    continue
                still_missing = self._resolve_from_store(waiting, pruning, forms)
                for follower in waiting:
                    if follower.result is not None:
                        yield follower
                deferred.extend(still_missing)

        if deferred:
            for group in self._stream_groups(
                algorithm,
                pruning,
                ((item, False) for item in deferred),
                total_hint=len(deferred),
            ):
                self._write_back(group, pruning, forms)
                yield from group

    # ------------------------------------------------------------------ #
    # Memoization store integration
    # ------------------------------------------------------------------ #
    def _store_key(self, form: CanonicalForm, pruning: Optional[PruningConfig]) -> str:
        return ResultStore.make_key(
            form.hash,
            self.algorithm,
            request_fingerprint(self.constraints, pruning),
        )

    def _resolve_from_store(
        self,
        items: List[BatchItem],
        pruning: Optional[PruningConfig],
        forms: Dict[int, CanonicalForm],
    ) -> List[BatchItem]:
        """Fill items with stored results; return the ones still to enumerate.

        Stored masks live in the canonical id space, so a hit produced by an
        isomorphic block remaps cleanly onto this block's vertex ids.
        """
        assert self.store is not None
        pending: List[BatchItem] = []
        for item in items:
            start = time.perf_counter()
            form = forms.get(item.index)
            if form is None:
                form = canonical_form(item.graph, self.constraints)
                forms[item.index] = form
            stored = self.store.get(self._store_key(form, pruning))
            if stored is None:
                pending.append(item)
                continue
            item.context = self.cache.get(item.graph, self.constraints)
            # Copy the stats: the stored object is shared by the store's LRU
            # front and every other hit on this key, and EnumerationStats is
            # mutated in place by merge().
            stats = EnumerationStats()
            stats.merge(stored.stats)
            item.result = EnumerationResult(
                cuts=[
                    Cut.from_mask(item.context, form.from_canonical_mask(mask))
                    for mask in stored.masks
                ],
                stats=stats,
                graph_name=item.graph_name,
                # The label the algorithm itself emitted (it may differ from
                # the registry name, e.g. "exhaustive-pruned"), so a warm run
                # reproduces the cold run's reports byte-for-byte.
                algorithm=stored.algorithm,
            )
            item.cached = True
            item.elapsed_seconds = time.perf_counter() - start
        return pending

    def _write_back(
        self,
        computed: List[BatchItem],
        pruning: Optional[PruningConfig],
        forms: Dict[int, CanonicalForm],
    ) -> None:
        """Persist the results enumerated in this run (masks in canonical ids).

        Cache hits and result-less items are skipped; everything else goes
        to the store in one :meth:`~repro.memo.store.ResultStore.put_many`
        batch.
        """
        assert self.store is not None
        fingerprint = request_fingerprint(self.constraints, pruning)
        entries: List[Tuple[str, StoredResult]] = []
        for item in computed:
            if item.cached or item.result is None:
                continue
            form = forms[item.index]
            entries.append(
                (
                    self._store_key(form, pruning),
                    StoredResult(
                        canonical_hash=form.hash,
                        # The result's own label, not the registry name (see
                        # the reconstruction in _resolve_from_store).
                        algorithm=item.result.algorithm,
                        fingerprint=fingerprint,
                        masks=[
                            form.to_canonical_mask(cut.node_mask())
                            for cut in item.result.cuts
                        ],
                        stats=item.result.stats,
                    ),
                )
            )
        if entries:
            with obs.tracer().span(
                "store.write_back", cat="store", entries=len(entries)
            ):
                self.store.put_many(entries)

    # ------------------------------------------------------------------ #
    # Execution paths
    # ------------------------------------------------------------------ #
    def _stream(
        self,
        algorithm,
        pruning: Optional[PruningConfig],
        items: List[BatchItem],
    ) -> Iterator[BatchItem]:
        """Yield *items* as they finish, sequentially or through the pool."""
        if not items:
            return
        for group in self._stream_groups(
            algorithm,
            pruning,
            ((item, False) for item in items),
            total_hint=len(items),
        ):
            yield from group

    def _stream_groups(
        self,
        algorithm,
        pruning: Optional[PruningConfig],
        source: Iterator[Tuple[BatchItem, bool]],
        total_hint: int,
    ) -> Iterator[List[BatchItem]]:
        """Yield finished blocks in groups from a lazy ``(item, resolved)`` source.

        Already-resolved items (store hits) pass straight through; the rest
        are enumerated.  A group is the natural completion unit — one
        finished chunk in parallel mode, one block sequentially — and is the
        granularity of store write-backs.  The source is pulled
        incrementally, so store lookups and canonicalization interleave with
        execution.
        """
        # Parallel-capable runs go through the pool even for a single
        # block: only the pool path can abandon a block that blows its
        # timeout.
        if self._uses_pool():
            yield from self._stream_parallel(pruning, source, total_hint)
        else:
            for item in self._stream_sequential(algorithm, pruning, source):
                yield [item]

    def _chunk_capacity(self, total_hint: int) -> int:
        """Blocks per chunk for a stream of roughly *total_hint* blocks."""
        if not isinstance(self.chunk_size, str):
            return int(self.chunk_size)
        return max(
            1,
            min(
                MAX_CHUNK_BLOCKS,
                total_hint // (CHUNK_TARGET_PER_WORKER * self.jobs),
            ),
        )

    @staticmethod
    def _form_chunk(
        staged: "deque[BatchItem]", capacity: int
    ) -> List[BatchItem]:
        """Pop the next chunk off *staged*: same-size-bin blocks, in order.

        The head block anchors the chunk; the rest of the staging queue is
        scanned for blocks in the same node-count bin (so chunk runtimes
        stay predictable) and everything else keeps its relative order.
        """
        first = staged.popleft()
        chunk = [first]
        if capacity <= 1 or not staged:
            return chunk
        want = _size_bin(first.graph)
        kept: "deque[BatchItem]" = deque()
        while staged and len(chunk) < capacity:
            candidate = staged.popleft()
            if _size_bin(candidate.graph) == want:
                chunk.append(candidate)
            else:
                kept.append(candidate)
        while kept:
            staged.appendleft(kept.pop())
        return chunk

    def _stream_sequential(
        self,
        algorithm,
        pruning: Optional[PruningConfig],
        source: Iterator[Tuple[BatchItem, bool]],
    ) -> Iterator[BatchItem]:
        for item, resolved in source:
            if resolved:
                yield item
                continue
            item.context = self.cache.get(item.graph, self.constraints)
            context = item.context if algorithm.capabilities.supports_context else None
            start = time.perf_counter()
            with obs.tracer().span(
                "enum.block", cat="enum", graph=item.graph_name
            ) as span:
                try:
                    item.result = algorithm.enumerate(
                        EnumerationRequest(
                            graph=item.graph,
                            constraints=self.constraints,
                            pruning=pruning,
                            context=context,
                        )
                    )
                    span.note(cuts=len(item.result.cuts))
                except Exception as exc:  # same policy as the parallel path
                    item.error = f"{type(exc).__name__}: {exc}"
                    span.note(error=item.error)
            item.elapsed_seconds = time.perf_counter() - start
            if self.timeout is not None and item.elapsed_seconds > self.timeout:
                # The run cannot be interrupted in-process; keep the result,
                # flag the overrun.
                item.timed_out = True
            yield item

    def _stream_parallel(
        self,
        pruning: Optional[PruningConfig],
        source: Iterator[Tuple[BatchItem, bool]],
        total_hint: int,
    ) -> Iterator[List[BatchItem]]:
        """The streaming chunked scheduler (see the module docstring).

        Bounded submission window over a lazily pulled source, size-binned
        chunk formation, as-completed collection, per-chunk deadlines
        measured from actual task start (``len(chunk) * timeout``), re-split
        retry of crashed or expired multi-block chunks, and pool recycling
        when a deadline fires (a running task cannot be cancelled
        cooperatively, so its worker must die).
        """
        jobs = self.jobs
        window = max(WINDOW_FACTOR * jobs, 2)
        capacity = self._chunk_capacity(total_hint)
        stage_limit = window * capacity
        retry: "deque[List[BatchItem]]" = deque()  # crash/timeout/missing chunks
        staged: "deque[BatchItem]" = deque()  # pulled misses awaiting dispatch
        crash_charges: Dict[int, int] = {}  # strikes: observed-running crashes
        crash_encounters: Dict[int, int] = {}  # any crash witnessed in flight
        in_flight: Dict[Future, List[BatchItem]] = {}
        started: Dict[Future, float] = {}  # first observed running, monotonic
        ready: List[BatchItem] = []  # store hits pulled from the source
        exhausted = False
        # Remaining tasks to run one-at-a-time after an ambiguous crash
        # (nobody — or a whole chunk — was on the hook): isolation makes any
        # repeat crash attributable, so innocents keep their clean record.
        quarantine = 0
        pool = self._checkout_pool()
        try:
            while True:
                # Pull the source lazily into the staging queue: at most
                # `stage_limit` staged misses (plus the in-flight chunks)
                # exist at a time, so million-block suites are never
                # materialized up front.
                pulls = 0
                while (
                    not exhausted
                    and pulls < stage_limit
                    and len(staged) < stage_limit
                ):
                    entry = next(source, None)
                    if entry is None:
                        exhausted = True
                        break
                    pulls += 1
                    item, resolved = entry
                    if resolved:
                        ready.append(item)
                    else:
                        staged.append(item)

                # Top up the submission window with chunks.  Chunks are only
                # formed once the staging queue can fill one (or the source
                # is dry), so early blocks are not dispatched in fragments.
                limit = 1 if quarantine else window
                while len(in_flight) < limit:
                    if retry:
                        chunk = retry.popleft()
                    elif staged and (exhausted or len(staged) >= capacity):
                        chunk = self._form_chunk(staged, capacity)
                    else:
                        break
                    try:
                        future = pool.submit_chunk(
                            self.algorithm, self.constraints, pruning, chunk
                        )
                    except BrokenExecutor:
                        # The pool broke before we noticed; the in-flight
                        # futures (if any) surface the crash below.
                        retry.appendleft(chunk)
                        break
                    in_flight[future] = chunk

                if ready:
                    yield list(ready)
                    ready.clear()
                    if pulls >= stage_limit and not exhausted:
                        # The pull cap — not capacity — ended the top-up: a
                        # run of store hits is flowing.  Keep draining it
                        # instead of blocking on the in-flight tasks.
                        continue

                if not in_flight:
                    if retry:  # broken pool with nothing left in flight
                        pool.discard()
                        pool = self._make_pool()
                        continue
                    if exhausted and not staged:
                        break
                    continue  # source (or the staged misses) still has blocks

                tick = (
                    None
                    if self.timeout is None
                    else max(min(self.timeout / 10.0, 0.1), 0.005)
                )
                done, _ = wait(list(in_flight), timeout=tick, return_when=FIRST_COMPLETED)

                # (chunk, was_observed_running) casualties of a broken pool.
                crashed: List[Tuple[List[BatchItem], bool]] = []
                for future in done:
                    chunk = in_flight.pop(future)
                    was_running = started.pop(future, None) is not None
                    outcome = self._collect_chunk(future, chunk, pool)
                    if outcome is None:
                        crashed.append((chunk, was_running))
                    else:
                        quarantine = max(quarantine - 1, 0)
                        finished, requeue = outcome
                        retry.extend(requeue)
                        if finished:
                            yield finished

                if crashed:
                    # The pool is broken: every other in-flight future fails
                    # with it.  Drain them (already-computed results survive),
                    # then rebuild the pool and retry the casualties.
                    if in_flight:
                        wait(list(in_flight), timeout=_BROKEN_POOL_DRAIN_SECONDS)
                        for future, chunk in list(in_flight.items()):
                            was_running = started.pop(future, None) is not None
                            outcome = self._collect_chunk(future, chunk, pool)
                            if outcome is None:
                                crashed.append((chunk, was_running))
                            else:
                                finished, requeue = outcome
                                retry.extend(requeue)
                                if finished:
                                    yield finished
                        in_flight.clear()
                        started.clear()
                    pool.discard()
                    obs.metrics().inc("pool.crash_recoveries_total")
                    obs.tracer().instant(
                        "pool.crashed", cat="pool", casualties=len(crashed)
                    )
                    failed, isolate = self._triage_crash(
                        crashed, retry, crash_charges, crash_encounters
                    )
                    for item in failed:
                        quarantine = max(quarantine - 1, 0)
                    if failed:
                        yield failed
                    quarantine += isolate
                    pool = self._make_pool()
                    continue

                if not in_flight:
                    continue

                # Stamp a task when it is first observed running, capped at
                # `jobs` stamps so the executor's one-deep call-queue buffer
                # is never treated as executing.  The stamps drive both the
                # deadline accounting and the crash attribution above.
                now = time.monotonic()
                for future in in_flight:
                    if (
                        future not in started
                        and len(started) < jobs
                        and future.running()
                    ):
                        started[future] = now

                if self.timeout is None:
                    continue
                expired = [
                    future
                    for future, stamp in started.items()
                    if now - stamp >= self.timeout * len(in_flight[future])
                    and not future.done()
                ]
                if not expired:
                    continue
                for future in expired:
                    chunk = in_flight.pop(future)
                    stamp = started.pop(future)
                    quarantine = max(quarantine - 1, 0)
                    obs.metrics().inc("pool.deadline_expiries_total")
                    if len(chunk) == 1:
                        item = chunk[0]
                        item.timed_out = True
                        item.elapsed_seconds = now - stamp
                        obs.tracer().instant(
                            "pool.block_abandoned", cat="pool",
                            graph=item.graph_name,
                        )
                        yield [item]
                    else:
                        # The chunk blew its combined budget but the slow
                        # block is unknown: re-split into single-block tasks
                        # (penalty-free) so each gets its own deadline.
                        obs.metrics().inc(
                            "pool.chunk_resplits_total", reason="deadline"
                        )
                        for item in chunk:
                            retry.append([item])
                # A running task cannot be cancelled cooperatively: kill the
                # workers and rebuild the pool.  Innocent in-flight chunks
                # are resubmitted with no penalty (results that landed
                # between the wait() and now are kept as-is).
                survivors: List[List[BatchItem]] = []
                for future, chunk in list(in_flight.items()):
                    if future.done():
                        outcome = self._collect_chunk(future, chunk, pool)
                        if outcome is not None:
                            quarantine = max(quarantine - 1, 0)
                            finished, requeue = outcome
                            retry.extend(requeue)
                            if finished:
                                yield finished
                            continue
                    survivors.append(chunk)
                in_flight.clear()
                started.clear()
                pool.kill()
                retry.extendleft(reversed(survivors))
                pool = self._make_pool()
        finally:
            if in_flight:
                # The consumer abandoned the stream with tasks still running.
                pool.kill()
            else:
                self._return_pool(pool)

    @staticmethod
    def _triage_crash(
        crashed: List[Tuple[List[BatchItem], bool]],
        retry: "deque[List[BatchItem]]",
        charges: Dict[int, int],
        encounters: Dict[int, int],
    ) -> Tuple[List[BatchItem], int]:
        """Requeue or fail the casualties of one broken-pool event.

        A strike (*charges*) is issued only when the culprit is unambiguous:
        every casualty was a single-block task, and the event had a sole
        casualty or exactly one task observed *running* when the pool broke.
        Everyone else is requeued penalty-free, so one poison block can
        never burn an innocent neighbour's retry — not even a slow innocent
        running right next to it.  Ambiguous crashes — several suspects, or
        any multi-block chunk among the casualties — charge nobody and
        requeue every casualty block as a *single-block* task run in
        isolation (the second number returned), so a repeat crash has
        exactly one suspect.  The *encounters* cap bounds the worst case per
        block, so the stream always terminates.  Returns the items whose
        error was just sealed, plus the quarantine count.
        """
        singles_only = all(len(chunk) == 1 for chunk, _ in crashed)
        suspects = sum(1 for _, was_running in crashed if was_running)
        attributable = singles_only and (len(crashed) == 1 or suspects == 1)
        for chunk, _ in crashed:
            if len(chunk) > 1:
                obs.metrics().inc("pool.chunk_resplits_total", reason="crash")
        failed: List[BatchItem] = []
        requeued: List[List[BatchItem]] = []
        for chunk, was_running in crashed:
            for item in chunk:
                encounters[item.index] = encounters.get(item.index, 0) + 1
                if attributable and (was_running or len(crashed) == 1):
                    charges[item.index] = charges.get(item.index, 0) + 1
                if charges.get(item.index, 0) >= _MAX_CRASH_CHARGES:
                    item.error = (
                        "BrokenProcessPool: worker process crashed "
                        f"{_MAX_CRASH_CHARGES} times while running this block"
                    )
                    failed.append(item)
                elif encounters[item.index] >= _MAX_CRASH_ENCOUNTERS:
                    item.error = (
                        "BrokenProcessPool: worker pool crashed "
                        f"{_MAX_CRASH_ENCOUNTERS} times with this block in flight"
                    )
                    failed.append(item)
                else:
                    requeued.append([item])
        retry.extendleft(reversed(requeued))
        return failed, (0 if attributable else len(requeued))

    def _collect_chunk(
        self,
        future: Future,
        chunk: List[BatchItem],
        pool: _WorkerPool,
    ) -> Optional[Tuple[List[BatchItem], List[List[BatchItem]]]]:
        """Turn a finished chunk future into its items, or report a worker death.

        Returns ``(finished, requeue)`` — the items ready to be yielded
        (successes, worker errors, completed-over-budget) and the
        single-block tasks to resubmit (blocks whose graph the worker was
        missing) — or ``None`` when the worker died and the caller must
        triage the whole chunk for the crash-retry pass.
        """
        try:
            payloads = future.result(timeout=0)
        except (BrokenExecutor, CancelledError, FuturesTimeoutError):
            return None
        except Exception as exc:
            # A failure outside the worker's per-block harness (e.g. an
            # unpicklable payload): charge it to every block of the chunk,
            # in the same "TypeName: message" form.
            message = f"{type(exc).__name__}: {exc}"
            for item in chunk:
                item.error = message
            return list(chunk), []
        if isinstance(payloads, dict):
            # Observability-enabled worker: the per-block list rides inside a
            # wrapper dict next to the worker's drained metric/span deltas.
            obs.absorb_worker_payload(payloads)
            payloads = payloads["results"]
        finished: List[BatchItem] = []
        requeue: List[List[BatchItem]] = []
        for item, payload in zip(chunk, payloads):
            if payload.get("missing"):
                # The worker never saw this graph (registry eviction or
                # unlucky routing): pin the body onto future shipments and
                # resubmit the block alone.
                pool.must_ship.add(item.graph.structural_hash())
                obs.metrics().inc("pool.graph_missing_total")
                requeue.append([item])
                continue
            error = payload.get("error")
            if error is not None:
                item.error = str(error)
                item.elapsed_seconds = float(payload.get("task_seconds", 0.0))
                finished.append(item)
                continue
            item.context = self.cache.get(item.graph, self.constraints)
            item.result = EnumerationResult(
                cuts=[Cut.from_mask(item.context, mask) for mask in payload["masks"]],
                stats=payload["stats"],
                graph_name=payload["graph_name"],
                algorithm=payload["algorithm"],
            )
            item.elapsed_seconds = payload["stats"].elapsed_seconds
            if (
                self.timeout is not None
                and float(payload.get("task_seconds", 0.0)) > self.timeout
            ):
                # Completed over budget — mid-chunk or between two scheduler
                # ticks: keep the result, flag the overrun — identical to
                # sequential semantics.
                item.timed_out = True
            finished.append(item)
        return finished, requeue


def enumerate_batch(
    blocks: BatchInput,
    algorithm: str = DEFAULT_ALGORITHM,
    constraints: Optional[Constraints] = None,
    pruning: Optional[PruningConfig] = None,
    jobs: Union[int, str] = 1,
    timeout: Optional[float] = None,
) -> BatchReport:
    """One-shot convenience wrapper around :class:`BatchRunner`."""
    with BatchRunner(
        algorithm=algorithm,
        constraints=constraints,
        pruning=pruning,
        jobs=jobs,
        timeout=timeout,
    ) as runner:
        return runner.run(blocks)
