"""Parallel multi-block batch enumeration.

The paper's conclusion is that full subgraph enumeration pays off when it is
driven across *whole applications* — many basic blocks, weighted by execution
counts — inside a compiler toolchain.  :class:`BatchRunner` is that driver: it
takes a :class:`~repro.workloads.suite.WorkloadSuite` (or any iterable of
graphs / profiled blocks), enumerates every block with one registry algorithm,
and returns per-block results in input order plus aggregated statistics.

Parallel runs (``jobs >= 2``) use a ``ProcessPoolExecutor``.  Graphs travel to
the workers through the stable :mod:`repro.dfg.serialization` dictionary form;
workers send back cut bit masks and counters only, and the parent rebuilds the
:class:`~repro.core.cut.Cut` objects against a locally built context, so the
results of a parallel run are bit-identical to a sequential run.  Both the
parent and each worker keep a bounded :class:`ContextCache` so repeated
enumerations of the same graph (ablation sweeps, repeated benchmark runs)
skip the context precomputation.

Timeouts are best effort: in parallel mode a block whose result does not
arrive within ``timeout`` seconds is marked ``timed_out`` and its (already
running) worker task is abandoned; in sequential mode the run cannot be
interrupted, so the block is marked after the fact but its result is kept.

When a :class:`~repro.memo.store.ResultStore` is attached, the runner
consults it *before* dispatching work — blocks whose isomorphism class was
already enumerated (under the same algorithm and request fingerprint) are
rebuilt from the stored canonical cut masks and marked ``cached`` — and
writes freshly computed results back afterwards, so later runs (and runs on
isomorphic blocks) become cache hits.
"""

from __future__ import annotations

import json
import time
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple, Union

from ..core.constraints import Constraints
from ..core.context import EnumerationContext
from ..core.cut import Cut
from ..core.pruning import FULL_PRUNING, PruningConfig
from ..core.stats import EnumerationResult, EnumerationStats
from ..dfg.graph import DataFlowGraph
from ..dfg.serialization import graph_from_dict, graph_to_dict
from ..memo.canon import CanonicalForm, canonical_form
from ..memo.store import ResultStore, StoredResult, request_fingerprint
from ..workloads.suite import WorkloadSuite
from .registry import DEFAULT_ALGORITHM, EnumerationRequest, get_algorithm

#: Anything the runner accepts as "a batch of blocks".
BlockLike = Union[DataFlowGraph, Tuple[DataFlowGraph, float]]
BatchInput = Union[WorkloadSuite, Iterable[BlockLike]]


class ContextCache:
    """Bounded LRU cache of :class:`EnumerationContext` objects.

    Keys combine the *structure* of the graph (its serialized dictionary
    form) with the constraints, so two graph objects with identical content
    share one context while a renamed or edited graph does not.
    """

    def __init__(self, max_entries: int = 64) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self._entries: "OrderedDict[Tuple[str, Constraints], EnumerationContext]" = (
            OrderedDict()
        )

    @staticmethod
    def fingerprint(graph: DataFlowGraph) -> str:
        """Deterministic structural key of *graph*."""
        return json.dumps(graph_to_dict(graph), sort_keys=True)

    def get(
        self,
        graph: DataFlowGraph,
        constraints: Optional[Constraints],
        fingerprint: Optional[str] = None,
    ) -> EnumerationContext:
        """Return a (possibly cached) context for *graph* under *constraints*.

        *fingerprint* may be supplied when the caller already serialized the
        graph, to avoid a second :func:`graph_to_dict` pass.
        """
        key = (fingerprint or self.fingerprint(graph), constraints or Constraints())
        cached = self._entries.get(key)
        if cached is not None:
            self.hits += 1
            self._entries.move_to_end(key)
            return cached
        self.misses += 1
        context = EnumerationContext.build(graph, constraints)
        self._entries[key] = context
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
        return context

    def __len__(self) -> int:
        return len(self._entries)


@dataclass
class BatchItem:
    """Outcome of enumerating one block of a batch."""

    index: int
    graph: DataFlowGraph
    graph_name: str
    execution_count: float = 1.0
    result: Optional[EnumerationResult] = None
    context: Optional[EnumerationContext] = None
    elapsed_seconds: float = 0.0
    timed_out: bool = False
    error: Optional[str] = None
    #: ``True`` when the result was rebuilt from the memoization store
    #: instead of being enumerated in this run.
    cached: bool = False
    #: ``True`` when the result was remapped from an isomorphic block's run
    #: (see :func:`repro.memo.dedup.enumerate_deduplicated`).
    deduplicated: bool = False

    @property
    def ok(self) -> bool:
        """``True`` when an enumeration result is available."""
        return self.result is not None


@dataclass
class BatchReport:
    """Input-ordered results of one batch run."""

    algorithm: str
    constraints: Constraints
    jobs: int
    items: List[BatchItem] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self):
        return iter(self.items)

    def results(self) -> List[EnumerationResult]:
        """The successful per-block results, in input order."""
        return [item.result for item in self.items if item.ok]

    def failures(self) -> List[BatchItem]:
        """Items that errored or timed out without a result."""
        return [item for item in self.items if not item.ok]

    def total_cuts(self) -> int:
        """Number of cuts found across all successful blocks."""
        return sum(len(item.result.cuts) for item in self.items if item.ok)

    def total_stats(self) -> EnumerationStats:
        """Aggregated search statistics of the successful blocks."""
        total = EnumerationStats()
        for item in self.items:
            if item.ok:
                total.merge(item.result.stats)
        return total

    def summary(self) -> str:
        """One-paragraph human-readable account of the run."""
        stats = self.total_stats()
        lines = [
            f"batch of {len(self.items)} block(s), algorithm {self.algorithm!r}, "
            f"jobs={self.jobs}: {self.total_cuts()} cuts "
            f"in {stats.elapsed_seconds:.3f}s of enumeration time",
        ]
        for item in self.failures():
            reason = "timed out" if item.timed_out else (item.error or "failed")
            lines.append(f"  block {item.graph_name!r}: {reason}")
        return "\n".join(lines)


def normalize_blocks(blocks: BatchInput) -> List[BatchItem]:
    """Turn any accepted batch input into an ordered :class:`BatchItem` list.

    Shared by :class:`BatchRunner` and the isomorphism-deduplication driver
    (:func:`repro.memo.dedup.enumerate_deduplicated`).
    """
    if isinstance(blocks, WorkloadSuite):
        pairs = [(graph, 1.0) for graph in blocks]
    else:
        pairs = []
        for entry in blocks:
            if isinstance(entry, DataFlowGraph):
                pairs.append((entry, 1.0))
            elif isinstance(entry, tuple):
                graph, count = entry
                pairs.append((graph, float(count)))
            elif hasattr(entry, "graph"):
                # Duck-typed profile, e.g. repro.ise.pipeline.BlockProfile.
                pairs.append(
                    (entry.graph, float(getattr(entry, "execution_count", 1.0)))
                )
            else:
                raise TypeError(
                    f"cannot interpret {entry!r} as a basic block; expected a "
                    "DataFlowGraph, a (graph, execution_count) pair, or an "
                    "object with a .graph attribute"
                )
    return [
        BatchItem(
            index=index,
            graph=graph,
            graph_name=graph.name,
            execution_count=count,
        )
        for index, (graph, count) in enumerate(pairs)
    ]


# --------------------------------------------------------------------------- #
# Worker side
# --------------------------------------------------------------------------- #
#: Per-process context cache reused across the tasks a worker executes.
_worker_cache: Optional[ContextCache] = None


def _enumerate_serialized_block(
    payload: Tuple[str, Dict[str, object], Optional[Constraints], Optional[PruningConfig]],
) -> Dict[str, object]:
    """Enumerate one serialized graph inside a worker process.

    Returns a compact, picklable summary: the cut bit masks, the statistics
    and the algorithm label.  The parent rebuilds the ``Cut`` objects.
    """
    global _worker_cache
    algorithm_name, graph_dict, constraints, pruning = payload
    algorithm = get_algorithm(algorithm_name)
    graph = graph_from_dict(graph_dict)
    context = None
    if algorithm.capabilities.supports_context:
        if _worker_cache is None:
            _worker_cache = ContextCache()
        context = _worker_cache.get(graph, constraints)
    result = algorithm.enumerate(
        EnumerationRequest(
            graph=graph, constraints=constraints, pruning=pruning, context=context
        )
    )
    return {
        "graph_name": result.graph_name,
        "algorithm": result.algorithm,
        "masks": [cut.node_mask() for cut in result.cuts],
        "stats": result.stats,
    }


# --------------------------------------------------------------------------- #
# Runner
# --------------------------------------------------------------------------- #
class BatchRunner:
    """Enumerate many basic blocks with one registry algorithm.

    Parameters
    ----------
    algorithm:
        Registry name (or alias) of the enumeration algorithm.
    constraints:
        I/O constraints applied to every block (defaults to Nin=4, Nout=2).
    pruning:
        Optional pruning configuration; only forwarded to algorithms whose
        capabilities declare ``supports_pruning``.
    jobs:
        Number of worker processes; ``1`` (default) runs in-process.
    timeout:
        Optional per-block wall-clock budget in seconds (see the module
        docstring for the exact semantics).
    context_cache:
        Parent-side context cache to share across runs; one is created per
        runner by default.
    store:
        Optional persistent :class:`~repro.memo.store.ResultStore`.  Blocks
        with a stored result (same canonical graph hash, algorithm and
        request fingerprint) skip enumeration entirely; fresh results are
        written back after the run.
    """

    def __init__(
        self,
        algorithm: str = DEFAULT_ALGORITHM,
        constraints: Optional[Constraints] = None,
        pruning: Optional[PruningConfig] = None,
        jobs: int = 1,
        timeout: Optional[float] = None,
        context_cache: Optional[ContextCache] = None,
        store: Optional[ResultStore] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if timeout is not None and timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        self.algorithm = get_algorithm(algorithm).name
        self.constraints = constraints or Constraints()
        self.pruning = pruning
        self.jobs = jobs
        self.timeout = timeout
        self.cache = context_cache or ContextCache()
        self.store = store

    # ------------------------------------------------------------------ #
    def run(
        self,
        blocks: BatchInput,
        canonical_forms: Optional[List[CanonicalForm]] = None,
    ) -> BatchReport:
        """Enumerate every block and return the input-ordered report.

        *canonical_forms* (store runs only) supplies pre-computed canonical
        forms, one per block in input order, to skip re-canonicalization;
        they must have been computed with this runner's constraints.
        """
        algorithm = get_algorithm(self.algorithm)
        # Pruning-capable algorithms treat "no pruning config" as full
        # pruning (see the registry adapters); normalizing here keeps that
        # default out of the cache key, so e.g. a `cache warm` run
        # (pruning=None) serves a later ISE run (pruning=FULL_PRUNING).
        if algorithm.capabilities.supports_pruning:
            pruning = self.pruning or FULL_PRUNING
        else:
            pruning = None
        items = normalize_blocks(blocks)
        report = BatchReport(
            algorithm=self.algorithm,
            constraints=self.constraints,
            jobs=self.jobs,
            items=items,
        )
        if self.store is None:
            self._dispatch(algorithm, pruning, items)
            return report

        forms: Dict[int, CanonicalForm] = {}
        if canonical_forms is not None:
            if len(canonical_forms) != len(items):
                raise ValueError(
                    f"expected {len(items)} canonical form(s), "
                    f"got {len(canonical_forms)}"
                )
            forms.update(enumerate(canonical_forms))
        pending = self._resolve_from_store(items, pruning, forms)
        # Within one run, isomorphic duplicates ride on the first copy of
        # their class: enumerate one leader per store key, write it back,
        # then serve the followers from the fresh entries.  When a leader
        # fails, its key joins failed_keys and every remaining member of the
        # class is dispatched together in the next round (they are known
        # store misses — deferring them one by one would serialize a
        # parallel run), so every round retires at least one block per key.
        failed_keys: set = set()
        while pending:
            leaders, followers = self._split_unique_keys(
                pending, pruning, forms, failed_keys
            )
            self._dispatch(algorithm, pruning, leaders)
            self._write_back(leaders, pruning, forms)
            for leader in leaders:
                if leader.result is None:
                    failed_keys.add(self._store_key(forms[leader.index], pruning))
            if not followers:
                break
            pending = self._resolve_from_store(followers, pruning, forms)
        return report

    def _dispatch(self, algorithm, pruning: Optional[PruningConfig], items: List[BatchItem]) -> None:
        """Run *items* through the sequential or parallel path."""
        # jobs >= 2 goes through the pool even for a single block: only the
        # parallel path can abandon a block that blows its timeout.
        if self.jobs == 1 or not items:
            self._run_sequential(algorithm, pruning, items)
        else:
            self._run_parallel(pruning, items)

    # ------------------------------------------------------------------ #
    # Memoization store integration
    # ------------------------------------------------------------------ #
    def _store_key(self, form: CanonicalForm, pruning: Optional[PruningConfig]) -> str:
        return ResultStore.make_key(
            form.hash,
            self.algorithm,
            request_fingerprint(self.constraints, pruning),
        )

    def _split_unique_keys(
        self,
        pending: List[BatchItem],
        pruning: Optional[PruningConfig],
        forms: Dict[int, CanonicalForm],
        failed_keys: set,
    ) -> Tuple[List[BatchItem], List[BatchItem]]:
        """Split *pending* into one leader per store key plus the followers.

        Every member of a key that already failed becomes a leader: its
        result will never appear in the store, so deferring would only cost
        extra rounds.
        """
        leaders: List[BatchItem] = []
        followers: List[BatchItem] = []
        seen: set = set()
        for item in pending:
            key = self._store_key(forms[item.index], pruning)
            if key in seen and key not in failed_keys:
                followers.append(item)
            else:
                seen.add(key)
                leaders.append(item)
        return leaders, followers

    def _resolve_from_store(
        self,
        items: List[BatchItem],
        pruning: Optional[PruningConfig],
        forms: Dict[int, CanonicalForm],
    ) -> List[BatchItem]:
        """Fill items with stored results; return the ones still to enumerate.

        Stored masks live in the canonical id space, so a hit produced by an
        isomorphic block remaps cleanly onto this block's vertex ids.
        """
        assert self.store is not None
        pending: List[BatchItem] = []
        for item in items:
            start = time.perf_counter()
            form = forms.get(item.index)
            if form is None:
                form = canonical_form(item.graph, self.constraints)
                forms[item.index] = form
            stored = self.store.get(self._store_key(form, pruning))
            if stored is None:
                pending.append(item)
                continue
            item.context = self.cache.get(item.graph, self.constraints)
            # Copy the stats: the stored object is shared by the store's LRU
            # front and every other hit on this key, and EnumerationStats is
            # mutated in place by merge().
            stats = EnumerationStats()
            stats.merge(stored.stats)
            item.result = EnumerationResult(
                cuts=[
                    Cut.from_mask(item.context, form.from_canonical_mask(mask))
                    for mask in stored.masks
                ],
                stats=stats,
                graph_name=item.graph_name,
                # The label the algorithm itself emitted (it may differ from
                # the registry name, e.g. "exhaustive-pruned"), so a warm run
                # reproduces the cold run's reports byte-for-byte.
                algorithm=stored.algorithm,
            )
            item.cached = True
            item.elapsed_seconds = time.perf_counter() - start
        return pending

    def _write_back(
        self,
        computed: List[BatchItem],
        pruning: Optional[PruningConfig],
        forms: Dict[int, CanonicalForm],
    ) -> None:
        """Persist the results enumerated in this run (masks in canonical ids)."""
        assert self.store is not None
        for item in computed:
            if item.result is None:
                continue
            form = forms[item.index]
            self.store.put(
                self._store_key(form, pruning),
                StoredResult(
                    canonical_hash=form.hash,
                    # The result's own label, not the registry name (see the
                    # reconstruction in _resolve_from_store).
                    algorithm=item.result.algorithm,
                    fingerprint=request_fingerprint(self.constraints, pruning),
                    masks=[
                        form.to_canonical_mask(cut.node_mask())
                        for cut in item.result.cuts
                    ],
                    stats=item.result.stats,
                ),
            )

    def _run_sequential(
        self,
        algorithm,
        pruning: Optional[PruningConfig],
        items: List[BatchItem],
    ) -> None:
        for item in items:
            item.context = self.cache.get(item.graph, self.constraints)
            context = item.context if algorithm.capabilities.supports_context else None
            start = time.perf_counter()
            try:
                item.result = algorithm.enumerate(
                    EnumerationRequest(
                        graph=item.graph,
                        constraints=self.constraints,
                        pruning=pruning,
                        context=context,
                    )
                )
            except (ValueError, RecursionError) as exc:
                item.error = f"{type(exc).__name__}: {exc}"
            item.elapsed_seconds = time.perf_counter() - start
            if self.timeout is not None and item.elapsed_seconds > self.timeout:
                item.timed_out = True

    def _run_parallel(
        self, pruning: Optional[PruningConfig], items: List[BatchItem]
    ) -> None:
        pool = ProcessPoolExecutor(max_workers=min(self.jobs, len(items)))
        abandoned = False
        try:
            graph_dicts = [graph_to_dict(item.graph) for item in items]
            futures = [
                pool.submit(
                    _enumerate_serialized_block,
                    (self.algorithm, graph_dict, self.constraints, pruning),
                )
                for item, graph_dict in zip(items, graph_dicts)
            ]
            for item, graph_dict, future in zip(items, graph_dicts, futures):
                try:
                    payload = future.result(timeout=self.timeout)
                except FuturesTimeoutError:
                    item.timed_out = True
                    abandoned = True
                    future.cancel()
                    continue
                except Exception as exc:  # worker-side failure, e.g. oracle limit
                    item.error = f"{type(exc).__name__}: {exc}"
                    continue
                item.context = self.cache.get(
                    item.graph,
                    self.constraints,
                    fingerprint=json.dumps(graph_dict, sort_keys=True),
                )
                item.result = EnumerationResult(
                    cuts=[Cut.from_mask(item.context, mask) for mask in payload["masks"]],
                    stats=payload["stats"],
                    graph_name=payload["graph_name"],
                    algorithm=payload["algorithm"],
                )
                item.elapsed_seconds = payload["stats"].elapsed_seconds
        finally:
            if abandoned:
                # A timed-out task cannot be cancelled cooperatively, and a
                # worker stuck in it would also block interpreter exit (the
                # executor joins its workers atexit) — kill the processes.
                workers = list((getattr(pool, "_processes", None) or {}).values())
                pool.shutdown(wait=False, cancel_futures=True)
                for process in workers:
                    process.terminate()
            else:
                pool.shutdown(wait=True, cancel_futures=True)


def enumerate_batch(
    blocks: BatchInput,
    algorithm: str = DEFAULT_ALGORITHM,
    constraints: Optional[Constraints] = None,
    pruning: Optional[PruningConfig] = None,
    jobs: int = 1,
    timeout: Optional[float] = None,
) -> BatchReport:
    """One-shot convenience wrapper around :class:`BatchRunner`."""
    runner = BatchRunner(
        algorithm=algorithm,
        constraints=constraints,
        pruning=pruning,
        jobs=jobs,
        timeout=timeout,
    )
    return runner.run(blocks)
