"""Pluggable enumeration-algorithm registry.

Every enumerator in the library — the two polynomial algorithms of the paper,
the pruned exhaustive baseline, the brute-force oracle and the connected-only
search — answers the same question ("which convex cuts of this basic block
satisfy the constraints?") behind a different function signature.  This module
puts them behind one interface:

* :class:`EnumerationRequest` — everything an enumeration run needs (graph,
  constraints, optional pruning configuration, optional pre-built context);
* :class:`RegisteredAlgorithm` — a named algorithm with
  :class:`AlgorithmCapabilities` describing what it supports;
* :func:`register_algorithm` / :func:`get_algorithm` /
  :func:`available_algorithms` — the registry proper.

The five built-in algorithms are registered at import time; downstream code
(CLI ``--algorithm`` flags, the batch runner, the comparison harness) resolves
algorithms exclusively through this registry, so a new enumerator becomes
visible everywhere by registering it once.

Note that worker processes of the batch runner re-import this module, so only
algorithms registered at module import time (such as the built-ins) are
available for parallel batch runs; dynamically registered algorithms work in
in-process runs only.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..baselines.brute_force import MAX_CANDIDATES, enumerate_cuts_brute_force
from ..baselines.connected_only import enumerate_connected_cuts
from ..baselines.exhaustive import enumerate_cuts_exhaustive
from ..baselines.legacy_incremental import enumerate_cuts_legacy
from ..core.constraints import Constraints
from ..core.context import EnumerationContext
from ..core.enumeration import enumerate_cuts_basic
from ..core.incremental import enumerate_cuts
from ..core.pruning import FULL_PRUNING, PruningConfig
from ..core.stats import EnumerationResult
from ..dfg.graph import DataFlowGraph

#: The algorithm used when callers do not ask for a specific one: the
#: incremental polynomial algorithm the paper benchmarks.
DEFAULT_ALGORITHM = "poly-enum-incremental"

#: Semantics labels describing which cut population an algorithm targets.
#: ``all-valid`` algorithms return the identical, complete cut set on every
#: graph (the equivalence test-suite asserts this); ``paper-enumerable``
#: algorithms return the input/output-identified subset reachable by the
#: paper's construction (the two polynomial variants may differ on a few
#: borderline cuts, see EXPERIMENTS.md); ``connected`` restricts to
#: connected bodies.  Every algorithm's result is a subset of ``all-valid``.
SEMANTICS_PAPER = "paper-enumerable"
SEMANTICS_ALL_VALID = "all-valid"
SEMANTICS_CONNECTED = "connected"


@dataclass(frozen=True)
class AlgorithmCapabilities:
    """What a registered algorithm supports.

    Attributes
    ----------
    supports_pruning:
        The algorithm honours a :class:`PruningConfig`; passing one to an
        algorithm without this flag is an error.
    supports_context:
        The algorithm accepts a pre-built :class:`EnumerationContext` (built
        with the same graph and constraints).  Algorithms that internally
        rewrite the constraints (the connected-only search) do not.
    oracle_only:
        Exponential-time ground truth, usable only on small graphs; skipped
        by harnesses that run "every practical algorithm".
    max_candidate_nodes:
        Hard limit on the number of candidate vertices, or ``None``.
    semantics:
        Which cut set the algorithm enumerates (see the ``SEMANTICS_*``
        constants).  ``paper-enumerable`` is a subset of ``all-valid``;
        ``connected`` is the subset of ``all-valid`` with connected bodies.
    """

    supports_pruning: bool = False
    supports_context: bool = True
    oracle_only: bool = False
    max_candidate_nodes: Optional[int] = None
    semantics: str = SEMANTICS_PAPER


@dataclass(frozen=True)
class EnumerationRequest:
    """One enumeration job: a basic block plus how to enumerate it."""

    graph: DataFlowGraph
    constraints: Optional[Constraints] = None
    pruning: Optional[PruningConfig] = None
    context: Optional[EnumerationContext] = None


#: Adapter signature every registered algorithm is wrapped into.
RunCallable = Callable[[EnumerationRequest], EnumerationResult]


@dataclass(frozen=True)
class RegisteredAlgorithm:
    """A named enumeration algorithm with capability metadata.

    Instances satisfy the informal ``Enumerator`` protocol: a ``name``,
    ``capabilities``, and an ``enumerate(request)`` method returning an
    :class:`EnumerationResult`.
    """

    name: str
    run: RunCallable
    capabilities: AlgorithmCapabilities = field(default_factory=AlgorithmCapabilities)
    description: str = ""
    aliases: Tuple[str, ...] = ()

    def enumerate(self, request: EnumerationRequest) -> EnumerationResult:
        """Run the algorithm on *request*, enforcing the capability flags."""
        if request.pruning is not None and not self.capabilities.supports_pruning:
            raise ValueError(
                f"algorithm {self.name!r} does not support a pruning configuration"
            )
        if not self.capabilities.supports_context and request.context is not None:
            request = EnumerationRequest(
                graph=request.graph,
                constraints=request.constraints,
                pruning=request.pruning,
            )
        return self.run(request)

    def __call__(
        self,
        graph: DataFlowGraph,
        constraints: Optional[Constraints] = None,
        pruning: Optional[PruningConfig] = None,
        context: Optional[EnumerationContext] = None,
    ) -> EnumerationResult:
        """Convenience: build the request from keyword arguments and run it."""
        return self.enumerate(
            EnumerationRequest(
                graph=graph,
                constraints=constraints,
                pruning=pruning,
                context=context,
            )
        )


_REGISTRY: Dict[str, RegisteredAlgorithm] = {}
_ALIASES: Dict[str, str] = {}


def register_algorithm(
    name: str,
    run: RunCallable,
    capabilities: Optional[AlgorithmCapabilities] = None,
    description: str = "",
    aliases: Tuple[str, ...] = (),
    replace: bool = False,
) -> RegisteredAlgorithm:
    """Register an enumeration algorithm under *name* (and optional aliases).

    Raises ``ValueError`` if the name or an alias is already taken, unless
    *replace* is set.
    """
    algorithm = RegisteredAlgorithm(
        name=name,
        run=run,
        capabilities=capabilities or AlgorithmCapabilities(),
        description=description,
        aliases=tuple(aliases),
    )
    taken = [
        label
        for label in (name, *algorithm.aliases)
        if label in _REGISTRY or label in _ALIASES
    ]
    if taken and not replace:
        raise ValueError(f"algorithm name(s) already registered: {', '.join(taken)}")
    if replace:
        for label in taken:
            canonical = _ALIASES.pop(label, label)
            _REGISTRY.pop(canonical, None)
            for alias, target in list(_ALIASES.items()):
                if target == canonical:
                    del _ALIASES[alias]
    _REGISTRY[name] = algorithm
    for alias in algorithm.aliases:
        _ALIASES[alias] = name
    return algorithm


def unregister_algorithm(name: str) -> None:
    """Remove an algorithm (and its aliases) from the registry."""
    canonical = resolve_algorithm_name(name)
    del _REGISTRY[canonical]
    for alias, target in list(_ALIASES.items()):
        if target == canonical:
            del _ALIASES[alias]


def resolve_algorithm_name(name: str) -> str:
    """Canonical registry name for *name* (which may be an alias)."""
    if name in _REGISTRY:
        return name
    if name in _ALIASES:
        return _ALIASES[name]
    raise KeyError(
        f"unknown enumeration algorithm {name!r}; "
        f"available: {', '.join(available_algorithms())}"
    )


def get_algorithm(name: str) -> RegisteredAlgorithm:
    """Look up an algorithm by canonical name or alias."""
    return _REGISTRY[resolve_algorithm_name(name)]


def available_algorithms(include_oracles: bool = True) -> List[str]:
    """Sorted canonical names of the registered algorithms."""
    return sorted(
        name
        for name, algorithm in _REGISTRY.items()
        if include_oracles or not algorithm.capabilities.oracle_only
    )


def algorithm_aliases() -> Dict[str, str]:
    """Mapping of every registered alias to its canonical name."""
    return dict(_ALIASES)


# --------------------------------------------------------------------------- #
# Built-in algorithms
# --------------------------------------------------------------------------- #
def _run_incremental(request: EnumerationRequest) -> EnumerationResult:
    return enumerate_cuts(
        request.graph,
        request.constraints,
        pruning=request.pruning or FULL_PRUNING,
        context=request.context,
    )


def _run_basic(request: EnumerationRequest) -> EnumerationResult:
    return enumerate_cuts_basic(request.graph, request.constraints, context=request.context)


def _run_exhaustive(request: EnumerationRequest) -> EnumerationResult:
    return enumerate_cuts_exhaustive(
        request.graph, request.constraints, context=request.context
    )


def _run_brute_force(request: EnumerationRequest) -> EnumerationResult:
    return enumerate_cuts_brute_force(
        request.graph, request.constraints, context=request.context
    )


def _run_connected(request: EnumerationRequest) -> EnumerationResult:
    return enumerate_connected_cuts(request.graph, request.constraints)


def _run_legacy_incremental(request: EnumerationRequest) -> EnumerationResult:
    return enumerate_cuts_legacy(
        request.graph,
        request.constraints,
        pruning=request.pruning or FULL_PRUNING,
        context=request.context,
    )


register_algorithm(
    DEFAULT_ALGORITHM,
    _run_incremental,
    AlgorithmCapabilities(supports_pruning=True, semantics=SEMANTICS_PAPER),
    description="Incremental polynomial algorithm (Figure 3) with Section 5.3 prunings",
    aliases=("poly", "incremental"),
)
register_algorithm(
    "poly-enum-basic",
    _run_basic,
    AlgorithmCapabilities(semantics=SEMANTICS_PAPER),
    description="Reference polynomial algorithm (Figure 2)",
    aliases=("basic",),
)
register_algorithm(
    "exhaustive",
    _run_exhaustive,
    AlgorithmCapabilities(semantics=SEMANTICS_ALL_VALID),
    description="Pruned exhaustive search in the style of Atasu/Pozzi/Ienne [4][15]",
    aliases=("exhaustive-pruned", "exhaustive-[15]"),
)
register_algorithm(
    "brute-force",
    _run_brute_force,
    AlgorithmCapabilities(
        oracle_only=True,
        max_candidate_nodes=MAX_CANDIDATES,
        semantics=SEMANTICS_ALL_VALID,
    ),
    description="Exponential subset oracle (ground truth for small graphs)",
    aliases=("oracle",),
)
register_algorithm(
    "connected-only",
    _run_connected,
    AlgorithmCapabilities(supports_context=False, semantics=SEMANTICS_CONNECTED),
    description="Connected-cut enumeration (Yu & Mitra [17] style restriction)",
    aliases=("connected",),
)
register_algorithm(
    "poly-enum-incremental-legacy",
    _run_legacy_incremental,
    AlgorithmCapabilities(supports_pruning=True, semantics=SEMANTICS_PAPER),
    description=(
        "Pre-optimization snapshot of the incremental algorithm — the "
        "measured baseline of the perf-regression gate (bit-identical cuts, "
        "old cost profile)"
    ),
    aliases=("legacy",),
)
