"""Unified enumeration engine: algorithm registry + multi-block batch runner.

This package is the single entry point every consumer (CLI, ISE pipeline,
comparison harness, benchmarks) uses to run cut enumeration:

* :mod:`repro.engine.registry` — the five enumeration algorithms behind one
  ``EnumerationRequest → EnumerationResult`` interface, with capability flags
  and name-based lookup;
* :mod:`repro.engine.batch` — the :class:`BatchRunner` that drives a whole
  workload (many basic blocks) through one algorithm, optionally across
  worker processes, with deterministic input-ordered results.
"""

from .batch import (
    BatchItem,
    BatchReport,
    BatchRunner,
    ContextCache,
    enumerate_batch,
    normalize_blocks,
    resolve_jobs,
)
from .registry import (
    DEFAULT_ALGORITHM,
    SEMANTICS_ALL_VALID,
    SEMANTICS_CONNECTED,
    SEMANTICS_PAPER,
    AlgorithmCapabilities,
    EnumerationRequest,
    RegisteredAlgorithm,
    algorithm_aliases,
    available_algorithms,
    get_algorithm,
    register_algorithm,
    resolve_algorithm_name,
    unregister_algorithm,
)

__all__ = [
    "BatchItem",
    "BatchReport",
    "BatchRunner",
    "ContextCache",
    "enumerate_batch",
    "normalize_blocks",
    "resolve_jobs",
    "DEFAULT_ALGORITHM",
    "SEMANTICS_ALL_VALID",
    "SEMANTICS_CONNECTED",
    "SEMANTICS_PAPER",
    "AlgorithmCapabilities",
    "EnumerationRequest",
    "RegisteredAlgorithm",
    "algorithm_aliases",
    "available_algorithms",
    "get_algorithm",
    "register_algorithm",
    "resolve_algorithm_name",
    "unregister_algorithm",
]
