"""Frozen pre-optimization snapshot of the incremental enumerator.

This module preserves, verbatim in behaviour and in *cost profile*, the
``POLY-ENUM-INCR`` implementation as it stood before the hot-path kernel
optimisation (contribution tables, the per-reachable-region dominator cache
and the closure-based validity fast path).  It exists for exactly one
purpose: to be the measured baseline of ``benchmarks/bench_core.py`` and the
bit-identity reference of the randomized property tests — every optimisation
of :mod:`repro.core.incremental` must reproduce this enumerator's cut sets
exactly, and the perf-regression gate reports the optimized/legacy speedup.

Because the optimized code paths replaced the helpers this snapshot relied
on, the old implementations are inlined here:

* shift-based mask iteration and ``bin(mask).count("1")`` popcounts;
* ``B(V, w)`` derived per call from the descendant masks;
* per-cut input/output/convexity re-derivation through the loop-based
  ``check_cut_mask`` equivalents;
* one Lengauer–Tarjan run per *(input set, output)* pair, memoised only for
  the lifetime of a single enumeration.

Do not "fix" or speed up anything in this file; it is intentionally the old
code.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.constraints import Constraints
from ..core.context import EnumerationContext
from ..core.cut import Cut
from ..core.pruning import FULL_PRUNING, PruningConfig
from ..core.stats import EnumerationResult, EnumerationStats, Stopwatch
from ..core.validity import _cut_depth, _is_connected_mask
from ..dfg.graph import DataFlowGraph
from ..dominators.generalized import reachable_mask_avoiding
from ..dominators.multi_vertex import CompletionResult, dominator_completions

ALGORITHM_NAME = "poly-enum-incremental-legacy"


# --------------------------------------------------------------------------- #
# The pre-optimization mask helpers (shift-based iteration, string popcount)
# --------------------------------------------------------------------------- #
def _popcount(mask: int) -> int:
    return bin(mask).count("1")


def _iterate_mask(mask: int):
    index = 0
    while mask:
        if mask & 1:
            yield index
        mask >>= 1
        index += 1


def _ids_from_mask(mask: int) -> List[int]:
    result = []
    index = 0
    while mask:
        if mask & 1:
            result.append(index)
        mask >>= 1
        index += 1
    return result


def _between_mask(reach, sources_mask: int, target: int) -> int:
    """Pre-optimization ``B(V, w)``: per-call union of descendant masks."""
    reach_down = 0
    remaining = sources_mask
    index = 0
    while remaining:
        if remaining & 1:
            reach_down |= reach.descendants_mask(index)
        remaining >>= 1
        index += 1
    return reach_down & (reach.ancestors_mask(target) | (1 << target))


def _cut_inputs_mask(reach, cut_mask: int) -> int:
    inputs = 0
    for v in _iterate_mask(cut_mask):
        inputs |= reach.predecessors_mask(v)
    return inputs & ~cut_mask


def _cut_outputs_mask(reach, cut_mask: int) -> int:
    outputs = 0
    for v in _iterate_mask(cut_mask):
        if reach.successors_mask(v) & ~cut_mask:
            outputs |= 1 << v
    return outputs


def _is_convex_mask(reach, cut_mask: int) -> bool:
    for v in _iterate_mask(cut_mask):
        escaped = reach.successors_mask(v) & ~cut_mask
        for w in _iterate_mask(escaped):
            if reach.descendants_mask(w) & cut_mask:
                return False
    return True


def _check_cut_valid(context: EnumerationContext, node_mask: int) -> bool:
    """The pre-optimization per-cut validity re-derivation.

    Field-for-field equivalent to the old ``check_cut_mask(...).valid``: the
    inputs, outputs and convexity of the candidate are derived from scratch
    with the loop-based helpers above.
    """
    if node_mask == 0:
        return False
    reach = context.reach
    has_forbidden = bool(node_mask & context.forbidden_mask)
    # The old report object computed every field unconditionally.
    convex = _is_convex_mask(reach, node_mask)
    inputs_mask = _cut_inputs_mask(reach, node_mask)
    outputs_mask = _cut_outputs_mask(reach, node_mask)
    too_many_inputs = _popcount(inputs_mask) > context.max_inputs
    too_many_outputs = _popcount(outputs_mask) > context.max_outputs
    constraints = context.constraints
    disconnected = False
    if constraints.connected_only and convex and not has_forbidden:
        disconnected = not _is_connected_mask(context, node_mask, outputs_mask)
    too_deep = False
    if constraints.max_depth is not None:
        too_deep = _cut_depth(context, node_mask) > constraints.max_depth
    return not (
        has_forbidden
        or not convex
        or too_many_inputs
        or too_many_outputs
        or disconnected
        or too_deep
    )


# --------------------------------------------------------------------------- #
# The enumerator, as it stood before the optimisation PR
# --------------------------------------------------------------------------- #
def enumerate_cuts_legacy(
    graph: DataFlowGraph,
    constraints: Optional[Constraints] = None,
    pruning: PruningConfig = FULL_PRUNING,
    context: Optional[EnumerationContext] = None,
) -> EnumerationResult:
    """Enumerate all convex cuts with the pre-optimization incremental algorithm."""
    enumerator = LegacyIncrementalEnumerator(graph, constraints, pruning, context)
    return enumerator.run()


class LegacyIncrementalEnumerator:
    """Pre-optimization ``POLY-ENUM-INCR`` (Figure 3), kept as the perf baseline."""

    def __init__(
        self,
        graph: DataFlowGraph,
        constraints: Optional[Constraints] = None,
        pruning: PruningConfig = FULL_PRUNING,
        context: Optional[EnumerationContext] = None,
    ) -> None:
        self.graph = graph
        self.ctx = context or EnumerationContext.build(graph, constraints)
        self.pruning = pruning
        self.stats = EnumerationStats()
        self._found: Dict[int, Cut] = {}
        # Per-run memoisation only: the old implementation rebuilt these for
        # every enumeration, even on a warm, shared context.
        self._completion_cache: Dict[Tuple[int, int], object] = {}
        self._reachable_cache: Dict[int, int] = {}
        self._visited_states: set = set()
        topo_positions = {
            v: i for i, v in enumerate(self.ctx.augmented.graph.topological_order())
        }
        self._output_candidates: List[int] = sorted(
            self.ctx.candidate_nodes, key=lambda v: topo_positions[v]
        )
        self._forbidden_succ_mask = self._nodes_with_forbidden_successor()

    # ------------------------------------------------------------------ #
    def run(self) -> EnumerationResult:
        with Stopwatch(self.stats):
            self._pick_output(
                inputs_mask=0,
                outputs_mask=0,
                body_mask=0,
                chosen=(),
                nin_left=self.ctx.max_inputs,
                nout_left=self.ctx.max_outputs,
            )
        self.stats.cuts_found = len(self._found)
        return EnumerationResult(
            cuts=list(self._found.values()),
            stats=self.stats,
            graph_name=self.graph.name,
            algorithm=ALGORITHM_NAME,
        )

    # ------------------------------------------------------------------ #
    def _pick_output(
        self,
        inputs_mask: int,
        outputs_mask: int,
        body_mask: int,
        chosen: Tuple[int, ...],
        nin_left: int,
        nout_left: int,
    ) -> None:
        self.stats.pick_output_calls += 1
        ctx = self.ctx
        reach = ctx.reach
        postdom = ctx.postdom_tree

        has_internal_outputs = False
        if chosen and (self.pruning.connected_recovery or ctx.constraints.connected_only):
            effective = body_mask & ~inputs_mask & ~ctx.forbidden_mask
            current_outputs = _cut_outputs_mask(reach, effective)
            has_internal_outputs = _popcount(current_outputs) > len(chosen)

        for output in self._output_candidates:
            if (outputs_mask >> output) & 1:
                continue
            if self._inadmissible_output(postdom, chosen, output):
                continue
            if self.pruning.output_output and self._ancestor_of_chosen(output, chosen):
                self.stats.count_pruned("output_output")
                continue
            if chosen and self._requires_connected(has_internal_outputs):
                if inputs_mask == 0 or not reach.reached_by_any(output, inputs_mask):
                    self.stats.count_pruned("connectedness")
                    continue

            new_outputs_mask = outputs_mask | (1 << output)
            if inputs_mask:
                new_body_mask = body_mask | _between_mask(reach, inputs_mask, output)
            else:
                new_body_mask = body_mask

            if inputs_mask and self._dominates(inputs_mask, output):
                self._check_cut(
                    inputs_mask,
                    new_outputs_mask,
                    new_body_mask,
                    chosen + (output,),
                    nin_left,
                    nout_left - 1,
                )
            elif nin_left > 0:
                self._pick_inputs(
                    inputs_mask,
                    output,
                    new_outputs_mask,
                    new_body_mask,
                    chosen + (output,),
                    nin_left,
                    nout_left - 1,
                )

    def _requires_connected(self, has_internal_outputs: bool) -> bool:
        if self.ctx.constraints.connected_only:
            return True
        return self.pruning.connected_recovery and has_internal_outputs

    def _inadmissible_output(self, postdom, chosen: Tuple[int, ...], output: int) -> bool:
        for previous in chosen:
            if postdom.dominates(previous, output) or postdom.dominates(output, previous):
                return True
        return False

    def _ancestor_of_chosen(self, output: int, chosen: Tuple[int, ...]) -> bool:
        reach = self.ctx.reach
        for previous in chosen:
            if reach.has_path(output, previous):
                return True
        return False

    # ------------------------------------------------------------------ #
    def _pick_inputs(
        self,
        inputs_mask: int,
        output: int,
        outputs_mask: int,
        body_mask: int,
        chosen: Tuple[int, ...],
        nin_left: int,
        nout_left: int,
    ) -> None:
        self.stats.pick_input_calls += 1
        ctx = self.ctx
        reach = ctx.reach

        state = (inputs_mask, outputs_mask, body_mask, output)
        if state in self._visited_states:
            return
        self._visited_states.add(state)

        step = self._completions(inputs_mask, output)

        if step.already_dominated:
            self._check_cut(
                inputs_mask, outputs_mask, body_mask, chosen, nin_left, nout_left
            )
            return

        for completion in step.completions:
            if completion == ctx.source or (inputs_mask >> completion) & 1:
                continue
            if self.pruning.output_input and self._output_input_prune(
                completion, output, inputs_mask
            ):
                continue
            if self.pruning.input_input and self._input_input_prune(
                inputs_mask, completion
            ):
                continue
            new_inputs_mask = inputs_mask | (1 << completion)
            new_body_mask = body_mask | _between_mask(reach, 1 << completion, output)
            if self.pruning.prune_while_building and self._prune_body(
                new_body_mask, new_inputs_mask
            ):
                continue
            self._check_cut(
                new_inputs_mask,
                outputs_mask,
                new_body_mask,
                chosen,
                nin_left - 1,
                nout_left,
            )

        if nin_left > 1:
            for seed in self._seed_candidates(output, inputs_mask):
                if self.pruning.output_input and self._output_input_prune(
                    seed, output, inputs_mask
                ):
                    continue
                if self.pruning.input_input and self._input_input_prune(
                    inputs_mask, seed
                ):
                    continue
                new_inputs_mask = inputs_mask | (1 << seed)
                new_body_mask = body_mask | _between_mask(reach, 1 << seed, output)
                if self.pruning.prune_while_building and self._prune_body(
                    new_body_mask, new_inputs_mask
                ):
                    continue
                self._pick_inputs(
                    new_inputs_mask,
                    output,
                    outputs_mask,
                    new_body_mask,
                    chosen,
                    nin_left - 1,
                    nout_left,
                )

    def _seed_candidates(self, output: int, inputs_mask: int) -> List[int]:
        ctx = self.ctx
        ancestors = ctx.ancestors_mask(output)
        ancestors &= ~(1 << ctx.source)
        ancestors &= ~inputs_mask
        return _ids_from_mask(ancestors)

    # ------------------------------------------------------------------ #
    def _nodes_with_forbidden_successor(self) -> int:
        ctx = self.ctx
        mask = 0
        for vertex in ctx.candidate_nodes:
            if ctx.reach.successors_mask(vertex) & ctx.forbidden_mask:
                mask |= 1 << vertex
        return mask

    def _prune_body(self, body_mask: int, inputs_mask: int) -> bool:
        effective = body_mask & ~inputs_mask & ~self.ctx.forbidden_mask
        unavoidable_outputs = _popcount(effective & self._forbidden_succ_mask)
        if unavoidable_outputs > self.ctx.max_outputs:
            self.stats.count_pruned("too_many_unavoidable_outputs")
            return True
        return False

    def _output_input_prune(self, candidate: int, output: int, inputs_mask: int) -> bool:
        ctx = self.ctx
        reach = ctx.reach
        interior = (
            reach.descendants_mask(candidate)
            & reach.ancestors_mask(output)
            & ctx.forbidden_mask
            & ~inputs_mask
        )
        if interior:
            self.stats.count_pruned("output_input_forbidden_path")
            return True
        return False

    def _input_input_prune(self, inputs_mask: int, candidate: int) -> bool:
        postdom = self.ctx.postdom_tree
        for existing in _iterate_mask(inputs_mask):
            if postdom.dominates(candidate, existing) or postdom.dominates(
                existing, candidate
            ):
                self.stats.count_pruned("input_input_postdom")
                return True
        return False

    def _reachable_avoiding(self, inputs_mask: int) -> int:
        cached = self._reachable_cache.get(inputs_mask)
        if cached is not None:
            return cached
        reachable = reachable_mask_avoiding(
            self.ctx.num_nodes,
            self.ctx.successor_lists,
            self.ctx.source,
            inputs_mask,
        )
        self._reachable_cache[inputs_mask] = reachable
        return reachable

    def _completions(self, inputs_mask: int, output: int):
        """One Lengauer–Tarjan run per fresh (input region, output) pair."""
        reachable = self._reachable_avoiding(inputs_mask)
        if not ((reachable >> output) & 1):
            return CompletionResult(already_dominated=True, completions=[], lt_calls=0)
        key = (reachable, output)
        cached = self._completion_cache.get(key)
        if cached is not None:
            return cached
        step = dominator_completions(
            self.ctx.num_nodes,
            self.ctx.successor_lists,
            self.ctx.source,
            output,
            seed_mask=inputs_mask,
        )
        self.stats.lt_calls += step.lt_calls
        self._completion_cache[key] = step
        return step

    def _dominates(self, inputs_mask: int, output: int) -> bool:
        if not inputs_mask:
            return False
        reachable = self._reachable_avoiding(inputs_mask)
        return not ((reachable >> output) & 1)

    # ------------------------------------------------------------------ #
    def _check_cut(
        self,
        inputs_mask: int,
        outputs_mask: int,
        body_mask: int,
        chosen: Tuple[int, ...],
        nin_left: int,
        nout_left: int,
    ) -> None:
        state = (inputs_mask, outputs_mask, body_mask)
        if state in self._visited_states:
            self.stats.duplicates += 1
            return
        self._visited_states.add(state)
        self.stats.candidates_checked += 1
        self._maybe_record(inputs_mask, outputs_mask, body_mask)
        if nout_left > 0:
            self._pick_output(
                inputs_mask, outputs_mask, body_mask, chosen, nin_left, nout_left
            )

    def _maybe_record(self, inputs_mask: int, outputs_mask: int, body_mask: int) -> None:
        ctx = self.ctx
        effective = body_mask & ~inputs_mask & ~ctx.forbidden_mask
        if effective == 0:
            return
        actual_outputs = _cut_outputs_mask(ctx.reach, effective)
        if self.pruning.output_output:
            if _popcount(actual_outputs) > ctx.max_outputs:
                return
        else:
            if actual_outputs != outputs_mask:
                return
        if effective in self._found:
            self.stats.duplicates += 1
            return
        if not _check_cut_valid(ctx, effective):
            return
        self._found[effective] = Cut.from_mask(ctx, effective)
