"""Pruned exhaustive subgraph search in the style of Atasu et al. [4] / Pozzi et al. [15].

This is the comparison baseline of Figure 5 of the paper.  The search space is
binary: every candidate vertex is either inside or outside the cut.  Vertices
are decided in **reverse topological order** (consumers before producers), a
choice that makes three pruning rules sound and cheap:

* *output check* — when a vertex is included, all of its successors have
  already been decided, so its output status is permanent; the running output
  count can therefore never decrease and exceeding ``Nout`` prunes the whole
  subtree;
* *permanent-input check* — inputs caused by already-excluded or forbidden
  predecessors can never disappear; more than ``Nin`` of them prunes the
  subtree;
* *convexity check* — including a vertex whose path to an already included
  vertex crosses an excluded vertex can never be repaired, so the include
  branch is pruned.

The algorithm is complete (it enumerates exactly the valid convex cuts under
the constraints) and exhibits the exponential worst case the paper reports on
tree-shaped graphs, which is what Figure 4/5 demonstrate against the
polynomial algorithm.
"""

from __future__ import annotations

import sys
from typing import Dict, List, Optional

from ..core.constraints import Constraints
from ..core.context import EnumerationContext
from ..core.cut import Cut
from ..core.stats import EnumerationResult, EnumerationStats, Stopwatch
from ..core.validity import is_valid_cut_mask
from ..dfg.graph import DataFlowGraph
from ..dfg.reachability import popcount

ALGORITHM_NAME = "exhaustive-pruned"


def enumerate_cuts_exhaustive(
    graph: DataFlowGraph,
    constraints: Optional[Constraints] = None,
    context: Optional[EnumerationContext] = None,
    use_pruning: bool = True,
) -> EnumerationResult:
    """Enumerate all valid convex cuts by pruned binary search over the vertices.

    Parameters
    ----------
    use_pruning:
        When ``False`` the constraint checks are applied only at the leaves of
        the search tree, which reproduces the un-pruned exponential behaviour
        (useful for the ablation benchmarks; keep the graphs small).
    """
    ctx = context or EnumerationContext.build(graph, constraints)
    searcher = _ExhaustiveSearch(ctx, use_pruning=use_pruning)
    return searcher.run(graph.name)


class _ExhaustiveSearch:
    """Recursive include/exclude exploration with constraint propagation."""

    def __init__(self, ctx: EnumerationContext, use_pruning: bool = True) -> None:
        self.ctx = ctx
        self.use_pruning = use_pruning
        self.stats = EnumerationStats()
        self.found: Dict[int, Cut] = {}
        # Reverse topological order restricted to candidate vertices:
        # successors are decided before their producers.
        topo = ctx.augmented.graph.topological_order()
        self.order: List[int] = [v for v in reversed(topo) if ctx.is_candidate(v)]
        # Vertices that can never be part of a cut count as permanently
        # excluded from the start.
        self.never_included_mask = ~ctx.candidate_mask

    def run(self, graph_name: str) -> EnumerationResult:
        """Execute the search."""
        old_limit = sys.getrecursionlimit()
        sys.setrecursionlimit(max(old_limit, 2 * len(self.order) + 200))
        try:
            with Stopwatch(self.stats):
                self._explore(
                    index=0,
                    included_mask=0,
                    excluded_mask=0,
                    output_count=0,
                    included_ancestors_mask=0,
                )
        finally:
            sys.setrecursionlimit(old_limit)
        self.stats.cuts_found = len(self.found)
        return EnumerationResult(
            cuts=list(self.found.values()),
            stats=self.stats,
            graph_name=graph_name,
            algorithm=ALGORITHM_NAME if self.use_pruning else ALGORITHM_NAME + "-no-pruning",
        )

    # ------------------------------------------------------------------ #
    def _explore(
        self,
        index: int,
        included_mask: int,
        excluded_mask: int,
        output_count: int,
        included_ancestors_mask: int,
    ) -> None:
        ctx = self.ctx
        self.stats.pick_output_calls += 1  # doubles as a "search node" counter

        if index == len(self.order):
            if included_mask:
                self._record(included_mask)
            return

        vertex = self.order[index]
        reach = ctx.reach

        # ----- branch 1: include the vertex ------------------------------ #
        include_allowed = True
        new_output_count = output_count
        if self.use_pruning:
            # Convexity: a path from this vertex through an excluded vertex to
            # an already included vertex can never be repaired.
            blocked = (
                reach.descendants_mask(vertex)
                & (excluded_mask | self.never_included_mask)
                & included_ancestors_mask
            )
            if blocked:
                self.stats.count_pruned("convexity")
                include_allowed = False
            if include_allowed:
                # Output status of the vertex is already permanent.
                outside = reach.successors_mask(vertex) & ~included_mask
                if outside:
                    new_output_count = output_count + 1
                    if new_output_count > ctx.max_outputs:
                        self.stats.count_pruned("outputs")
                        include_allowed = False
            if include_allowed:
                permanent_inputs = self._permanent_inputs(
                    included_mask | (1 << vertex), excluded_mask
                )
                if permanent_inputs > ctx.max_inputs:
                    self.stats.count_pruned("inputs")
                    include_allowed = False
        else:
            outside = reach.successors_mask(vertex) & ~included_mask
            if outside:
                new_output_count = output_count + 1

        if include_allowed:
            self._explore(
                index + 1,
                included_mask | (1 << vertex),
                excluded_mask,
                new_output_count,
                included_ancestors_mask | reach.ancestors_mask(vertex),
            )

        # ----- branch 2: exclude the vertex ------------------------------ #
        if self.use_pruning:
            # Excluding the vertex may permanently push the input count of the
            # already included vertices above the budget.
            permanent_inputs = self._permanent_inputs(
                included_mask, excluded_mask | (1 << vertex)
            )
            if permanent_inputs > ctx.max_inputs:
                self.stats.count_pruned("inputs")
                return
        self._explore(
            index + 1,
            included_mask,
            excluded_mask | (1 << vertex),
            output_count,
            included_ancestors_mask,
        )

    def _permanent_inputs(self, included_mask: int, excluded_mask: int) -> int:
        """Inputs of the partial cut that no future decision can remove."""
        reach = self.ctx.reach
        inputs = reach.cut_inputs_mask(included_mask)
        permanent = inputs & (excluded_mask | self.never_included_mask)
        return popcount(permanent)

    def _record(self, included_mask: int) -> None:
        self.stats.candidates_checked += 1
        if included_mask in self.found:
            self.stats.duplicates += 1
            return
        if is_valid_cut_mask(self.ctx, included_mask):
            self.found[included_mask] = Cut.from_mask(self.ctx, included_mask)
