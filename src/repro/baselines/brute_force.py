"""Brute-force enumeration oracle.

Enumerates every subset of the candidate (non-forbidden) vertices and filters
by the validity predicates.  Exponential — usable only for the small graphs of
the test-suite, where it is the ground truth every other enumerator is
compared against.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, Optional

from ..core.constraints import Constraints
from ..core.context import EnumerationContext
from ..core.cut import Cut
from ..core.stats import EnumerationResult, EnumerationStats, Stopwatch
from ..core.validity import (
    enumerable_by_paper_algorithm,
    is_valid_cut_mask,
    satisfies_technical_condition,
)
from ..dfg.graph import DataFlowGraph

ALGORITHM_NAME = "brute-force"

#: Above this many candidate vertices the oracle refuses to run.
MAX_CANDIDATES = 22


def enumerate_cuts_brute_force(
    graph: DataFlowGraph,
    constraints: Optional[Constraints] = None,
    context: Optional[EnumerationContext] = None,
    paper_semantics: bool = False,
) -> EnumerationResult:
    """Enumerate every valid convex cut of *graph* by exhaustive subset search.

    Parameters
    ----------
    graph, constraints, context:
        As for the other enumerators.
    paper_semantics:
        When ``True`` the oracle additionally applies the two restrictions the
        paper's algorithm relies on (the Section 3 technical input condition
        and input/output identifiability), so the result predicts exactly what
        the polynomial algorithms report.  When ``False`` (default) every
        valid convex cut is returned.
    """
    ctx = context or EnumerationContext.build(graph, constraints)
    candidates = ctx.candidate_nodes
    if len(candidates) > MAX_CANDIDATES:
        raise ValueError(
            f"brute force oracle limited to {MAX_CANDIDATES} candidate vertices, "
            f"graph {graph.name!r} has {len(candidates)}"
        )

    stats = EnumerationStats()
    found: Dict[int, Cut] = {}
    accept = enumerable_by_paper_algorithm if paper_semantics else is_valid_cut_mask

    with Stopwatch(stats):
        for size in range(1, len(candidates) + 1):
            for combo in combinations(candidates, size):
                mask = 0
                for vertex in combo:
                    mask |= 1 << vertex
                stats.candidates_checked += 1
                if accept(ctx, mask):
                    found[mask] = Cut.from_mask(ctx, mask)

    stats.cuts_found = len(found)
    return EnumerationResult(
        cuts=list(found.values()),
        stats=stats,
        graph_name=graph.name,
        algorithm=ALGORITHM_NAME + ("-paper-semantics" if paper_semantics else ""),
    )


def count_excluded_by_technical_condition(
    graph: DataFlowGraph,
    constraints: Optional[Constraints] = None,
) -> Dict[str, int]:
    """Quantify how many valid cuts the paper's restrictions exclude.

    Returns a dictionary with the total number of valid convex cuts, the
    number satisfying the technical condition, and the number that are also
    input/output identified (i.e. reachable by the paper's construction).
    Used by the analysis examples and by the documentation of the
    completeness caveat.
    """
    ctx = EnumerationContext.build(graph, constraints)
    full = enumerate_cuts_brute_force(graph, constraints, context=ctx)
    technical = sum(
        1
        for cut in full.cuts
        if satisfies_technical_condition(ctx, cut.node_mask())
    )
    identified = sum(
        1
        for cut in full.cuts
        if enumerable_by_paper_algorithm(ctx, cut.node_mask())
    )
    return {
        "valid_cuts": len(full.cuts),
        "technical_condition": technical,
        "paper_enumerable": identified,
    }
