"""Connected-cut enumeration in the spirit of Yu and Mitra [17].

The related-work section of the paper singles out approaches that trade
generality for speed by only considering *connected* custom instructions.
This module provides such a baseline:

* for single-output instructions it grows "upward cones" from every candidate
  output vertex, extending the cut one predecessor at a time while the
  input/output budget still holds — the classic connected-MIMO-free scheme;
* for multi-output budgets it falls back to the library's incremental
  algorithm with the ``connected_only`` constraint, which the paper notes its
  algorithm supports directly (Section 5.3, "Connectedness").
"""

from __future__ import annotations

from typing import Dict, Optional

from ..core.constraints import Constraints
from ..core.context import EnumerationContext
from ..core.cut import Cut
from ..core.incremental import enumerate_cuts
from ..core.stats import EnumerationResult, EnumerationStats, Stopwatch
from ..core.validity import is_valid_cut_mask
from ..dfg.graph import DataFlowGraph
from ..dfg.reachability import iterate_mask, popcount

ALGORITHM_NAME = "connected-only"


def enumerate_connected_cuts(
    graph: DataFlowGraph,
    constraints: Optional[Constraints] = None,
    context: Optional[EnumerationContext] = None,
) -> EnumerationResult:
    """Enumerate connected convex cuts only.

    The returned cuts satisfy Definition 4 in addition to the usual
    constraints.  With ``max_outputs == 1`` a dedicated cone-growing search is
    used; otherwise the general algorithm runs with the ``connected_only``
    constraint switched on.
    """
    constraints = constraints or Constraints()
    connected_constraints = Constraints(
        max_inputs=constraints.max_inputs,
        max_outputs=constraints.max_outputs,
        allow_memory_ops=constraints.allow_memory_ops,
        connected_only=True,
        max_depth=constraints.max_depth,
        extra_forbidden=constraints.extra_forbidden,
    )
    ctx = context or EnumerationContext.build(graph, connected_constraints)

    if connected_constraints.max_outputs == 1:
        return _single_output_cones(graph, ctx)
    result = enumerate_cuts(graph, connected_constraints, context=ctx)
    return EnumerationResult(
        cuts=result.cuts,
        stats=result.stats,
        graph_name=graph.name,
        algorithm=ALGORITHM_NAME,
    )


def _single_output_cones(graph: DataFlowGraph, ctx: EnumerationContext) -> EnumerationResult:
    """Grow single-output connected cuts upwards from every candidate output."""
    stats = EnumerationStats()
    found: Dict[int, Cut] = {}

    with Stopwatch(stats):
        for output in ctx.candidate_nodes:
            visited = set()
            _grow(ctx, output, 1 << output, stats, found, visited)

    stats.cuts_found = len(found)
    return EnumerationResult(
        cuts=list(found.values()),
        stats=stats,
        graph_name=graph.name,
        algorithm=ALGORITHM_NAME,
    )


def _grow(
    ctx: EnumerationContext,
    output: int,
    body_mask: int,
    stats: EnumerationStats,
    found: Dict[int, Cut],
    visited: set,
) -> None:
    """Recursively extend *body_mask* with predecessors of its members."""
    if body_mask in visited:
        stats.duplicates += 1
        return
    visited.add(body_mask)
    stats.candidates_checked += 1
    if body_mask not in found and is_valid_cut_mask(ctx, body_mask):
        # Only keep cuts where the chosen vertex is the unique output.
        outputs = ctx.reach.cut_outputs_mask(body_mask)
        if outputs == (1 << output):
            found[body_mask] = Cut.from_mask(ctx, body_mask)

    # Candidate extensions: predecessors of current members that are allowed
    # and not yet included.  The input budget only bounds the *final* cut, so
    # the growth is throttled with a loose factor to keep the cone search from
    # exploring hopeless regions; the exact check happens above.
    frontier = 0
    for vertex in iterate_mask(body_mask):
        frontier |= ctx.reach.predecessors_mask(vertex)
    frontier &= ctx.candidate_mask & ~body_mask

    for candidate in iterate_mask(frontier):
        new_mask = body_mask | (1 << candidate)
        if new_mask in visited:
            continue
        inputs = ctx.reach.cut_inputs_mask(new_mask)
        if popcount(inputs) > 2 * ctx.max_inputs:
            continue
        _grow(ctx, output, new_mask, stats, found, visited)
