"""Baseline enumeration algorithms.

* :func:`enumerate_cuts_exhaustive` — the pruned exhaustive search of
  Atasu/Pozzi/Ienne [4][15], the comparison baseline of Figure 5;
* :func:`enumerate_cuts_brute_force` — exponential subset oracle for tests;
* :func:`enumerate_connected_cuts` — connected-only enumeration (Yu & Mitra
  [17] style restriction);
* :func:`enumerate_cuts_legacy` — frozen pre-optimization snapshot of the
  incremental enumerator, the measured baseline of the perf-regression gate.
"""

from .brute_force import (
    count_excluded_by_technical_condition,
    enumerate_cuts_brute_force,
)
from .connected_only import enumerate_connected_cuts
from .exhaustive import enumerate_cuts_exhaustive
from .legacy_incremental import enumerate_cuts_legacy

__all__ = [
    "count_excluded_by_technical_condition",
    "enumerate_cuts_brute_force",
    "enumerate_connected_cuts",
    "enumerate_cuts_exhaustive",
    "enumerate_cuts_legacy",
]
