"""Analysis and reporting: comparison harness, cut statistics, text reports."""

from .comparison import (
    AlgorithmEntry,
    BlockMeasurement,
    ComparisonReport,
    agreement_check,
    algorithms_from_registry,
    compare_on_suite,
    default_algorithms,
)
from .metrics import (
    CutPopulationStats,
    count_cuts_by_constraint,
    population_stats,
    result_summary,
)
from .reporting import cluster_summary, figure5_report, format_table, scatter_plot

__all__ = [
    "AlgorithmEntry",
    "BlockMeasurement",
    "ComparisonReport",
    "agreement_check",
    "algorithms_from_registry",
    "compare_on_suite",
    "default_algorithms",
    "CutPopulationStats",
    "count_cuts_by_constraint",
    "population_stats",
    "result_summary",
    "cluster_summary",
    "figure5_report",
    "format_table",
    "scatter_plot",
]
