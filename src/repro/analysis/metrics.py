"""Cut-population statistics.

Summaries of an enumeration result: how many cuts of each size/shape exist,
how the input/output budget is used, how many cuts are connected, and the
polynomial-growth counters used by the scaling experiment.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from ..core.context import EnumerationContext
from ..core.cut import Cut
from ..core.stats import EnumerationResult


@dataclass
class CutPopulationStats:
    """Aggregate statistics over a collection of cuts."""

    total: int = 0
    by_size: Dict[int, int] = field(default_factory=dict)
    by_num_inputs: Dict[int, int] = field(default_factory=dict)
    by_num_outputs: Dict[int, int] = field(default_factory=dict)
    max_size: int = 0
    mean_size: float = 0.0
    connected: int = 0
    multi_output: int = 0

    def summary(self) -> str:
        """Multi-line human-readable summary."""
        lines = [
            f"cuts               : {self.total}",
            f"largest cut        : {self.max_size} operations",
            f"mean cut size      : {self.mean_size:.2f}",
            f"connected cuts     : {self.connected}",
            f"multi-output cuts  : {self.multi_output}",
        ]
        lines.append(
            "size histogram     : "
            + ", ".join(f"{k}:{v}" for k, v in sorted(self.by_size.items()))
        )
        lines.append(
            "inputs histogram   : "
            + ", ".join(f"{k}:{v}" for k, v in sorted(self.by_num_inputs.items()))
        )
        lines.append(
            "outputs histogram  : "
            + ", ".join(f"{k}:{v}" for k, v in sorted(self.by_num_outputs.items()))
        )
        return "\n".join(lines)


def population_stats(
    cuts: Iterable[Cut], context: Optional[EnumerationContext] = None
) -> CutPopulationStats:
    """Compute :class:`CutPopulationStats` for *cuts*."""
    sizes: Counter = Counter()
    inputs: Counter = Counter()
    outputs: Counter = Counter()
    connected = 0
    multi_output = 0
    total = 0
    size_sum = 0

    for cut in cuts:
        total += 1
        size_sum += cut.num_nodes
        sizes[cut.num_nodes] += 1
        inputs[cut.num_inputs] += 1
        outputs[cut.num_outputs] += 1
        if cut.num_outputs > 1:
            multi_output += 1
        ctx = context or cut.context
        if ctx is not None and cut.is_connected(ctx):
            connected += 1

    return CutPopulationStats(
        total=total,
        by_size=dict(sizes),
        by_num_inputs=dict(inputs),
        by_num_outputs=dict(outputs),
        max_size=max(sizes) if sizes else 0,
        mean_size=(size_sum / total) if total else 0.0,
        connected=connected,
        multi_output=multi_output,
    )


def result_summary(result: EnumerationResult) -> str:
    """One-paragraph summary of an enumeration result (cuts + search stats)."""
    stats = population_stats(result.cuts)
    return (
        f"{result.algorithm} on {result.graph_name}: {stats.total} cuts "
        f"(max size {stats.max_size}, {stats.multi_output} multi-output) in "
        f"{result.stats.elapsed_seconds:.3f}s with {result.stats.lt_calls} "
        f"dominator computations"
    )


def count_cuts_by_constraint(
    results: Dict[str, EnumerationResult]
) -> List[Dict[str, object]]:
    """Tabulate cut counts for a dictionary ``{constraint_label: result}``."""
    rows = []
    for label, result in sorted(results.items()):
        rows.append(
            {
                "constraints": label,
                "cuts": len(result.cuts),
                "elapsed_seconds": result.stats.elapsed_seconds,
                "lt_calls": result.stats.lt_calls,
                "candidates": result.stats.candidates_checked,
            }
        )
    return rows
