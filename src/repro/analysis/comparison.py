"""Algorithm comparison harness (the machinery behind Figure 5).

Runs a set of enumeration algorithms over a workload suite, collecting wall
clock time, machine-independent work counters (Lengauer–Tarjan invocations for
the polynomial algorithm, explored search-tree nodes for the exhaustive one)
and the number of cuts found, and produces the per-block records that the
Figure 5 scatter plot and the scaling tables are generated from.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Union

from ..baselines.exhaustive import enumerate_cuts_exhaustive
from ..core.constraints import Constraints
from ..core.incremental import enumerate_cuts
from ..core.stats import EnumerationResult
from ..dfg.graph import DataFlowGraph
from ..engine.batch import BatchItem, BatchRunner, resolve_jobs
from ..engine.registry import (
    EnumerationRequest,
    available_algorithms,
    get_algorithm,
)
from ..memo.store import ResultStore

#: Signature of an algorithm entry: (graph, constraints) -> EnumerationResult.
AlgorithmCallable = Callable[[DataFlowGraph, Constraints], EnumerationResult]


@dataclass
class AlgorithmEntry:
    """One algorithm participating in a comparison.

    ``registry_name`` is set when the entry wraps a registered algorithm;
    only such entries can run in worker processes (``jobs >= 2``), because an
    arbitrary ``run`` callable cannot be shipped to another process.
    """

    name: str
    run: AlgorithmCallable
    registry_name: Optional[str] = None


@dataclass
class BlockMeasurement:
    """Measurements of one algorithm on one basic block."""

    graph_name: str
    algorithm: str
    num_operations: int
    num_edges: int
    cuts_found: int
    elapsed_seconds: float
    work_units: int
    cluster: str = ""


@dataclass
class ComparisonReport:
    """All measurements of a comparison run."""

    constraints: Constraints
    measurements: List[BlockMeasurement] = field(default_factory=list)

    def algorithms(self) -> List[str]:
        """Names of the algorithms that were measured."""
        return sorted({m.algorithm for m in self.measurements})

    def for_algorithm(self, name: str) -> List[BlockMeasurement]:
        """Measurements of one algorithm, in workload order."""
        return [m for m in self.measurements if m.algorithm == name]

    def paired(self, first: str, second: str) -> List[Dict[str, object]]:
        """Per-block pairing of two algorithms (the Figure 5 scatter points)."""
        by_graph_first = {m.graph_name: m for m in self.for_algorithm(first)}
        rows = []
        for measurement in self.for_algorithm(second):
            partner = by_graph_first.get(measurement.graph_name)
            if partner is None:
                continue
            rows.append(
                {
                    "graph": measurement.graph_name,
                    "cluster": measurement.cluster,
                    "num_operations": measurement.num_operations,
                    f"{first}_seconds": partner.elapsed_seconds,
                    f"{second}_seconds": measurement.elapsed_seconds,
                    f"{first}_cuts": partner.cuts_found,
                    f"{second}_cuts": measurement.cuts_found,
                    "speed_ratio": (
                        measurement.elapsed_seconds / partner.elapsed_seconds
                        if partner.elapsed_seconds > 0
                        else float("inf")
                    ),
                }
            )
        return rows


def algorithms_from_registry(
    names: Optional[Sequence[str]] = None,
    include_oracles: bool = False,
) -> List[AlgorithmEntry]:
    """Build comparison entries from the engine's algorithm registry.

    Parameters
    ----------
    names:
        Registry names (or aliases) to include, in order.  ``None`` selects
        every registered algorithm, skipping exponential oracles unless
        *include_oracles* is set.
    """
    selected = (
        list(names)
        if names is not None
        else available_algorithms(include_oracles=include_oracles)
    )
    entries = []
    for name in selected:
        algorithm = get_algorithm(name)
        entries.append(
            AlgorithmEntry(
                name=algorithm.name,
                run=lambda g, c, _algo=algorithm: _algo.enumerate(
                    EnumerationRequest(graph=g, constraints=c)
                ),
                registry_name=algorithm.name,
            )
        )
    return entries


def default_algorithms() -> List[AlgorithmEntry]:
    """The two algorithms Figure 5 compares: this paper's vs. the [15]-style baseline."""
    return algorithms_from_registry(("poly-enum-incremental", "exhaustive"))


def _work_units(result: EnumerationResult) -> int:
    """Machine-independent work counter of a result.

    For the polynomial algorithm this is dominated by the Lengauer–Tarjan
    invocations plus the candidate checks; for the exhaustive search it is the
    number of explored search-tree nodes (stored in ``pick_output_calls``).
    Both counters grow proportionally to the run time of their algorithm, so
    they allow a platform-independent comparison of the growth *shape*.
    """
    stats = result.stats
    return stats.lt_calls + stats.candidates_checked + stats.pick_output_calls


def compare_on_suite(
    graphs: Iterable[DataFlowGraph],
    constraints: Optional[Constraints] = None,
    algorithms: Optional[Sequence[AlgorithmEntry]] = None,
    cluster_of: Optional[Callable[[DataFlowGraph], str]] = None,
    repeat: int = 1,
    jobs: Union[int, str] = 1,
    timeout: Optional[float] = None,
    store: Optional[ResultStore] = None,
    progress=None,
) -> ComparisonReport:
    """Run every algorithm on every graph of the suite and collect measurements.

    Parameters
    ----------
    graphs:
        The workload suite.
    constraints:
        I/O constraints (defaults to the paper's Nin=4, Nout=2).
    algorithms:
        Algorithms to compare; defaults to :func:`default_algorithms`.
    cluster_of:
        Optional function labelling each graph with a size cluster.
    repeat:
        Number of timed repetitions per (graph, algorithm); the minimum time
        is reported, as is customary for micro-benchmarks.  Only honoured by
        sequential, store-less runs (``jobs == 1`` and ``store is None``);
        the batch-runner path measures each block once.
    jobs:
        Number of worker processes per algorithm (an integer, or ``"auto"``
        for the machine's CPU count).  Parallel runs require
        every entry to come from the registry
        (:func:`algorithms_from_registry`), and report the wall-clock time
        measured inside the worker.
    timeout:
        Per-block budget in seconds for parallel runs, charged from actual
        task start (queue wait is excluded); a block abandoned at its
        deadline raises ``RuntimeError`` (a comparison with missing points
        is meaningless).
    store:
        Optional persistent memoization store.  Routes the comparison through
        the batch runner (registry-backed entries only, like ``jobs > 1``);
        cache hits report their lookup time, so a warm comparison measures
        the memoized path.
    progress:
        Optional per-block callback ``progress(item, completed, total)``,
        invoked as each block's enumeration finishes.  Batch-runner
        comparisons (``jobs > 1`` or a store) report per algorithm with
        ``total = len(graphs)``; the direct sequential path reports each
        (graph, algorithm) measurement with ``total = len(graphs) *
        len(algorithms)``.
    """
    graphs = list(graphs)
    constraints = constraints or Constraints(max_inputs=4, max_outputs=2)
    algorithms = list(algorithms or default_algorithms())
    report = ComparisonReport(constraints=constraints)
    jobs = resolve_jobs(jobs)

    if jobs > 1 or store is not None:
        unsupported = [e.name for e in algorithms if e.registry_name is None]
        if unsupported:
            raise ValueError(
                "parallel or store-backed comparison requires registry-backed "
                f"algorithm entries; not in the registry: {', '.join(unsupported)}"
            )
        for entry in algorithms:
            with BatchRunner(
                algorithm=entry.registry_name,
                constraints=constraints,
                jobs=jobs,
                timeout=timeout,
                store=store,
            ) as runner:
                report_items = runner.run(graphs, progress=progress).items
            for item in report_items:
                if not item.ok:
                    raise RuntimeError(
                        f"algorithm {entry.name!r} failed on block "
                        f"{item.graph_name!r}: {item.error or 'timed out'}"
                    )
                report.measurements.append(
                    BlockMeasurement(
                        graph_name=item.graph_name,
                        algorithm=entry.name,
                        num_operations=len(item.graph.operation_nodes()),
                        num_edges=item.graph.num_edges,
                        cuts_found=len(item.result.cuts),
                        elapsed_seconds=item.elapsed_seconds,
                        work_units=_work_units(item.result),
                        cluster=cluster_of(item.graph) if cluster_of else "",
                    )
                )
        return report

    completed = 0
    total = len(graphs) * len(algorithms)
    for graph_index, graph in enumerate(graphs):
        cluster = cluster_of(graph) if cluster_of else ""
        for entry in algorithms:
            best_elapsed = None
            last_result: Optional[EnumerationResult] = None
            for _ in range(max(1, repeat)):
                start = time.perf_counter()
                last_result = entry.run(graph, constraints)
                elapsed = time.perf_counter() - start
                if best_elapsed is None or elapsed < best_elapsed:
                    best_elapsed = elapsed
            assert last_result is not None and best_elapsed is not None
            completed += 1
            if progress is not None:
                progress(
                    BatchItem(
                        index=graph_index,
                        graph=graph,
                        graph_name=graph.name,
                        result=last_result,
                        elapsed_seconds=best_elapsed,
                    ),
                    completed,
                    total,
                )
            report.measurements.append(
                BlockMeasurement(
                    graph_name=graph.name,
                    algorithm=entry.name,
                    num_operations=len(graph.operation_nodes()),
                    num_edges=graph.num_edges,
                    cuts_found=len(last_result.cuts),
                    elapsed_seconds=best_elapsed,
                    work_units=_work_units(last_result),
                    cluster=cluster,
                )
            )
    return report


def agreement_check(
    graphs: Iterable[DataFlowGraph],
    constraints: Optional[Constraints] = None,
) -> List[str]:
    """Verify that the polynomial and exhaustive enumerators agree on a suite.

    Returns the names of graphs where the polynomial algorithm's cut set is
    not a subset of the exhaustive one (which would indicate a soundness bug);
    the empty list means full agreement.  Used by integration tests and by the
    benchmark harness as a self-check.
    """
    constraints = constraints or Constraints(max_inputs=4, max_outputs=2)
    mismatches = []
    for graph in graphs:
        poly = enumerate_cuts(graph, constraints).node_sets()
        exhaustive = enumerate_cuts_exhaustive(graph, constraints).node_sets()
        if not poly <= exhaustive:
            mismatches.append(graph.name)
    return mismatches
