"""Plain-text rendering of experiment results.

The benchmark harness prints the same artefacts the paper reports: the
Figure 5 scatter (as an ASCII log-log plot plus the underlying table), simple
aligned tables for the scaling/ablation experiments, and per-cluster
summaries.  Everything is plain text so results can be diffed and pasted into
EXPERIMENTS.md.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence

from .comparison import ComparisonReport


def format_table(rows: Sequence[Dict[str, object]], columns: Optional[Sequence[str]] = None) -> str:
    """Render a list of dictionaries as an aligned plain-text table."""
    rows = list(rows)
    if not rows:
        return "(no data)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered_rows = []
    for row in rows:
        rendered_rows.append(
            [_format_value(row.get(column, "")) for column in columns]
        )
    widths = [
        max(len(str(column)), *(len(rendered[i]) for rendered in rendered_rows))
        for i, column in enumerate(columns)
    ]
    header = "  ".join(str(column).ljust(widths[i]) for i, column in enumerate(columns))
    separator = "  ".join("-" * widths[i] for i in range(len(columns)))
    body = [
        "  ".join(rendered[i].ljust(widths[i]) for i in range(len(columns)))
        for rendered in rendered_rows
    ]
    return "\n".join([header, separator] + body)


def _format_value(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) < 0.001 or abs(value) >= 100000:
            return f"{value:.2e}"
        return f"{value:.4f}"
    return str(value)


def scatter_plot(
    points: Iterable[Dict[str, object]],
    x_key: str,
    y_key: str,
    label_key: str = "cluster",
    width: int = 64,
    height: int = 24,
    title: str = "",
) -> str:
    """Render a log-log ASCII scatter plot (the Figure 5 style comparison).

    Points above the diagonal are runs where the X-axis algorithm was faster,
    exactly as in the paper's figure.
    """
    data = [
        (float(p[x_key]), float(p[y_key]), str(p.get(label_key, "")) or "*")
        for p in points
        if float(p[x_key]) > 0 and float(p[y_key]) > 0
    ]
    if not data:
        return "(no data)"
    xs = [math.log10(x) for x, _, _ in data]
    ys = [math.log10(y) for _, y, _ in data]
    low = min(min(xs), min(ys))
    high = max(max(xs), max(ys))
    if high - low < 1e-9:
        high = low + 1.0

    def to_col(value: float) -> int:
        return int((value - low) / (high - low) * (width - 1))

    def to_row(value: float) -> int:
        return (height - 1) - int((value - low) / (high - low) * (height - 1))

    grid = [[" "] * width for _ in range(height)]
    # Diagonal: equal run time for both algorithms.
    for step in range(max(width, height) * 2):
        value = low + (high - low) * step / (max(width, height) * 2 - 1)
        row, col = to_row(value), to_col(value)
        if 0 <= row < height and 0 <= col < width and grid[row][col] == " ":
            grid[row][col] = "."
    for x, y, label in data:
        row, col = to_row(math.log10(y)), to_col(math.log10(x))
        grid[row][col] = label[0]

    lines = []
    if title:
        lines.append(title)
    lines.append(f"Y: {y_key} (log10 {low:.1f}..{high:.1f})")
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    lines.append(f"X: {x_key} (log10 {low:.1f}..{high:.1f}); '.' = equal-time diagonal")
    return "\n".join(lines)


def figure5_report(report: ComparisonReport, poly_name: str = "poly-enum-incremental",
                   baseline_name: str = "exhaustive") -> str:
    """Full text report for the Figure 5 reproduction."""
    pairs = report.paired(poly_name, baseline_name)
    if not pairs:
        return "(no paired measurements)"
    lines = [
        f"Figure 5 reproduction: {poly_name} (X) vs {baseline_name} (Y), "
        f"{report.constraints.describe()}",
        "",
        scatter_plot(
            pairs,
            x_key=f"{poly_name}_seconds",
            y_key=f"{baseline_name}_seconds",
            title="run-time scatter (points above the diagonal: polynomial algorithm faster)",
        ),
        "",
        format_table(
            pairs,
            columns=[
                "graph",
                "cluster",
                "num_operations",
                f"{poly_name}_seconds",
                f"{baseline_name}_seconds",
                "speed_ratio",
                f"{poly_name}_cuts",
                f"{baseline_name}_cuts",
            ],
        ),
    ]
    faster = sum(1 for p in pairs if p["speed_ratio"] > 1.0)
    lines.append("")
    lines.append(
        f"blocks where the polynomial algorithm is faster: {faster}/{len(pairs)}"
    )
    return "\n".join(lines)


def cluster_summary(report: ComparisonReport) -> List[Dict[str, object]]:
    """Aggregate a comparison report per (cluster, algorithm)."""
    buckets: Dict[tuple, List[float]] = {}
    counts: Dict[tuple, int] = {}
    for measurement in report.measurements:
        key = (measurement.cluster or "all", measurement.algorithm)
        buckets.setdefault(key, []).append(measurement.elapsed_seconds)
        counts[key] = counts.get(key, 0) + 1
    rows = []
    for (cluster, algorithm), times in sorted(buckets.items()):
        rows.append(
            {
                "cluster": cluster,
                "algorithm": algorithm,
                "blocks": counts[(cluster, algorithm)],
                "total_seconds": sum(times),
                "mean_seconds": sum(times) / len(times),
                "max_seconds": max(times),
            }
        )
    return rows
