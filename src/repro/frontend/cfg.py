"""Control-flow graph recovery from CPython bytecode.

The paper's toolchain starts from compiled application code, not from
hand-drawn graphs: basic blocks are carved out of a function's instruction
stream, and each block's data-flow graph is then handed to the enumerator.
This module reproduces the first half of that frontend for CPython: it decodes
a function (or code object) with :mod:`dis` and partitions the instruction
stream into *basic blocks* using the classic leader analysis:

* the first instruction of the function is a leader;
* every jump target is a leader;
* every instruction following a terminator (jump, return, raise) is a leader.

The result is a :class:`ControlFlowGraph` whose blocks carry their
instructions, source-line coverage and successor edges — enough for the
data-flow translation (:mod:`repro.frontend.dfg_from_bytecode`), for the
line-event profiler (:mod:`repro.frontend.profile`) to attribute execution
counts, and for liveness analysis to decide which stored locals are
``live_out``.

Everything here is dependency-free and works on the CPython 3.10 – 3.12
bytecode dialects (specialised/quickened instructions are never seen because
:func:`dis.get_instructions` de-specialises, and inline ``CACHE`` entries are
hidden by default from 3.11 on).
"""

from __future__ import annotations

import dis
import types
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple, Union

#: Instructions that end a basic block and never fall through.
_NO_FALLTHROUGH = frozenset(
    {
        "RETURN_VALUE",
        "RETURN_CONST",  # 3.12
        "RETURN_GENERATOR",
        "RAISE_VARARGS",
        "RERAISE",
        "JUMP_FORWARD",
        "JUMP_BACKWARD",  # 3.11+
        "JUMP_BACKWARD_NO_INTERRUPT",  # 3.11+
        "JUMP_ABSOLUTE",  # 3.10
    }
)

#: Unconditional jumps (subset of the above that have a target).
_UNCONDITIONAL_JUMPS = frozenset(
    {
        "JUMP_FORWARD",
        "JUMP_BACKWARD",
        "JUMP_BACKWARD_NO_INTERRUPT",
        "JUMP_ABSOLUTE",
    }
)

#: Opcode numbers that carry a jump target (version-dependent sets from dis).
_JUMP_OPCODES = frozenset(dis.hasjrel) | frozenset(getattr(dis, "hasjabs", ()))


def _is_jump(instr: dis.Instruction) -> bool:
    """``True`` if *instr* transfers control to ``instr.argval``."""
    if instr.opcode in _JUMP_OPCODES:
        return True
    # Fabricated instruction streams (used to test foreign-version dialects)
    # may carry opcode numbers of another CPython; fall back to the opname.
    name = instr.opname
    return name in _UNCONDITIONAL_JUMPS or name.startswith(
        ("POP_JUMP", "JUMP_IF", "FOR_ITER", "SETUP_")
    )


def instruction_line(instr: dis.Instruction) -> Optional[int]:
    """Source line of *instr*, across the 3.10 – 3.13 ``dis`` APIs."""
    line = getattr(instr, "line_number", None)  # 3.13+
    if line is None:
        starts = getattr(instr, "starts_line", None)
        if isinstance(starts, int):  # <= 3.12: line number or None
            line = starts
    return line


@dataclass
class BasicBlock:
    """A maximal straight-line run of bytecode instructions.

    Attributes
    ----------
    index:
        Position of the block in offset order (entry block is 0).
    offset:
        Bytecode offset of the first instruction.
    instructions:
        The instructions of the block, in order.
    successors:
        Indices of the blocks control may transfer to.
    lines:
        Sorted source lines covered by the block's instructions.
    """

    index: int
    offset: int
    instructions: List[dis.Instruction] = field(default_factory=list)
    successors: List[int] = field(default_factory=list)
    lines: Tuple[int, ...] = ()

    @property
    def terminator(self) -> Optional[dis.Instruction]:
        """The last instruction, if any."""
        return self.instructions[-1] if self.instructions else None

    @property
    def leader_line(self) -> Optional[int]:
        """Source line of the first instruction carrying line info."""
        for instr in self.instructions:
            line = instruction_line(instr)
            if line is not None:
                return line
        return None

    def opnames(self) -> List[str]:
        """Instruction opnames, in order (debug/reporting helper)."""
        return [instr.opname for instr in self.instructions]

    def describe(self) -> str:
        """One-line human summary of the block."""
        lines = f"lines {self.lines[0]}-{self.lines[-1]}" if self.lines else "no lines"
        return (
            f"block {self.index} @ offset {self.offset}: "
            f"{len(self.instructions)} instr(s), {lines}, "
            f"successors {self.successors}"
        )


class ControlFlowGraph:
    """Basic blocks of one code object plus the edges between them."""

    def __init__(
        self,
        name: str,
        blocks: List[BasicBlock],
        code: Optional[types.CodeType] = None,
    ) -> None:
        self.name = name
        self.blocks = blocks
        self.code = code
        self._block_at_offset: Dict[int, int] = {
            block.offset: block.index for block in blocks
        }

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_function(cls, fn: Callable) -> "ControlFlowGraph":
        """Build the CFG of a plain Python function."""
        code = getattr(fn, "__code__", None)
        if code is None:
            raise TypeError(f"{fn!r} has no __code__; pass a plain Python function")
        return cls.from_code(code, name=fn.__qualname__)

    @classmethod
    def from_code(
        cls, code: types.CodeType, name: Optional[str] = None
    ) -> "ControlFlowGraph":
        """Build the CFG of a code object."""
        instructions = list(dis.get_instructions(code))
        return cls.from_instructions(
            instructions, name=name or code.co_name, code=code
        )

    @classmethod
    def from_instructions(
        cls,
        instructions: Sequence[dis.Instruction],
        name: str = "code",
        code: Optional[types.CodeType] = None,
    ) -> "ControlFlowGraph":
        """Build a CFG from an explicit instruction stream.

        Exposed separately so the tests can feed fabricated 3.10-/3.12-style
        instruction sequences through the exact production path regardless of
        the interpreter running the test-suite.
        """
        if not instructions:
            return cls(name, [], code)

        # -- leader analysis ------------------------------------------- #
        leaders: Set[int] = {instructions[0].offset}
        for position, instr in enumerate(instructions):
            if _is_jump(instr) and isinstance(instr.argval, int):
                leaders.add(instr.argval)
            ends_block = instr.opname in _NO_FALLTHROUGH or _is_jump(instr)
            if ends_block and position + 1 < len(instructions):
                leaders.add(instructions[position + 1].offset)

        # -- carve the blocks ------------------------------------------ #
        blocks: List[BasicBlock] = []
        current: Optional[BasicBlock] = None
        for instr in instructions:
            if instr.offset in leaders or current is None:
                current = BasicBlock(index=len(blocks), offset=instr.offset)
                blocks.append(current)
            current.instructions.append(instr)

        offset_to_index = {block.offset: block.index for block in blocks}

        # -- successor edges and line coverage ------------------------- #
        for block in blocks:
            term = block.terminator
            succs: List[int] = []
            if term is not None:
                jumps = _is_jump(term)
                if jumps and isinstance(term.argval, int):
                    target = offset_to_index.get(term.argval)
                    if target is not None:
                        succs.append(target)
                falls_through = term.opname not in _NO_FALLTHROUGH
                if falls_through and block.index + 1 < len(blocks):
                    nxt = blocks[block.index + 1].index
                    if nxt not in succs:
                        succs.append(nxt)
            block.successors = succs

            lines = {
                line
                for line in (instruction_line(i) for i in block.instructions)
                if line is not None
            }
            block.lines = tuple(sorted(lines))

        return cls(name, blocks, code)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.blocks)

    def __iter__(self):
        return iter(self.blocks)

    @property
    def entry(self) -> BasicBlock:
        """The entry block (first in offset order)."""
        if not self.blocks:
            raise ValueError(f"CFG {self.name!r} is empty")
        return self.blocks[0]

    def block_at_offset(self, offset: int) -> BasicBlock:
        """Block whose first instruction sits at *offset*."""
        return self.blocks[self._block_at_offset[offset]]

    def predecessors(self) -> List[List[int]]:
        """Predecessor lists, derived from the successor edges."""
        preds: List[List[int]] = [[] for _ in self.blocks]
        for block in self.blocks:
            for succ in block.successors:
                preds[succ].append(block.index)
        return preds

    def describe(self) -> str:
        """Multi-line human summary of the whole CFG."""
        header = f"cfg {self.name}: {len(self.blocks)} block(s)"
        return "\n".join([header] + [f"  {b.describe()}" for b in self.blocks])


FunctionLike = Union[Callable, types.CodeType]


def build_cfg(target: FunctionLike) -> ControlFlowGraph:
    """Build a :class:`ControlFlowGraph` from a function or code object."""
    if isinstance(target, types.CodeType):
        return ControlFlowGraph.from_code(target)
    return ControlFlowGraph.from_function(target)
