"""Resolution of Python source files into frontend-translatable functions.

Shared by the CLI's ``frontend`` subcommand and by ``--from-source`` /
``.py`` target resolution on ``enumerate`` and ``ise``: given a path like
``kernels.py`` (optionally with a ``::function`` suffix), load the module in
isolation and hand back the plain Python functions defined in it.
"""

from __future__ import annotations

import importlib.util
import sys
import types
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union


class SourceResolutionError(ValueError):
    """Raised when a source path / function name cannot be resolved."""


def split_target(target: str) -> Tuple[str, Optional[str]]:
    """Split a ``path.py::function`` target into its two halves."""
    base, sep, func = target.partition("::")
    return base, (func if sep else None)


def _package_dotted_name(source: Path) -> Tuple[Optional[str], Optional[Path]]:
    """Dotted module name of *source* if it sits inside a package.

    Walks up while ``__init__.py`` markers exist; returns ``(dotted, root)``
    where *root* is the directory to import from, or ``(None, None)`` for a
    standalone file.
    """
    parts = [source.stem]
    parent = source.parent
    while (parent / "__init__.py").exists():
        parts.append(parent.name)
        parent = parent.parent
    if len(parts) == 1:
        return None, None
    return ".".join(reversed(parts)), parent


def load_module(path: Union[str, Path]) -> types.ModuleType:
    """Import the module at *path*.

    Standalone files are loaded under a private name (so user files never
    shadow installed packages); files that live inside a package — e.g.
    ``src/repro/frontend/corpus.py`` itself — are imported under their dotted
    name so relative imports keep working.
    """
    source = Path(path).resolve()
    if not source.exists():
        raise SourceResolutionError(f"source file {path} does not exist")
    if source.suffix != ".py":
        raise SourceResolutionError(
            f"{path} is not a Python source file (expected a .py extension)"
        )
    dotted, root = _package_dotted_name(source)
    if dotted is not None:
        root_str = str(root)
        inserted = root_str not in sys.path
        if inserted:
            sys.path.insert(0, root_str)
        try:
            return importlib.import_module(dotted)
        except Exception as exc:
            raise SourceResolutionError(f"importing {path} failed: {exc}") from exc
        finally:
            if inserted:
                try:
                    sys.path.remove(root_str)
                except ValueError:
                    pass
    module_name = f"_repro_frontend_{source.stem}"
    spec = importlib.util.spec_from_file_location(module_name, source)
    if spec is None or spec.loader is None:
        raise SourceResolutionError(f"cannot build an import spec for {source}")
    module = importlib.util.module_from_spec(spec)
    sys.modules[module_name] = module
    try:
        spec.loader.exec_module(module)
    except Exception as exc:
        sys.modules.pop(module_name, None)
        raise SourceResolutionError(f"importing {source} failed: {exc}") from exc
    return module


def functions_in_module(
    module: types.ModuleType, include_private: bool = False
) -> Dict[str, Callable]:
    """Plain Python functions *defined in* the module (imports excluded).

    Underscore-prefixed functions are hidden from "every function" listings
    but can be requested explicitly (*include_private*).
    """
    filename = getattr(module, "__file__", None)
    result: Dict[str, Callable] = {}
    for name in sorted(vars(module)):
        if name.startswith("_") and not include_private:
            continue
        value = vars(module)[name]
        code = getattr(value, "__code__", None)
        if not isinstance(value, types.FunctionType) or code is None:
            continue
        if filename is not None and code.co_filename != filename:
            continue
        result[name] = value
    return result


def resolve_functions(
    path: Union[str, Path], func: Optional[str] = None
) -> List[Tuple[str, Callable]]:
    """Functions selected from the source file at *path*.

    With *func* given, exactly that function (a clear error lists the
    available names otherwise); without it, every function defined in the
    module, in name order.
    """
    module = load_module(path)
    functions = functions_in_module(module, include_private=True)
    public = {name: fn for name, fn in functions.items() if not name.startswith("_")}
    if func is None:
        if not public:
            raise SourceResolutionError(
                f"{path} defines no public plain Python functions"
            )
        return list(public.items())
    if func not in functions:
        available = ", ".join(public) or "(none)"
        raise SourceResolutionError(
            f"{path} defines no function {func!r} (available: {available})"
        )
    return [(func, functions[func])]
