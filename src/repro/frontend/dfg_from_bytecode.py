"""Abstract stack interpretation: bytecode basic blocks → data-flow graphs.

The second half of the compiler frontend.  Each :class:`~repro.frontend.cfg.BasicBlock`
is interpreted symbolically: the operand stack holds DFG vertex ids instead of
values, loads of locals/globals materialise ``INPUT`` vertices, ``LOAD_CONST``
materialises ``CONSTANT`` vertices (deduplicated per block, like a constant
pool), and arithmetic/compare/unary bytecodes emit operation vertices mapped
onto the existing :class:`~repro.dfg.opcodes.Opcode` enum.

Design decisions, in the order they matter:

* **Unsupported operations are lowered, never rejected.**  A call, subscript,
  attribute access or container build becomes an *opaque barrier*: values
  consumed by it flow into a forbidden vertex (``CALL``/``LOAD``/``STORE`` —
  the in-graph equivalent of the paper's SINK barrier, kept out of every cut
  but kept *in* the graph so convexity around it is respected), and values it
  produces appear as fresh external ``INPUT`` vertices or forbidden result
  vertices (the SOURCE-barrier side).  The literal ``Opcode.SOURCE``/``SINK``
  opcodes are reserved for graph augmentation and are deliberately not used
  here — an in-block artificial vertex would be invisible to ``Oext`` and
  break the rooted-graph invariants.
* **Locals are SSA-like.**  Every store rebinds the name to the producing
  vertex; a later load reuses that vertex.  A load of a name never stored in
  the block is a live-in and becomes an ``INPUT`` vertex.
* **Liveness decides ``live_out``.**  A backward may-live fixpoint over the
  CFG marks the final in-block binding of every variable that some other
  block may read; returned values are always live-out.  Leftover operand-stack
  entries at a block boundary (values flowing to a successor block) are
  marked live-out as well.
* **Version tolerance.**  The per-instruction dispatch is keyed on opnames
  and argreprs, not opcode numbers, so the translator handles the CPython
  3.10, 3.11 and 3.12 dialects — and the tests can replay foreign-version
  instruction streams on any interpreter.
"""

from __future__ import annotations

import dis
import types
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Union

from ..dfg.graph import DataFlowGraph
from ..dfg.opcodes import Opcode
from .cfg import BasicBlock, ControlFlowGraph, build_cfg

# --------------------------------------------------------------------------- #
# Opcode mapping tables
# --------------------------------------------------------------------------- #
#: ``BINARY_OP`` symbol (3.11+ ``argrepr``, ``=`` suffix stripped for the
#: in-place forms) → DFG opcode.
BINARY_SYMBOL_TO_OPCODE: Dict[str, Opcode] = {
    "+": Opcode.ADD,
    "-": Opcode.SUB,
    "*": Opcode.MUL,
    "/": Opcode.DIV,
    "//": Opcode.DIV,
    "%": Opcode.REM,
    "&": Opcode.AND,
    "|": Opcode.OR,
    "^": Opcode.XOR,
    "<<": Opcode.SHL,
    ">>": Opcode.SHR,
}

#: 3.10 dedicated binary/in-place opnames → DFG opcode.
LEGACY_BINARY_TO_OPCODE: Dict[str, Opcode] = {
    "BINARY_ADD": Opcode.ADD,
    "BINARY_SUBTRACT": Opcode.SUB,
    "BINARY_MULTIPLY": Opcode.MUL,
    "BINARY_TRUE_DIVIDE": Opcode.DIV,
    "BINARY_FLOOR_DIVIDE": Opcode.DIV,
    "BINARY_MODULO": Opcode.REM,
    "BINARY_AND": Opcode.AND,
    "BINARY_OR": Opcode.OR,
    "BINARY_XOR": Opcode.XOR,
    "BINARY_LSHIFT": Opcode.SHL,
    "BINARY_RSHIFT": Opcode.SHR,
}
LEGACY_BINARY_TO_OPCODE.update(
    {
        name.replace("BINARY_", "INPLACE_", 1): opcode
        for name, opcode in list(LEGACY_BINARY_TO_OPCODE.items())
    }
)

#: ``COMPARE_OP`` argval → DFG opcode (stable across 3.10 – 3.12).
COMPARE_TO_OPCODE: Dict[str, Opcode] = {
    "<": Opcode.LT,
    "<=": Opcode.LE,
    ">": Opcode.GT,
    ">=": Opcode.GE,
    "==": Opcode.EQ,
    "!=": Opcode.NE,
}

#: Unary opnames → DFG opcode (``UNARY_POSITIVE`` is the identity).
UNARY_TO_OPCODE: Dict[str, Opcode] = {
    "UNARY_NEGATIVE": Opcode.NEG,
    "UNARY_INVERT": Opcode.NOT,
    "UNARY_NOT": Opcode.NOT,
}

#: Opnames that neither touch the modelled stack nor emit vertices.
_NOP_OPNAMES = frozenset(
    {
        "RESUME",
        "NOP",
        "CACHE",
        "PRECALL",
        "KW_NAMES",
        "EXTENDED_ARG",
        "MAKE_CELL",
        "COPY_FREE_VARS",
        "GEN_START",
        "SETUP_ANNOTATIONS",
        "JUMP_FORWARD",
        "JUMP_BACKWARD",
        "JUMP_BACKWARD_NO_INTERRUPT",
        "JUMP_ABSOLUTE",
        "UNARY_POSITIVE",
        "GET_ITER",  # the iterator stands for the iterable it wraps
    }
)

#: Stack sentinel for CPython's internal NULL push (callable conventions).
_NULL = object()

StackValue = object  # vertex id (int) or the _NULL sentinel


class TranslationError(ValueError):
    """Raised when an instruction stream cannot be interpreted at all."""


# --------------------------------------------------------------------------- #
# Per-block liveness (decides which stored locals are live_out)
# --------------------------------------------------------------------------- #
_READ_OPNAMES = frozenset({"LOAD_FAST", "LOAD_NAME", "LOAD_DEREF", "LOAD_CLOSURE"})
_WRITE_OPNAMES = frozenset({"STORE_FAST", "STORE_NAME", "STORE_DEREF"})


def compute_live_out_vars(cfg: ControlFlowGraph) -> List[Set[str]]:
    """May-live local variables at each block's exit (backward fixpoint)."""
    use: List[Set[str]] = []
    defs: List[Set[str]] = []
    for block in cfg.blocks:
        used: Set[str] = set()
        defined: Set[str] = set()
        for instr in block.instructions:
            name = instr.argval if isinstance(instr.argval, str) else None
            if name is None:
                continue
            if instr.opname in _READ_OPNAMES and name not in defined:
                used.add(name)
            elif instr.opname in _WRITE_OPNAMES:
                defined.add(name)
        use.append(used)
        defs.append(defined)

    live_in: List[Set[str]] = [set() for _ in cfg.blocks]
    live_out: List[Set[str]] = [set() for _ in cfg.blocks]
    changed = True
    while changed:
        changed = False
        for block in reversed(cfg.blocks):
            i = block.index
            out: Set[str] = set()
            for succ in block.successors:
                out |= live_in[succ]
            inn = use[i] | (out - defs[i])
            if out != live_out[i] or inn != live_in[i]:
                live_out[i], live_in[i] = out, inn
                changed = True
    return live_out


# --------------------------------------------------------------------------- #
# The abstract interpreter
# --------------------------------------------------------------------------- #
class BlockTranslator:
    """Translate one basic block's instructions into a :class:`DataFlowGraph`.

    The translator is forgiving by construction: any opname it does not know
    is handled by the generic opaque-barrier fallback using the instruction's
    conservative stack effect, so new CPython dialects degrade into coarser
    graphs instead of failures.
    """

    def __init__(self, name: str, live_out_vars: Optional[Set[str]] = None) -> None:
        self.graph = DataFlowGraph(name=name)
        self.stack: List[StackValue] = []
        self.env: Dict[str, int] = {}
        self.stored: Dict[str, int] = {}
        self.live_out_vars: Set[str] = set(live_out_vars or ())
        self._const_nodes: Dict[str, int] = {}
        self._input_nodes: Dict[str, int] = {}
        self._stack_in_count = 0
        self.warnings: List[str] = []

    # -- stack helpers -------------------------------------------------- #
    def push(self, value: StackValue) -> None:
        self.stack.append(value)

    def pop(self) -> StackValue:
        """Pop a value, synthesizing a live-in for stack underflow.

        A block may start executing with values left on the stack by its
        predecessors (loop iterators, short-circuit operands...).  Those are
        modelled as external ``INPUT`` vertices.
        """
        if not self.stack:
            name = f"stack_in{self._stack_in_count}"
            self._stack_in_count += 1
            return self._input(name)
        return self.stack.pop()

    def pop_nodes(self, count: int) -> List[int]:
        """Pop *count* values and keep the real vertices (NULLs dropped)."""
        values = [self.pop() for _ in range(count)]
        values.reverse()
        return [v for v in values if isinstance(v, int)]

    # -- vertex helpers -------------------------------------------------- #
    def _input(self, name: str) -> int:
        node = self._input_nodes.get(name)
        if node is None:
            node = self.graph.add_node(Opcode.INPUT, name=name)
            self._input_nodes[name] = node
        return node

    def _const(self, value: object) -> int:
        key = f"{type(value).__name__}:{value!r}"
        node = self._const_nodes.get(key)
        if node is None:
            node = self.graph.add_node(Opcode.CONSTANT, name=repr(value))
            self._const_nodes[key] = node
        return node

    def _operation(self, opcode: Opcode, operands: Sequence[int], name: Optional[str] = None) -> int:
        node = self.graph.add_node(opcode, name=name)
        for operand in operands:
            if operand != node:
                self.graph.add_edge(operand, node)
        return node

    def _barrier(self, opcode: Opcode, operands: Sequence[int], name: str) -> int:
        """A forbidden vertex consuming *operands* (the SINK side of a barrier)."""
        node = self.graph.add_node(opcode, name=name, forbidden=True)
        for operand in operands:
            if operand != node:
                self.graph.add_edge(operand, node)
        return node

    def mark_live_out(self, value: StackValue) -> None:
        if isinstance(value, int) and self.graph.node(value).is_operation:
            self.graph.set_live_out(value, True)

    # -- per-instruction dispatch ---------------------------------------- #
    def execute(self, instr: dis.Instruction) -> None:
        opname = instr.opname
        if opname in _NOP_OPNAMES:
            return
        handler = getattr(self, f"_op_{opname.lower()}", None)
        if handler is not None:
            handler(instr)
            return
        if opname in LEGACY_BINARY_TO_OPCODE:
            self._binary(LEGACY_BINARY_TO_OPCODE[opname])
            return
        if opname in UNARY_TO_OPCODE:
            operand = self.pop()
            operands = [operand] if isinstance(operand, int) else []
            self.push(self._operation(UNARY_TO_OPCODE[opname], operands))
            return
        self._opaque_fallback(instr)

    # loads ---------------------------------------------------------------
    def _load_name_like(self, instr: dis.Instruction) -> None:
        name = str(instr.argval)
        node = self.env.get(name)
        if node is None:
            node = self._input(name)
        self.push(node)

    _op_load_fast = _load_name_like
    _op_load_name = _load_name_like
    _op_load_deref = _load_name_like
    _op_load_closure = _load_name_like
    # 3.12 super-instruction: always de-specialised by dis, kept for safety.
    _op_load_fast_check = _load_name_like

    def _op_load_global(self, instr: dis.Instruction) -> None:
        # 3.11+: the low arg bit (rendered as "NULL + name") pushes a NULL
        # before the global.  Detect via argrepr so foreign streams work.
        if "NULL + " in (instr.argrepr or ""):
            self.push(_NULL)
        self.push(self._input(str(instr.argval)))

    def _op_load_const(self, instr: dis.Instruction) -> None:
        self.push(self._const(instr.argval))

    def _op_push_null(self, instr: dis.Instruction) -> None:
        self.push(_NULL)

    def _op_load_attr(self, instr: dis.Instruction) -> None:
        obj = self.pop()
        operands = [obj] if isinstance(obj, int) else []
        result = self._barrier(Opcode.LOAD, operands, name=f"attr_{instr.argval}")
        if "NULL|self + " in (instr.argrepr or ""):  # 3.12 method-call form
            self.push(_NULL)
        self.push(result)

    def _op_load_method(self, instr: dis.Instruction) -> None:  # 3.10 / 3.11
        obj = self.pop()
        operands = [obj] if isinstance(obj, int) else []
        method = self._barrier(Opcode.LOAD, operands, name=f"method_{instr.argval}")
        self.push(_NULL)
        self.push(method)

    # stores --------------------------------------------------------------
    def _store_name_like(self, instr: dis.Instruction) -> None:
        name = str(instr.argval)
        value = self.pop()
        if not isinstance(value, int):
            return
        self.env[name] = value
        self.stored[name] = value
        if name in self.live_out_vars:
            self.mark_live_out(value)

    _op_store_fast = _store_name_like
    _op_store_name = _store_name_like
    _op_store_deref = _store_name_like

    def _op_store_global(self, instr: dis.Instruction) -> None:
        value = self.pop()
        self.mark_live_out(value)

    def _op_store_subscr(self, instr: dis.Instruction) -> None:
        # Stack: container, index, value → pops 3 (value below container/index).
        index = self.pop()
        container = self.pop()
        value = self.pop()
        operands = [v for v in (container, index, value) if isinstance(v, int)]
        self._barrier(Opcode.STORE, operands, name="store_subscr")

    # arithmetic ----------------------------------------------------------
    def _binary(self, opcode: Opcode) -> None:
        rhs = self.pop()
        lhs = self.pop()
        operands = [v for v in (lhs, rhs) if isinstance(v, int)]
        self.push(self._operation(opcode, operands))

    def _op_binary_op(self, instr: dis.Instruction) -> None:  # 3.11+
        symbol = (instr.argrepr or "").strip().rstrip("=")
        opcode = BINARY_SYMBOL_TO_OPCODE.get(symbol)
        if opcode is None:  # **, @, unknown/missing symbol → opaque barrier
            self.warnings.append(
                f"opaque lowering of BINARY_OP {symbol or '<no symbol>'!r}"
            )
            operands = self.pop_nodes(2)
            self.push(
                self._barrier(
                    Opcode.CALL, operands, name=f"binop_{symbol or 'unknown'}"
                )
            )
            return
        self._binary(opcode)

    def _op_compare_op(self, instr: dis.Instruction) -> None:
        symbol = str(instr.argval).strip()
        opcode = COMPARE_TO_OPCODE.get(symbol)
        if opcode is None:
            self.warnings.append(f"opaque lowering of COMPARE_OP {symbol!r}")
            operands = self.pop_nodes(2)
            self.push(self._barrier(Opcode.CALL, operands, name=f"cmp_{symbol}"))
            return
        self._binary(opcode)

    def _op_is_op(self, instr: dis.Instruction) -> None:
        self._binary(Opcode.NE if instr.argval else Opcode.EQ)

    def _op_contains_op(self, instr: dis.Instruction) -> None:
        operands = self.pop_nodes(2)
        self.push(self._barrier(Opcode.CALL, operands, name="contains"))

    def _op_binary_subscr(self, instr: dis.Instruction) -> None:
        index = self.pop()
        container = self.pop()
        operands = [v for v in (container, index) if isinstance(v, int)]
        self.push(self._barrier(Opcode.LOAD, operands, name="subscr"))

    def _op_binary_slice(self, instr: dis.Instruction) -> None:  # 3.12
        operands = self.pop_nodes(3)
        self.push(self._barrier(Opcode.LOAD, operands, name="slice"))

    # stack shuffling ------------------------------------------------------
    def _op_pop_top(self, instr: dis.Instruction) -> None:
        self.pop()

    def _op_copy(self, instr: dis.Instruction) -> None:  # 3.11+
        depth = int(instr.argval or 1)
        while len(self.stack) < depth:
            self.stack.insert(0, self._input(f"stack_in{self._stack_in_count}"))
            self._stack_in_count += 1
        self.push(self.stack[-depth])

    def _op_swap(self, instr: dis.Instruction) -> None:  # 3.11+
        depth = int(instr.argval or 2)
        while len(self.stack) < depth:
            self.stack.insert(0, self._input(f"stack_in{self._stack_in_count}"))
            self._stack_in_count += 1
        self.stack[-depth], self.stack[-1] = self.stack[-1], self.stack[-depth]

    def _op_dup_top(self, instr: dis.Instruction) -> None:  # 3.10
        top = self.pop()
        self.push(top)
        self.push(top)

    def _op_dup_top_two(self, instr: dis.Instruction) -> None:  # 3.10
        b = self.pop()
        a = self.pop()
        for value in (a, b, a, b):
            self.push(value)

    def _op_rot_two(self, instr: dis.Instruction) -> None:  # 3.10
        b, a = self.pop(), self.pop()
        self.push(b)
        self.push(a)

    def _op_rot_three(self, instr: dis.Instruction) -> None:  # 3.10
        c, b, a = self.pop(), self.pop(), self.pop()
        self.push(c)
        self.push(a)
        self.push(b)

    def _op_rot_four(self, instr: dis.Instruction) -> None:  # 3.10
        d, c, b, a = self.pop(), self.pop(), self.pop(), self.pop()
        self.push(d)
        self.push(a)
        self.push(b)
        self.push(c)

    # calls ----------------------------------------------------------------
    def _call(self, argc: int, extra: int, name: str = "call") -> None:
        """Pop ``argc`` arguments plus *extra* callable-convention slots."""
        operands = self.pop_nodes(argc + extra)
        self.push(self._barrier(Opcode.CALL, operands, name=name))

    def _op_call(self, instr: dis.Instruction) -> None:  # 3.11 / 3.12
        self._call(int(instr.argval or 0), extra=2)

    def _op_call_function(self, instr: dis.Instruction) -> None:  # 3.10
        self._call(int(instr.argval or 0), extra=1)

    def _op_call_method(self, instr: dis.Instruction) -> None:  # 3.10
        self._call(int(instr.argval or 0), extra=2)

    def _op_call_function_kw(self, instr: dis.Instruction) -> None:  # 3.10
        self._call(int(instr.argval or 0), extra=2, name="call_kw")

    def _op_call_function_ex(self, instr: dis.Instruction) -> None:
        flags = int(instr.argval or 0)
        self._call(1 + (1 if flags & 1 else 0), extra=1, name="call_ex")

    # iteration ------------------------------------------------------------
    def _op_for_iter(self, instr: dis.Instruction) -> None:
        iterator = self.stack[-1] if self.stack else self.pop()
        operands = [iterator] if isinstance(iterator, int) else []
        if not self.stack:
            self.push(iterator)
        self.push(self._barrier(Opcode.CALL, operands, name="iter_next"))

    def _op_end_for(self, instr: dis.Instruction) -> None:  # 3.12
        self.pop()
        self.pop()

    # control --------------------------------------------------------------
    def _branch(self, instr: dis.Instruction, pops: bool) -> None:
        test = self.pop() if pops else (self.stack[-1] if self.stack else self.pop())
        operands = [test] if isinstance(test, int) else []
        self._barrier(Opcode.BRANCH, operands, name=f"branch_L{instr.argval}")

    def _op_pop_jump_if_true(self, instr: dis.Instruction) -> None:
        self._branch(instr, pops=True)

    _op_pop_jump_if_false = _op_pop_jump_if_true
    _op_pop_jump_if_none = _op_pop_jump_if_true
    _op_pop_jump_if_not_none = _op_pop_jump_if_true
    # 3.11 directional variants
    _op_pop_jump_forward_if_true = _op_pop_jump_if_true
    _op_pop_jump_forward_if_false = _op_pop_jump_if_true
    _op_pop_jump_forward_if_none = _op_pop_jump_if_true
    _op_pop_jump_forward_if_not_none = _op_pop_jump_if_true
    _op_pop_jump_backward_if_true = _op_pop_jump_if_true
    _op_pop_jump_backward_if_false = _op_pop_jump_if_true
    _op_pop_jump_backward_if_none = _op_pop_jump_if_true
    _op_pop_jump_backward_if_not_none = _op_pop_jump_if_true

    def _op_jump_if_true_or_pop(self, instr: dis.Instruction) -> None:
        # Fallthrough pops the tested value; the jump path keeps it, which the
        # successor block models as a live-in stack value.
        self._branch(instr, pops=True)

    _op_jump_if_false_or_pop = _op_jump_if_true_or_pop

    def _op_return_value(self, instr: dis.Instruction) -> None:
        self.mark_live_out(self.pop())

    def _op_return_const(self, instr: dis.Instruction) -> None:  # 3.12
        self._const(instr.argval)

    def _op_raise_varargs(self, instr: dis.Instruction) -> None:
        operands = self.pop_nodes(int(instr.argval or 0))
        if operands:
            self._barrier(Opcode.CALL, operands, name="raise")

    def _op_reraise(self, instr: dis.Instruction) -> None:
        self.pop()

    # containers -----------------------------------------------------------
    def _build(self, instr: dis.Instruction, per_item: int = 1) -> None:
        operands = self.pop_nodes(int(instr.argval or 0) * per_item)
        self.push(
            self._barrier(Opcode.CALL, operands, name=instr.opname.lower())
        )

    _op_build_tuple = _build
    _op_build_list = _build
    _op_build_set = _build
    _op_build_string = _build
    _op_build_slice = _build

    def _op_build_map(self, instr: dis.Instruction) -> None:
        self._build(instr, per_item=2)

    def _op_unpack_sequence(self, instr: dis.Instruction) -> None:
        sequence = self.pop()
        source = [sequence] if isinstance(sequence, int) else []
        barrier = self._barrier(Opcode.CALL, source, name="unpack")
        count = int(instr.argval or 0)
        for position in reversed(range(count)):
            self.push(
                self._barrier(Opcode.LOAD, [barrier], name=f"unpack{position}")
            )

    # fallback -------------------------------------------------------------
    def _opaque_fallback(self, instr: dis.Instruction) -> None:
        """Best-effort handling of an opname outside the supported set.

        The net stack effect (when computable on this interpreter) keeps the
        modelled stack depth consistent; the values involved are routed
        through opaque barriers.
        """
        effect = 0
        try:
            effect = dis.stack_effect(instr.opcode, instr.arg, jump=False)
        except (ValueError, TypeError):  # foreign-version opcode number
            pass
        self.warnings.append(
            f"opaque lowering of {instr.opname} (stack effect {effect:+d})"
        )
        if effect < 0:
            operands = self.pop_nodes(-effect)
            if operands:
                self._barrier(Opcode.CALL, operands, name=f"sink_{instr.opname.lower()}")
        else:
            for _ in range(effect):
                self.push(self._input(f"opaque_{instr.opname.lower()}"))

    # finalisation ---------------------------------------------------------
    def finish(self) -> DataFlowGraph:
        """Mark boundary-crossing values and return the graph."""
        for value in self.stack:
            self.mark_live_out(value)
        self.stack.clear()
        self.graph.topological_order()  # raises on (impossible) cycles
        return self.graph


# --------------------------------------------------------------------------- #
# Driver API
# --------------------------------------------------------------------------- #
@dataclass
class TranslatedBlock:
    """One basic block with its data-flow graph."""

    block: BasicBlock
    graph: DataFlowGraph
    warnings: List[str] = field(default_factory=list)

    @property
    def num_operations(self) -> int:
        return len(self.graph.operation_nodes())


@dataclass
class FunctionDFGs:
    """Every basic block of one function, translated."""

    name: str
    cfg: ControlFlowGraph
    blocks: List[TranslatedBlock] = field(default_factory=list)

    def graphs(self) -> List[DataFlowGraph]:
        return [entry.graph for entry in self.blocks]

    def largest(self) -> TranslatedBlock:
        """The block with the most operation vertices (ties: first)."""
        if not self.blocks:
            raise ValueError(f"function {self.name!r} produced no blocks")
        return max(self.blocks, key=lambda entry: (entry.num_operations, -entry.block.index))

    def describe(self) -> str:
        lines = [f"function {self.name}: {len(self.blocks)} block(s)"]
        for entry in self.blocks:
            graph = entry.graph
            lines.append(
                f"  {entry.block.describe()} -> {len(graph.operation_nodes())} op(s), "
                f"{graph.num_edges} edge(s)"
            )
        return "\n".join(lines)


def translate_block(
    block: BasicBlock,
    name: str,
    live_out_vars: Optional[Set[str]] = None,
) -> TranslatedBlock:
    """Translate one basic block into a :class:`TranslatedBlock`."""
    translator = BlockTranslator(name=name, live_out_vars=live_out_vars)
    for instr in block.instructions:
        translator.execute(instr)
    graph = translator.finish()
    return TranslatedBlock(block=block, graph=graph, warnings=translator.warnings)


def function_to_dfgs(
    target: Union[Callable, types.CodeType],
    name: Optional[str] = None,
) -> FunctionDFGs:
    """Translate every basic block of *target* into a data-flow graph.

    Block graphs are named ``<function>__b<index>`` so they slot directly
    into :class:`~repro.workloads.suite.WorkloadSuite` and the batch engine.
    """
    cfg = build_cfg(target)
    function_name = name or cfg.name
    live_out = compute_live_out_vars(cfg)
    translated = [
        translate_block(
            block,
            name=f"{function_name}__b{block.index}",
            live_out_vars=live_out[block.index],
        )
        for block in cfg.blocks
    ]
    return FunctionDFGs(name=function_name, cfg=cfg, blocks=translated)


def graph_for_function(
    target: Union[Callable, types.CodeType],
    name: Optional[str] = None,
) -> DataFlowGraph:
    """Convenience: the DFG of the *largest* basic block of *target*.

    For straight-line kernels (the interesting ISE candidates) the function
    body is a single block and this is simply "the function as a DFG".
    """
    return function_to_dfgs(target, name=name).largest().graph
