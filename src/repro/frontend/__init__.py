"""Compiler frontend: Python bytecode → CFG → DFG ingestion with profiling.

Turns plain Python functions into ISE-ready workloads, reproducing the
"compiler toolchain" half of the paper's story on programs users actually
write:

``repro.frontend.cfg``
    Bytecode decode (:mod:`dis`) and basic-block recovery (leader analysis,
    successor edges, source-line coverage).
``repro.frontend.dfg_from_bytecode``
    Abstract operand-stack interpretation of each block, emitting
    :class:`~repro.dfg.graph.DataFlowGraph` objects on the existing opcode
    vocabulary; unsupported operations become opaque barriers, never errors.
``repro.frontend.profile``
    ``sys.monitoring`` / ``sys.settrace`` line-event profiling, attributing
    execution counts to basic blocks.
``repro.frontend.corpus``
    ~10 bundled pure-Python reference kernels compiled into a persistable
    :class:`~repro.workloads.suite.WorkloadSuite`.
"""

from .cfg import BasicBlock, ControlFlowGraph, build_cfg
from .corpus import (
    CORPUS,
    STRAIGHT_LINE_KERNELS,
    CorpusKernel,
    build_corpus_suite,
    corpus_block_profiles,
    corpus_names,
    profile_kernel,
)
from .dfg_from_bytecode import (
    BlockTranslator,
    FunctionDFGs,
    TranslatedBlock,
    function_to_dfgs,
    graph_for_function,
    translate_block,
)
from .loader import (
    SourceResolutionError,
    functions_in_module,
    load_module,
    resolve_functions,
    split_target,
)
from .profile import (
    LineCounts,
    ProfiledFunction,
    attribute_to_blocks,
    collect_line_counts,
    profile_function,
    static_profile,
)

__all__ = [
    "BasicBlock",
    "ControlFlowGraph",
    "build_cfg",
    "CORPUS",
    "STRAIGHT_LINE_KERNELS",
    "CorpusKernel",
    "build_corpus_suite",
    "corpus_block_profiles",
    "corpus_names",
    "profile_kernel",
    "BlockTranslator",
    "FunctionDFGs",
    "TranslatedBlock",
    "function_to_dfgs",
    "graph_for_function",
    "translate_block",
    "SourceResolutionError",
    "functions_in_module",
    "load_module",
    "resolve_functions",
    "split_target",
    "LineCounts",
    "ProfiledFunction",
    "attribute_to_blocks",
    "collect_line_counts",
    "profile_function",
    "static_profile",
]
