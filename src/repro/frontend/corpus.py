"""Bundled pure-Python reference kernels, compiled into an ISE workload suite.

MiBench-style inner loops, written as plain Python functions so the whole
frontend — bytecode decode, CFG recovery, DFG translation, line profiling —
can be exercised on *real code* instead of hand-drawn graphs.  The kernels
deliberately span the frontend's feature space:

* straight-line bit-twiddling bodies (``crc32_step``, ``popcount32``,
  ``bit_reverse8``, ``xorshift32``, ``blowfish_mix``, ``fir_tap4``,
  ``adler32_step``) — single basic block, fully supported opcodes, ideal
  custom-instruction candidates;
* branchless saturating/clamping arithmetic (``saturating_add``,
  ``clamp_diff``) — compares feeding arithmetic;
* control-flow kernels (``adpcm_round`` with conditionals,
  ``checksum_loop`` with a ``while`` loop) — multi-block CFGs whose hot
  blocks the profiler must find.

Every kernel ships with representative sample calls used both as a
correctness smoke (the functions really run) and as the profiling workload,
so :func:`build_corpus_suite` produces a
:class:`~repro.workloads.suite.WorkloadSuite` with measured per-block
execution counts persisted in the suite metadata.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from ..ise.pipeline import BlockProfile
from ..workloads.suite import WorkloadSuite
from .profile import ProfiledFunction, profile_function, static_profile

_MASK32 = 0xFFFFFFFF


# --------------------------------------------------------------------------- #
# The kernels (plain Python, frontend-translatable)
# --------------------------------------------------------------------------- #
def crc32_step(crc, data, poly):
    """One table-less CRC-32 bit step (matches ``workloads.kernels.crc32_step``)."""
    bit = data & 1
    lsb = crc & 1
    t = lsb ^ bit
    mask = -t
    sel = poly & mask
    shifted = crc >> 1
    return shifted ^ sel


def popcount32(x):
    """SWAR population count of a 32-bit word."""
    x = x - ((x >> 1) & 0x55555555)
    x = (x & 0x33333333) + ((x >> 2) & 0x33333333)
    x = (x + (x >> 4)) & 0x0F0F0F0F
    return (x * 0x01010101) >> 24


def fir_tap4(acc, s0, c0, s1, c1, s2, c2, s3, c3):
    """Four multiply-accumulate taps of a FIR filter."""
    acc = acc + s0 * c0
    acc = acc + s1 * c1
    acc = acc + s2 * c2
    acc = acc + s3 * c3
    return acc


def saturating_add(a, b, lo, hi):
    """Branchless saturating addition: compares steer the arithmetic."""
    s = a + b
    below = s < lo
    above = s > hi
    inside = 1 - below - above
    return s * inside + lo * below + hi * above


def clamp_diff(a, b, lo, hi):
    """Absolute-difference-then-clamp, branchless."""
    d = a - b
    neg = d < 0
    mag = d - 2 * d * neg
    over = mag > hi
    under = mag < lo
    keep = 1 - over - under
    return mag * keep + hi * over + lo * under


def bit_reverse8(x):
    """Reverse the bits of one byte with the classic mask-shift ladder."""
    x = ((x & 0xF0) >> 4) | ((x & 0x0F) << 4)
    x = ((x & 0xCC) >> 2) | ((x & 0x33) << 2)
    x = ((x & 0xAA) >> 1) | ((x & 0x55) << 1)
    return x


def xorshift32(x):
    """One xorshift RNG round (masked to 32 bits)."""
    x = (x ^ (x << 13)) & 0xFFFFFFFF
    x = x ^ (x >> 17)
    x = (x ^ (x << 5)) & 0xFFFFFFFF
    return x


def blowfish_mix(xl, xr, p, s0, s1):
    """A Blowfish-style Feistel half-round mix (xor/add/shift network)."""
    xl = xl ^ p
    a = (xl >> 24) & 0xFF
    b = (xl >> 16) & 0xFF
    f = ((s0 + a) ^ (s1 + b)) & 0xFFFFFFFF
    xr = xr ^ f
    return (xl + xr) & 0xFFFFFFFF


def adler32_step(a, b, byte):
    """One byte of an Adler-32 checksum (add/modulo pair)."""
    a = (a + byte) % 65521
    b = (b + a) % 65521
    return (b << 16) | a


def adpcm_round(delta, step, valpred):
    """IMA-ADPCM-style predictor update with real conditionals."""
    vpdiff = step >> 3
    if delta & 4:
        vpdiff = vpdiff + step
    if delta & 2:
        vpdiff = vpdiff + (step >> 1)
    if delta & 1:
        vpdiff = vpdiff + (step >> 2)
    if delta & 8:
        valpred = valpred - vpdiff
    else:
        valpred = valpred + vpdiff
    if valpred > 32767:
        valpred = 32767
    elif valpred < -32768:
        valpred = -32768
    return valpred


def checksum_loop(n, seed):
    """A rolling checksum over ``n`` synthetic items (hot ``while`` body)."""
    acc = seed
    i = 0
    while i < n:
        acc = (acc + ((acc << 5) ^ i)) & 0xFFFFFFFF
        i = i + 1
    return acc


# --------------------------------------------------------------------------- #
# Corpus registry
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class CorpusKernel:
    """One reference kernel: the function plus its profiling workload."""

    name: str
    fn: Callable
    calls: Tuple[Tuple, ...]
    description: str = ""

    def smoke(self) -> List[object]:
        """Run every sample call (sanity: the kernels are real programs)."""
        return [self.fn(*args) for args in self.calls]


def _kernel(fn: Callable, calls: Sequence[Tuple], description: str) -> CorpusKernel:
    return CorpusKernel(
        name=fn.__name__, fn=fn, calls=tuple(tuple(c) for c in calls),
        description=description,
    )


CORPUS: Dict[str, CorpusKernel] = {
    kernel.name: kernel
    for kernel in (
        _kernel(
            crc32_step,
            [(0xDEADBEEF, 0x5A, 0xEDB88320), (0x12345678, 0x01, 0xEDB88320)],
            "table-less CRC-32 bit step",
        ),
        _kernel(
            popcount32,
            [(0xFFFFFFFF,), (0x12345678,), (0,)],
            "SWAR 32-bit population count",
        ),
        _kernel(
            fir_tap4,
            [(0, 3, 5, -2, 7, 11, 1, 4, -6), (100, 1, 2, 3, 4, 5, 6, 7, 8)],
            "four FIR multiply-accumulate taps",
        ),
        _kernel(
            saturating_add,
            [(100, 50, 0, 255), (200, 100, 0, 255), (-10, 5, 0, 255)],
            "branchless saturating addition",
        ),
        _kernel(
            clamp_diff,
            [(90, 20, 5, 60), (3, 1, 5, 60), (20, 90, 5, 60)],
            "branchless absolute-difference clamp",
        ),
        _kernel(
            bit_reverse8,
            [(0b10110001,), (0xFF,), (0x01,)],
            "8-bit bit reversal ladder",
        ),
        _kernel(
            xorshift32,
            [(2463534242,), (88172645463325252 & _MASK32,)],
            "xorshift32 RNG round",
        ),
        _kernel(
            blowfish_mix,
            [(0x01234567, 0x89ABCDEF, 0x243F6A88, 0x3707344, 0x13198A2E)],
            "Blowfish-style Feistel mix",
        ),
        _kernel(
            adler32_step,
            [(1, 0, 0x61), (6553, 1234, 0xFF)],
            "Adler-32 checksum byte step",
        ),
        _kernel(
            adpcm_round,
            [(d, 16, 100) for d in range(8)],
            "ADPCM predictor update (conditionals)",
        ),
        _kernel(
            checksum_loop,
            [(32, 0xABCD), (8, 1)],
            "rolling checksum while-loop",
        ),
    )
}

#: Kernels whose whole body is one straight-line basic block; their frontend
#: DFGs are canonically identical to hand-built builder twins (tested).
STRAIGHT_LINE_KERNELS: Tuple[str, ...] = (
    "crc32_step",
    "popcount32",
    "fir_tap4",
    "saturating_add",
    "clamp_diff",
    "bit_reverse8",
    "xorshift32",
    "blowfish_mix",
    "adler32_step",
)


def corpus_names() -> List[str]:
    """Names of the bundled kernels, sorted."""
    return sorted(CORPUS)


def profile_kernel(name: str, profile: bool = True) -> ProfiledFunction:
    """Translate (and optionally profile) one corpus kernel."""
    kernel = CORPUS[name]
    if profile:
        return profile_function(kernel.fn, kernel.calls, name=kernel.name)
    return static_profile(kernel.fn, name=kernel.name)


def corpus_block_profiles(profile: bool = True) -> List[BlockProfile]:
    """Every non-trivial block of every corpus kernel, as pipeline inputs."""
    profiles: List[BlockProfile] = []
    for name in corpus_names():
        profiles.extend(profile_kernel(name, profile=profile).block_profiles())
    return profiles


def build_corpus_suite(
    profile: bool = True, name: str = "frontend_corpus"
) -> WorkloadSuite:
    """Compile the whole corpus into a persistable :class:`WorkloadSuite`.

    Per-block execution counts (measured when *profile* is true, uniform
    otherwise) are stored as suite ``execution_counts`` so they survive
    :meth:`WorkloadSuite.save` / :meth:`WorkloadSuite.load` round-trips.
    """
    suite = WorkloadSuite(name=name, metadata={"source": "repro.frontend.corpus"})
    for kernel_name in corpus_names():
        profiled = profile_kernel(kernel_name, profile=profile)
        for block_profile in profiled.block_profiles():
            suite.add(block_profile.graph)
            suite.set_execution_count(
                block_profile.graph.name, block_profile.execution_count
            )
    return suite
