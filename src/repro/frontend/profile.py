"""Execution-count profiling of Python functions, attributed to basic blocks.

The ISE merit function weighs each basic block by how often it executes
(Section 2 of the paper: the selection maximises cycles saved across the
whole application, so hot loop bodies dominate).  This module measures those
weights for real Python functions:

* on CPython 3.12+ it registers ``sys.monitoring`` ``LINE`` events for the
  target code object (the modern, low-overhead API);
* on 3.10 / 3.11 it falls back to a ``sys.settrace`` line tracer scoped to
  the target code object.

Line hits are then attributed to CFG basic blocks through each block's
*leader line* (the source line of its first instruction): CPython emits one
line event per executed line, and a block executes exactly when its leader
line does.  Blocks whose leader line is shared with an earlier block (e.g.
the ``while`` header that compiles into a guard block and a loop-back block)
inherit that line's count — a deliberate over-approximation that errs toward
weighting loop machinery equally with the loop body.
"""

from __future__ import annotations

import sys
import types
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..ise.pipeline import BlockProfile
from ..obs import runtime as obs
from .cfg import ControlFlowGraph
from .dfg_from_bytecode import FunctionDFGs, function_to_dfgs

@dataclass
class LineCounts:
    """Raw per-line hit counts for one code object."""

    code_name: str
    counts: Dict[int, int] = field(default_factory=dict)
    calls: int = 0

    def total(self) -> int:
        return sum(self.counts.values())


def _collect_with_monitoring(
    fn: Callable, code: types.CodeType, calls: Sequence[Tuple]
) -> LineCounts:
    monitoring = sys.monitoring
    tool_id = monitoring.PROFILER_ID
    counts: Dict[int, int] = {}

    def on_line(observed_code: types.CodeType, line: int):
        if observed_code is code:
            counts[line] = counts.get(line, 0) + 1
        return None

    monitoring.use_tool_id(tool_id, "repro-frontend")
    try:
        monitoring.register_callback(tool_id, monitoring.events.LINE, on_line)
        monitoring.set_local_events(tool_id, code, monitoring.events.LINE)
        for args in calls:
            fn(*args)
    finally:
        monitoring.set_local_events(tool_id, code, 0)
        monitoring.register_callback(tool_id, monitoring.events.LINE, None)
        monitoring.free_tool_id(tool_id)
    return LineCounts(code_name=code.co_name, counts=counts, calls=len(calls))


def _collect_with_settrace(
    fn: Callable, code: types.CodeType, calls: Sequence[Tuple]
) -> LineCounts:
    counts: Dict[int, int] = {}

    def local_tracer(frame, event, arg):
        if event == "line" and frame.f_code is code:
            line = frame.f_lineno
            counts[line] = counts.get(line, 0) + 1
        return local_tracer

    def global_tracer(frame, event, arg):
        if event == "call" and frame.f_code is code:
            return local_tracer
        return None

    previous = sys.gettrace()
    sys.settrace(global_tracer)
    try:
        for args in calls:
            fn(*args)
    finally:
        sys.settrace(previous)
    return LineCounts(code_name=code.co_name, counts=counts, calls=len(calls))


def collect_line_counts(fn: Callable, calls: Iterable[Tuple]) -> LineCounts:
    """Run *fn* once per argument tuple in *calls*, counting line events."""
    code = getattr(fn, "__code__", None)
    if code is None:
        raise TypeError(f"{fn!r} has no __code__; pass a plain Python function")
    call_list = [tuple(args) for args in calls]
    if hasattr(sys, "monitoring"):  # 3.12+
        return _collect_with_monitoring(fn, code, call_list)
    return _collect_with_settrace(fn, code, call_list)


def attribute_to_blocks(
    cfg: ControlFlowGraph, line_counts: LineCounts
) -> List[float]:
    """Per-block execution counts derived from *line_counts*.

    Each block takes the hit count of its leader line.  When the leader line
    never fired (the 3.11+ ``RESUME`` prelude carries the ``def`` line, which
    emits no line event) the block falls back to the maximum count over the
    lines it covers; a block none of whose lines ever fired is cold or dead
    and counts zero; blocks with no line information at all
    (compiler-generated glue) inherit the function's entry count.
    """
    entry_count = float(line_counts.calls)
    counts: List[float] = []
    for block in cfg.blocks:
        leader = block.leader_line
        if leader is not None and leader in line_counts.counts:
            counts.append(float(line_counts.counts[leader]))
            continue
        covered = [
            line_counts.counts[line]
            for line in block.lines
            if line in line_counts.counts
        ]
        if covered:
            counts.append(float(max(covered)))
        elif block.lines:
            counts.append(0.0)
        else:
            counts.append(entry_count)
    return counts


@dataclass
class ProfiledFunction:
    """A translated function together with per-block execution counts."""

    dfgs: FunctionDFGs
    block_counts: List[float]
    line_counts: Optional[LineCounts] = None

    def block_profiles(self, min_operations: int = 1) -> List[BlockProfile]:
        """ISE-pipeline inputs: one :class:`BlockProfile` per non-trivial block.

        Blocks with fewer than *min_operations* operation vertices (pure
        control-flow glue) are dropped — they cannot host a custom
        instruction and only add noise to the reports.
        """
        profiles: List[BlockProfile] = []
        for entry, count in zip(self.dfgs.blocks, self.block_counts):
            if entry.num_operations < min_operations:
                continue
            profiles.append(
                BlockProfile(graph=entry.graph, execution_count=max(count, 1.0))
            )
        return profiles

    def execution_counts(self) -> Dict[str, float]:
        """Graph-name → execution-count mapping (suite metadata form)."""
        return {
            entry.graph.name: count
            for entry, count in zip(self.dfgs.blocks, self.block_counts)
        }


def profile_function(
    fn: Callable,
    calls: Iterable[Tuple],
    name: Optional[str] = None,
) -> ProfiledFunction:
    """Translate *fn* to block DFGs and profile it on the given *calls*."""
    label = name or getattr(fn, "__name__", "?")
    with obs.tracer().span("frontend.translate", cat="frontend", function=label):
        dfgs = function_to_dfgs(fn, name=name)
    with obs.tracer().span(
        "frontend.profile", cat="frontend", function=label
    ) as span:
        line_counts = collect_line_counts(fn, calls)
        block_counts = attribute_to_blocks(dfgs.cfg, line_counts)
        span.note(calls=line_counts.calls, blocks=len(block_counts))
    metrics = obs.metrics()
    metrics.inc("frontend.functions_total")
    metrics.inc("frontend.blocks_total", len(dfgs.blocks))
    metrics.inc("frontend.profiled_calls_total", line_counts.calls)
    return ProfiledFunction(
        dfgs=dfgs, block_counts=block_counts, line_counts=line_counts
    )


def static_profile(
    fn: Callable,
    name: Optional[str] = None,
    default_count: float = 1.0,
) -> ProfiledFunction:
    """A :class:`ProfiledFunction` without running *fn* (uniform weights)."""
    label = name or getattr(fn, "__name__", "?")
    with obs.tracer().span("frontend.translate", cat="frontend", function=label):
        dfgs = function_to_dfgs(fn, name=name)
    metrics = obs.metrics()
    metrics.inc("frontend.functions_total")
    metrics.inc("frontend.blocks_total", len(dfgs.blocks))
    return ProfiledFunction(
        dfgs=dfgs,
        block_counts=[default_count] * len(dfgs.blocks),
        line_counts=None,
    )
