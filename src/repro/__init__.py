"""Reproduction of "Polynomial-Time Subgraph Enumeration for Automated
Instruction Set Extension" (Bonzini & Pozzi, DATE 2007).

Top-level convenience API::

    from repro import DFGBuilder, Constraints, enumerate_cuts

    builder = DFGBuilder("example")
    a, b = builder.inputs("a", "b")
    t = builder.add(a, b)
    out = builder.xor(t, b, live_out=True)
    graph = builder.build()

    result = enumerate_cuts(graph, Constraints(max_inputs=4, max_outputs=2))
    for cut in result:
        print(cut.describe())

Sub-packages
------------
``repro.dfg``
    Data-flow graph substrate (graphs, opcodes, augmentation, reachability).
``repro.dominators``
    Lengauer–Tarjan, dominator trees, multiple-vertex dominators.
``repro.core``
    The paper's contribution: polynomial-time convex-cut enumeration.
``repro.baselines``
    Pruned exhaustive search [15], brute-force oracle, connected-only search.
``repro.engine``
    Unified engine: pluggable algorithm registry + parallel batch runner.
``repro.ise``
    Custom-instruction merit estimation and selection.
``repro.workloads``
    Synthetic MiBench-like basic blocks, hand-written kernels, tree worst cases.
``repro.analysis``
    Runtime comparison harness and report generation.
``repro.memo``
    Canonical-form memoization: DFG canonicalization, a persistent
    content-addressed result store, and isomorphism-class deduplication.
``repro.frontend``
    Compiler frontend: Python bytecode → CFG → DFG ingestion with
    line-event profiling and a bundled pure-Python kernel corpus.
"""

from .baselines import (
    enumerate_connected_cuts,
    enumerate_cuts_brute_force,
    enumerate_cuts_exhaustive,
)
from .core import (
    FULL_PRUNING,
    NO_PRUNING,
    PAPER_DEFAULT_CONSTRAINTS,
    Constraints,
    Cut,
    EnumerationContext,
    EnumerationResult,
    EnumerationStats,
    PruningConfig,
    enumerate_cuts,
    enumerate_cuts_basic,
    enumerate_with_recovery,
)
from .dfg import DataFlowGraph, DFGBuilder, Opcode
from .engine import (
    BatchReport,
    BatchRunner,
    EnumerationRequest,
    available_algorithms,
    enumerate_batch,
    get_algorithm,
    register_algorithm,
)
from .memo import (
    CanonicalForm,
    ResultStore,
    canonical_form,
    canonical_hash,
    enumerate_deduplicated,
    group_by_isomorphism,
    iter_enumerate_deduplicated,
)

__version__ = "1.0.0"

__all__ = [
    "Constraints",
    "Cut",
    "EnumerationContext",
    "EnumerationResult",
    "EnumerationStats",
    "FULL_PRUNING",
    "NO_PRUNING",
    "PAPER_DEFAULT_CONSTRAINTS",
    "PruningConfig",
    "enumerate_cuts",
    "enumerate_cuts_basic",
    "enumerate_with_recovery",
    "enumerate_connected_cuts",
    "enumerate_cuts_brute_force",
    "enumerate_cuts_exhaustive",
    "BatchReport",
    "BatchRunner",
    "EnumerationRequest",
    "available_algorithms",
    "enumerate_batch",
    "get_algorithm",
    "register_algorithm",
    "CanonicalForm",
    "ResultStore",
    "canonical_form",
    "canonical_hash",
    "enumerate_deduplicated",
    "group_by_isomorphism",
    "iter_enumerate_deduplicated",
    "DataFlowGraph",
    "DFGBuilder",
    "Opcode",
    "__version__",
]
