"""The cut model: Definitions 1–4 and 6 of the paper, plus Theorem 1 helpers.

A *cut* is a set of vertices of the data-flow graph; its *inputs* are the
vertices outside the cut that feed it, its *outputs* are the cut vertices
with at least one consumer outside.  The enumeration algorithms manipulate
cuts as integer bit masks for speed; :class:`Cut` is the user-facing,
hashable, immutable wrapper built from those masks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, Optional, Tuple

from ..dfg.reachability import ids_from_mask, iterate_mask, mask_from_ids, popcount
from .context import EnumerationContext


@dataclass(frozen=True)
class Cut:
    """An immutable convex cut (candidate custom instruction).

    Equality and hashing consider only the vertex set, so cuts can be stored
    in sets and dictionaries regardless of how they were discovered.
    """

    nodes: FrozenSet[int]
    inputs: FrozenSet[int]
    outputs: FrozenSet[int]
    graph_name: str = ""
    context: Optional[EnumerationContext] = field(
        default=None, compare=False, hash=False, repr=False
    )

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_mask(cls, context: EnumerationContext, node_mask: int) -> "Cut":
        """Build a cut (computing its inputs and outputs) from a bit mask.

        Consults the context's in-search memo first: on the enumerators'
        acceptance path the profile of *node_mask* was just computed (and
        cached) by the validity test, and the batch parent rebuilding cuts
        from worker masks revisits the same masks across same-shape blocks.
        """
        view = context.insearch_view()
        if view is not None:
            inputs, outputs, _convex = view.cut_profile(node_mask)
        else:
            reach = context.reach
            inputs = reach.cut_inputs_mask(node_mask)
            outputs = reach.cut_outputs_mask(node_mask)
        return cls(
            nodes=frozenset(ids_from_mask(node_mask)),
            inputs=frozenset(ids_from_mask(inputs)),
            outputs=frozenset(ids_from_mask(outputs)),
            graph_name=context.graph_name(),
            context=context,
        )

    @classmethod
    def from_nodes(cls, context: EnumerationContext, nodes: Iterable[int]) -> "Cut":
        """Build a cut from an iterable of vertex ids."""
        return cls.from_mask(context, mask_from_ids(nodes))

    # ------------------------------------------------------------------ #
    # Size / basic accessors
    # ------------------------------------------------------------------ #
    @property
    def num_nodes(self) -> int:
        """Number of operations in the cut."""
        return len(self.nodes)

    @property
    def num_inputs(self) -> int:
        """Number of cut inputs ``|I(S)|``."""
        return len(self.inputs)

    @property
    def num_outputs(self) -> int:
        """Number of cut outputs ``|O(S)|``."""
        return len(self.outputs)

    def node_mask(self) -> int:
        """The cut as a bit mask."""
        return mask_from_ids(self.nodes)

    def sorted_nodes(self) -> Tuple[int, ...]:
        """Vertex ids in ascending order."""
        return tuple(sorted(self.nodes))

    # ------------------------------------------------------------------ #
    # Structural predicates (need the context)
    # ------------------------------------------------------------------ #
    def _require_context(self, context: Optional[EnumerationContext]) -> EnumerationContext:
        ctx = context or self.context
        if ctx is None:
            raise ValueError("this operation requires an EnumerationContext")
        return ctx

    def is_convex(self, context: Optional[EnumerationContext] = None) -> bool:
        """Definition 2: no path between two cut vertices leaves the cut."""
        ctx = self._require_context(context)
        return ctx.reach.is_convex_mask(self.node_mask())

    def inputs_to_output(
        self, output: int, context: Optional[EnumerationContext] = None
    ) -> FrozenSet[int]:
        """Definition 3: the inputs feeding *output* from inside the cut.

        Computed constructively as the inputs that reach *output* through a
        path whose interior lies entirely inside the cut.
        """
        ctx = self._require_context(context)
        if output not in self.outputs and output not in self.nodes:
            raise ValueError(f"vertex {output} is not part of the cut")
        mask = self.node_mask()
        reach = ctx.reach
        result = set()
        for input_vertex in self.inputs:
            # Walk from the input, only through cut vertices, looking for output.
            frontier = [
                succ
                for succ in ctx.successor_lists[input_vertex]
                if (mask >> succ) & 1
            ]
            seen = set(frontier)
            found = output in seen
            while frontier and not found:
                vertex = frontier.pop()
                if vertex == output:
                    found = True
                    break
                for succ in ctx.successor_lists[vertex]:
                    if (mask >> succ) & 1 and succ not in seen:
                        seen.add(succ)
                        frontier.append(succ)
            if found or output in seen:
                result.add(input_vertex)
        return frozenset(result)

    def is_connected(self, context: Optional[EnumerationContext] = None) -> bool:
        """Definition 4: single output, or every pair of outputs shares an input."""
        ctx = self._require_context(context)
        outputs = sorted(self.outputs)
        if len(outputs) <= 1:
            return True
        inputs_per_output = {o: self.inputs_to_output(o, ctx) for o in outputs}
        for i, first in enumerate(outputs):
            for second in outputs[i + 1 :]:
                if not (inputs_per_output[first] & inputs_per_output[second]):
                    return False
        return True

    def depth(self, context: Optional[EnumerationContext] = None) -> int:
        """Longest path (in vertices) through the cut — the latency proxy of [9, 10]."""
        ctx = self._require_context(context)
        mask = self.node_mask()
        order = [v for v in ctx.augmented.graph.topological_order() if (mask >> v) & 1]
        longest = {v: 1 for v in order}
        for v in order:
            for succ in ctx.successor_lists[v]:
                if (mask >> succ) & 1:
                    longest[succ] = max(longest[succ], longest[v] + 1)
        return max(longest.values()) if longest else 0

    def contains(self, node_id: int) -> bool:
        """``True`` if *node_id* belongs to the cut."""
        return node_id in self.nodes

    def overlaps(self, other: "Cut") -> bool:
        """``True`` if the two cuts share at least one vertex."""
        return bool(self.nodes & other.nodes)

    def describe(self, context: Optional[EnumerationContext] = None) -> str:
        """Short human-readable description (opcodes of the cut vertices)."""
        ctx = context or self.context
        if ctx is None:
            ops = ", ".join(str(v) for v in self.sorted_nodes())
        else:
            ops = ", ".join(
                ctx.augmented.graph.node(v).label for v in self.sorted_nodes()
            )
        return (
            f"Cut[{self.num_nodes} ops, {self.num_inputs} in, "
            f"{self.num_outputs} out]({ops})"
        )


# ---------------------------------------------------------------------- #
# Mask-level primitives shared by the enumerators and the validity checks
# ---------------------------------------------------------------------- #
def cut_inputs_mask(context: EnumerationContext, node_mask: int) -> int:
    """``I(S)`` as a mask (Definition 1)."""
    return context.reach.cut_inputs_mask(node_mask)


def cut_outputs_mask(context: EnumerationContext, node_mask: int) -> int:
    """``O(S)`` as a mask (Definition 1)."""
    return context.reach.cut_outputs_mask(node_mask)


def between_mask(context: EnumerationContext, sources_mask: int, target: int) -> int:
    """``B(V, w)`` as a mask (Definition 6)."""
    return context.reach.between_mask(sources_mask, target)


def build_body_mask(context: EnumerationContext, inputs_mask: int, outputs_mask: int) -> int:
    """Theorem 3 construction: ``S = ∪_{o ∈ O} B(I, o) \\ I`` as a mask."""
    body = 0
    reach_between = context.reach.between_mask
    for output in iterate_mask(outputs_mask):
        body |= reach_between(inputs_mask, output)
    return body & ~inputs_mask


def count_mask(mask: int) -> int:
    """Number of vertices in a mask (alias of :func:`repro.dfg.reachability.popcount`)."""
    return popcount(mask)
