"""Configuration of the pruning techniques of Section 5.3.

Every pruning rule can be toggled individually so that the ablation benchmark
(``benchmarks/bench_pruning_ablation.py``) can measure how much each one
contributes, and so the test suite can verify that none of them changes the
set of enumerated cuts (they only reduce the explored search space).
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class PruningConfig:
    """Which pruning techniques the incremental enumerator applies.

    Attributes
    ----------
    output_output:
        Output–output pruning: accept cuts whose *internal* outputs (outputs
        that were not explicitly chosen) keep the total within ``Nout``, and
        do not explicitly pick a vertex that is an ancestor of an already
        selected output.
    prune_while_building:
        Reject a branch as soon as the incrementally built ``S`` contains a
        forbidden vertex, and reject cuts with excess internal outputs once
        the output budget is exhausted.
    output_input:
        Skip input candidates whose every pairing with the chosen output is
        doomed: candidates with a forbidden vertex on some path to the output,
        and candidates that force at least ``Nin`` additional forbidden
        inputs.
    input_input:
        Skip seed sets in which a newly added input postdominates an input
        that is already part of the seed (or vice versa).
    connected_recovery:
        When a partially built cut temporarily exceeds the output budget,
        keep searching but only accept additional outputs that are reachable
        from an already selected input (Section 5.3, "Connectedness").
    dominator_input:
        Placeholder for the paper's dominator–input pruning.  The paper only
        sketches a "simplified version" of this rule; reproducing it exactly
        is not possible from the text, and enabling the flag currently has no
        effect.  It is kept so that ablation reports show the rule explicitly.
    """

    output_output: bool = True
    prune_while_building: bool = True
    output_input: bool = True
    input_input: bool = True
    connected_recovery: bool = True
    dominator_input: bool = False

    def disable(self, name: str) -> "PruningConfig":
        """Return a copy with the pruning *name* switched off."""
        if not hasattr(self, name):
            raise AttributeError(f"unknown pruning flag {name!r}")
        return replace(self, **{name: False})

    def enabled_names(self) -> list:
        """Names of the pruning rules that are switched on."""
        return [
            name
            for name in (
                "output_output",
                "prune_while_building",
                "output_input",
                "input_input",
                "connected_recovery",
                "dominator_input",
            )
            if getattr(self, name)
        ]


#: All prunings on — the configuration the paper benchmarks.
FULL_PRUNING = PruningConfig()

#: Every pruning off — the plain incremental algorithm of Figure 3.
NO_PRUNING = PruningConfig(
    output_output=False,
    prune_while_building=False,
    output_input=False,
    input_input=False,
    connected_recovery=False,
    dominator_input=False,
)
