"""Enumeration statistics and result containers."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, FrozenSet, Iterator, List, Optional, Set

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from .cut import Cut


@dataclass
class EnumerationStats:
    """Counters collected while enumerating cuts.

    The counters mirror the quantities the paper discusses: the number of
    Lengauer–Tarjan invocations (the kernel that takes "at least 70% of the
    time"), the number of candidate cuts submitted to the validity check, and
    how many branches each pruning rule removed.
    """

    cuts_found: int = 0
    duplicates: int = 0
    candidates_checked: int = 0
    lt_calls: int = 0
    pick_output_calls: int = 0
    pick_input_calls: int = 0
    pruned: Dict[str, int] = field(default_factory=dict)
    elapsed_seconds: float = 0.0
    #: Wall time spent inside the Lengauer–Tarjan dominator kernel itself
    #: (fresh runs only — region-cache hits cost no kernel time).
    lt_seconds: float = 0.0
    #: Hit/miss counters of the ReachabilityIndex forbidden-between memo
    #: (bounded; see repro.dfg.reachability.FORBIDDEN_BETWEEN_CACHE_LIMIT).
    forbidden_cache_hits: int = 0
    forbidden_cache_misses: int = 0
    #: Consultation counters of the in-search memo (repro.memo.insearch):
    #: hits/misses of the per-domain verdict tables plus the entries evicted
    #: from them while this run was active.  All zero when the memo is off.
    insearch_hits: int = 0
    insearch_misses: int = 0
    insearch_evictions: int = 0

    def count_pruned(self, rule: str, amount: int = 1) -> None:
        """Record that *rule* pruned *amount* branches."""
        self.pruned[rule] = self.pruned.get(rule, 0) + amount

    def merge(self, other: "EnumerationStats") -> None:
        """Accumulate the counters of *other* into this object."""
        self.cuts_found += other.cuts_found
        self.duplicates += other.duplicates
        self.candidates_checked += other.candidates_checked
        self.lt_calls += other.lt_calls
        self.pick_output_calls += other.pick_output_calls
        self.pick_input_calls += other.pick_input_calls
        self.elapsed_seconds += other.elapsed_seconds
        self.lt_seconds += other.lt_seconds
        self.forbidden_cache_hits += other.forbidden_cache_hits
        self.forbidden_cache_misses += other.forbidden_cache_misses
        self.insearch_hits += other.insearch_hits
        self.insearch_misses += other.insearch_misses
        self.insearch_evictions += other.insearch_evictions
        for rule, amount in other.pruned.items():
            self.count_pruned(rule, amount)

    def summary(self) -> str:
        """Multi-line human-readable summary."""
        lines = [
            f"cuts found          : {self.cuts_found}",
            f"duplicates          : {self.duplicates}",
            f"candidates checked  : {self.candidates_checked}",
            f"Lengauer-Tarjan runs: {self.lt_calls}",
            f"output expansions   : {self.pick_output_calls}",
            f"input expansions    : {self.pick_input_calls}",
            f"elapsed             : {self.elapsed_seconds:.4f} s",
        ]
        if self.lt_seconds:
            lines.append(f"LT kernel time      : {self.lt_seconds:.4f} s")
        if self.forbidden_cache_hits or self.forbidden_cache_misses:
            lines.append(
                "forbidden-path cache: "
                f"{self.forbidden_cache_hits} hits / "
                f"{self.forbidden_cache_misses} misses"
            )
        if self.insearch_hits or self.insearch_misses:
            lines.append(
                "in-search memo      : "
                f"{self.insearch_hits} hits / "
                f"{self.insearch_misses} misses / "
                f"{self.insearch_evictions} evicted"
            )
        for rule in sorted(self.pruned):
            lines.append(f"pruned[{rule}]: {self.pruned[rule]}")
        return "\n".join(lines)


@dataclass
class EnumerationResult:
    """Outcome of a cut enumeration run.

    Attributes
    ----------
    cuts:
        The distinct valid cuts, in discovery order.
    stats:
        Search statistics.
    graph_name:
        Name of the graph that was enumerated (for reports).
    algorithm:
        Identifier of the algorithm that produced the result.
    """

    cuts: List["Cut"] = field(default_factory=list)
    stats: EnumerationStats = field(default_factory=EnumerationStats)
    graph_name: str = ""
    algorithm: str = ""

    def __len__(self) -> int:
        return len(self.cuts)

    def __iter__(self) -> Iterator["Cut"]:
        return iter(self.cuts)

    def node_sets(self) -> Set[FrozenSet[int]]:
        """The cuts as a set of frozen vertex-id sets (order-independent)."""
        return {cut.nodes for cut in self.cuts}

    def largest(self, count: int = 1) -> List["Cut"]:
        """The *count* largest cuts by number of vertices."""
        return sorted(self.cuts, key=lambda cut: len(cut.nodes), reverse=True)[:count]

    def filter(self, predicate: Callable[["Cut"], bool]) -> List["Cut"]:
        """Cuts satisfying *predicate*."""
        return [cut for cut in self.cuts if predicate(cut)]


class Stopwatch:
    """Tiny context manager storing the elapsed wall-clock time into stats."""

    def __init__(self, stats: EnumerationStats) -> None:
        self._stats = stats
        self._start: Optional[float] = None

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        assert self._start is not None
        self._stats.elapsed_seconds += time.perf_counter() - self._start
