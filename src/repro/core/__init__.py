"""Core contribution of the paper: polynomial-time convex-cut enumeration.

The package exposes two enumeration algorithms with identical results:

* :func:`enumerate_cuts_basic` — the straightforward algorithm of Figure 2
  (precompute all generalized dominators, then couple outputs with them);
* :func:`enumerate_cuts` — the incremental algorithm of Figure 3 with the
  pruning techniques of Section 5.3, the variant the paper benchmarks.

Supporting classes: :class:`Constraints` (the microarchitectural I/O budget),
:class:`Cut` (an enumerated convex cut), :class:`EnumerationContext` (the
precomputed graph view), :class:`PruningConfig` (toggles for the pruning
rules) and :class:`EnumerationResult`/:class:`EnumerationStats`.
"""

from .constraints import PAPER_DEFAULT_CONSTRAINTS, Constraints
from .context import EnumerationContext
from .cut import Cut, between_mask, build_body_mask, cut_inputs_mask, cut_outputs_mask
from .enumeration import enumerate_cuts_basic
from .incremental import IncrementalEnumerator, enumerate_cuts
from .pruning import FULL_PRUNING, NO_PRUNING, PruningConfig
from .recovery import enumerate_with_recovery, head_vertices, recover_excluded_cuts
from .stats import EnumerationResult, EnumerationStats
from .validity import (
    ValidityReport,
    check_cut_mask,
    enumerable_by_paper_algorithm,
    is_io_identified,
    is_valid_cut_mask,
    satisfies_technical_condition,
)

__all__ = [
    "PAPER_DEFAULT_CONSTRAINTS",
    "Constraints",
    "EnumerationContext",
    "Cut",
    "build_body_mask",
    "between_mask",
    "cut_inputs_mask",
    "cut_outputs_mask",
    "enumerate_cuts_basic",
    "IncrementalEnumerator",
    "enumerate_cuts",
    "FULL_PRUNING",
    "NO_PRUNING",
    "PruningConfig",
    "enumerate_with_recovery",
    "head_vertices",
    "recover_excluded_cuts",
    "EnumerationResult",
    "EnumerationStats",
    "ValidityReport",
    "check_cut_mask",
    "enumerable_by_paper_algorithm",
    "is_io_identified",
    "is_valid_cut_mask",
    "satisfies_technical_condition",
]
