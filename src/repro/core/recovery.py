"""Recovery of valid cuts that the paper's enumeration deliberately excludes.

Section 3 adds a *technical condition* to the definition of a valid cut (every
input must have a root path that avoids the other inputs) and notes that the
excluded cuts "can be used to find the cuts that were lost": the excluded cut
plus the offending input is itself a valid cut, which the algorithm does find.

During this reproduction we additionally identified a second, closely related
family of valid cuts the Theorem 3 construction cannot rebuild: cuts where one
input is reachable from another input through vertices *outside* the cut (see
:func:`repro.core.validity.is_io_identified`).  Both families share the same
structure — they are obtained from an enumerated cut by peeling off vertices
at the top — so a single post-processing pass recovers them: starting from the
enumerated cuts, repeatedly remove a vertex that has no predecessor inside the
cut, and keep every result that is a valid cut under the constraints.

The pass is a closure (it iterates until no new cut appears).  It is complete
whenever the missing cut can be reached from an enumerated cut through a chain
of head removals whose intermediate steps respect the input budget; the
property-based tests measure how close the combination
"paper algorithm + recovery" gets to the exhaustive baseline in practice.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from ..dfg.reachability import iterate_mask
from .context import EnumerationContext
from .cut import Cut
from .stats import EnumerationResult
from .validity import is_valid_cut_mask


def head_vertices(context: EnumerationContext, body_mask: int) -> List[int]:
    """Vertices of the cut that have no predecessor inside the cut.

    Removing such a vertex keeps the remaining set convex: a path between two
    remaining vertices cannot pass through the removed vertex, because the
    removed vertex has no predecessor in the cut.
    """
    result = []
    predecessors_mask = context.reach.predecessors_mask
    for vertex in iterate_mask(body_mask):
        if not (predecessors_mask(vertex) & body_mask):
            result.append(vertex)
    return result


def recover_excluded_cuts(
    context: EnumerationContext,
    cuts: Iterable[Cut],
    max_extra: Optional[int] = None,
) -> List[Cut]:
    """Return additional valid cuts reachable from *cuts* by head removals.

    Parameters
    ----------
    context:
        The enumeration context the cuts were produced with.
    cuts:
        Cuts already found by an enumeration algorithm.
    max_extra:
        Optional safety bound on the number of recovered cuts (``None`` means
        unlimited).

    Returns
    -------
    list of Cut
        Only the *new* cuts (the input cuts are not repeated).
    """
    known: Set[int] = set()
    frontier: List[int] = []
    for cut in cuts:
        mask = cut.node_mask()
        known.add(mask)
        frontier.append(mask)

    recovered: Dict[int, Cut] = {}
    while frontier:
        mask = frontier.pop()
        for vertex in head_vertices(context, mask):
            reduced = mask & ~(1 << vertex)
            if reduced == 0 or reduced in known:
                continue
            known.add(reduced)
            # Even when the reduced set violates the input budget it may lead
            # to further reductions that are valid again, so always keep
            # exploring from it.
            frontier.append(reduced)
            if is_valid_cut_mask(context, reduced):
                recovered[reduced] = Cut.from_mask(context, reduced)
                if max_extra is not None and len(recovered) >= max_extra:
                    return list(recovered.values())
    return list(recovered.values())


def enumerate_with_recovery(result: EnumerationResult, context: EnumerationContext) -> EnumerationResult:
    """Augment an enumeration result with the recovered cuts.

    Returns a new :class:`EnumerationResult` whose ``cuts`` list contains the
    original cuts followed by the recovered ones, and whose algorithm name is
    tagged with ``+recovery``.
    """
    extra = recover_excluded_cuts(context, result.cuts)
    combined = list(result.cuts) + extra
    stats = result.stats
    stats.cuts_found = len(combined)
    return EnumerationResult(
        cuts=combined,
        stats=stats,
        graph_name=result.graph_name,
        algorithm=f"{result.algorithm}+recovery",
    )
