"""Microarchitectural constraints on candidate instruction-set extensions.

Section 3 of the paper parameterises the enumeration problem with the number
of register-file read ports (``Nin``), the number of write ports (``Nout``),
and a set of forbidden vertices.  This module bundles those parameters (plus
the optional restrictions discussed in the related-work and pruning sections:
connectedness and a depth limit) into a single validated value object.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, Optional


@dataclass(frozen=True)
class Constraints:
    """Constraints a convex cut must satisfy to be a valid custom instruction.

    Attributes
    ----------
    max_inputs:
        ``Nin`` — maximum number of cut inputs (register-file read ports).
    max_outputs:
        ``Nout`` — maximum number of cut outputs (register-file write ports).
    allow_memory_ops:
        When ``True``, loads and stores are allowed inside custom instructions
        (a custom functional unit with a memory port, cf. Biswas et al. [7]);
        by default they are forbidden, as in the paper's experiments.
    connected_only:
        Restrict the enumeration to connected cuts (Definition 4), the
        simplification adopted by Yu and Mitra [17].  The paper's algorithm
        "can be set up to only search for connected cuts" (Section 5.3).
    max_depth:
        Optional limit on the depth (longest path, in operations) of a cut,
        the restriction used by Configurable Compute Accelerators (Clark et
        al. [10]) and by Choi et al. [9].  ``None`` means unlimited.
    extra_forbidden:
        Additional vertex ids forbidden by the user on top of the opcode-based
        defaults.
    """

    max_inputs: int = 4
    max_outputs: int = 2
    allow_memory_ops: bool = False
    connected_only: bool = False
    max_depth: Optional[int] = None
    extra_forbidden: FrozenSet[int] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        if self.max_inputs < 1:
            raise ValueError(f"max_inputs must be >= 1, got {self.max_inputs}")
        if self.max_outputs < 1:
            raise ValueError(f"max_outputs must be >= 1, got {self.max_outputs}")
        if self.max_depth is not None and self.max_depth < 1:
            raise ValueError(f"max_depth must be >= 1 or None, got {self.max_depth}")
        if not isinstance(self.extra_forbidden, frozenset):
            object.__setattr__(self, "extra_forbidden", frozenset(self.extra_forbidden))

    def with_io(self, max_inputs: int, max_outputs: int) -> "Constraints":
        """Return a copy with a different input/output budget."""
        return Constraints(
            max_inputs=max_inputs,
            max_outputs=max_outputs,
            allow_memory_ops=self.allow_memory_ops,
            connected_only=self.connected_only,
            max_depth=self.max_depth,
            extra_forbidden=self.extra_forbidden,
        )

    def with_forbidden(self, extra_forbidden: Iterable[int]) -> "Constraints":
        """Return a copy with additional user-forbidden vertices."""
        return Constraints(
            max_inputs=self.max_inputs,
            max_outputs=self.max_outputs,
            allow_memory_ops=self.allow_memory_ops,
            connected_only=self.connected_only,
            max_depth=self.max_depth,
            extra_forbidden=frozenset(self.extra_forbidden) | frozenset(extra_forbidden),
        )

    def describe(self) -> str:
        """Human-readable one-line summary of the constraint set."""
        parts = [f"Nin={self.max_inputs}", f"Nout={self.max_outputs}"]
        if self.allow_memory_ops:
            parts.append("memory-ops-allowed")
        if self.connected_only:
            parts.append("connected-only")
        if self.max_depth is not None:
            parts.append(f"max-depth={self.max_depth}")
        if self.extra_forbidden:
            parts.append(f"extra-forbidden={sorted(self.extra_forbidden)}")
        return ", ".join(parts)


#: The constraint set used for Figure 5 of the paper (4 inputs, 2 outputs,
#: memory operations forbidden).
PAPER_DEFAULT_CONSTRAINTS = Constraints(max_inputs=4, max_outputs=2)
