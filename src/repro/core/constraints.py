"""Microarchitectural constraints on candidate instruction-set extensions.

Section 3 of the paper parameterises the enumeration problem with the number
of register-file read ports (``Nin``), the number of write ports (``Nout``),
and a set of forbidden vertices.  This module bundles those parameters (plus
the optional restrictions discussed in the related-work and pruning sections:
connectedness and a depth limit) into a single validated value object.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields
from typing import Dict, FrozenSet, Iterable, Optional


@dataclass(frozen=True)
class Constraints:
    """Constraints a convex cut must satisfy to be a valid custom instruction.

    Attributes
    ----------
    max_inputs:
        ``Nin`` — maximum number of cut inputs (register-file read ports).
    max_outputs:
        ``Nout`` — maximum number of cut outputs (register-file write ports).
    allow_memory_ops:
        When ``True``, loads and stores are allowed inside custom instructions
        (a custom functional unit with a memory port, cf. Biswas et al. [7]);
        by default they are forbidden, as in the paper's experiments.
    connected_only:
        Restrict the enumeration to connected cuts (Definition 4), the
        simplification adopted by Yu and Mitra [17].  The paper's algorithm
        "can be set up to only search for connected cuts" (Section 5.3).
    max_depth:
        Optional limit on the depth (longest path, in operations) of a cut,
        the restriction used by Configurable Compute Accelerators (Clark et
        al. [10]) and by Choi et al. [9].  ``None`` means unlimited.
    extra_forbidden:
        Additional vertex ids forbidden by the user on top of the opcode-based
        defaults.
    """

    max_inputs: int = 4
    max_outputs: int = 2
    allow_memory_ops: bool = False
    connected_only: bool = False
    max_depth: Optional[int] = None
    extra_forbidden: FrozenSet[int] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        if self.max_inputs < 1:
            raise ValueError(f"max_inputs must be >= 1, got {self.max_inputs}")
        if self.max_outputs < 1:
            raise ValueError(f"max_outputs must be >= 1, got {self.max_outputs}")
        if self.max_depth is not None and self.max_depth < 1:
            raise ValueError(f"max_depth must be >= 1 or None, got {self.max_depth}")
        if not isinstance(self.extra_forbidden, frozenset):
            object.__setattr__(self, "extra_forbidden", frozenset(self.extra_forbidden))

    def with_io(self, max_inputs: int, max_outputs: int) -> "Constraints":
        """Return a copy with a different input/output budget."""
        return Constraints(
            max_inputs=max_inputs,
            max_outputs=max_outputs,
            allow_memory_ops=self.allow_memory_ops,
            connected_only=self.connected_only,
            max_depth=self.max_depth,
            extra_forbidden=self.extra_forbidden,
        )

    def with_forbidden(self, extra_forbidden: Iterable[int]) -> "Constraints":
        """Return a copy with additional user-forbidden vertices."""
        return Constraints(
            max_inputs=self.max_inputs,
            max_outputs=self.max_outputs,
            allow_memory_ops=self.allow_memory_ops,
            connected_only=self.connected_only,
            max_depth=self.max_depth,
            extra_forbidden=frozenset(self.extra_forbidden) | frozenset(extra_forbidden),
        )

    # ------------------------------------------------------------------ #
    # Serialization / cache keys
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable dictionary form (inverse of :meth:`from_dict`).

        The dictionary is canonical (``extra_forbidden`` is a sorted list, so
        two equal constraint objects always produce the identical dictionary)
        and is derived from the dataclass fields, so a field added to the
        class can never be silently dropped from cache-key fingerprints.
        """
        result: Dict[str, object] = {}
        for spec in fields(self):
            value = getattr(self, spec.name)
            if isinstance(value, frozenset):
                value = sorted(value)
            result[spec.name] = value
        return result

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Constraints":
        """Rebuild a :class:`Constraints` from :meth:`to_dict` output.

        Unknown keys are rejected so that a corrupted or future-format
        dictionary fails loudly instead of silently dropping a constraint.
        """
        known = {spec.name for spec in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown constraint field(s): {', '.join(sorted(unknown))}"
            )
        max_depth = data.get("max_depth")
        return cls(
            max_inputs=int(data.get("max_inputs", 4)),
            max_outputs=int(data.get("max_outputs", 2)),
            allow_memory_ops=bool(data.get("allow_memory_ops", False)),
            connected_only=bool(data.get("connected_only", False)),
            max_depth=None if max_depth is None else int(max_depth),
            extra_forbidden=frozenset(
                int(v) for v in data.get("extra_forbidden", ())
            ),
        )

    def fingerprint(self) -> str:
        """Stable content hash of the constraint set.

        Used as a component of memoization-cache keys: two constraint objects
        have the same fingerprint exactly when they compare equal, across
        processes and interpreter versions.
        """
        # Cold administrative helper: fingerprints are computed once per
        # cache-key derivation, never inside the enumeration loops.
        payload = json.dumps(  # repro-lint: disable=hot-path-impure-call
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def describe(self) -> str:
        """Human-readable one-line summary of the constraint set."""
        parts = [f"Nin={self.max_inputs}", f"Nout={self.max_outputs}"]
        if self.allow_memory_ops:
            parts.append("memory-ops-allowed")
        if self.connected_only:
            parts.append("connected-only")
        if self.max_depth is not None:
            parts.append(f"max-depth={self.max_depth}")
        if self.extra_forbidden:
            parts.append(f"extra-forbidden={sorted(self.extra_forbidden)}")
        return ", ".join(parts)


#: The constraint set used for Figure 5 of the paper (4 inputs, 2 outputs,
#: memory operations forbidden).
PAPER_DEFAULT_CONSTRAINTS = Constraints(max_inputs=4, max_outputs=2)
