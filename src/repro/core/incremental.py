"""The incremental enumeration algorithm (Figure 3) with the Section 5.3 prunings.

``POLY-ENUM-INCR`` interleaves the choice of outputs with the Dubrova-style
exploration of their multiple-vertex dominators, and builds the cut body ``S``
incrementally: picking an output ``o`` adds ``B(I, o)``, picking an input
``w`` adds ``B({w}, o)``.  The body is kept as the *raw* union of those
contributions and the chosen inputs are masked out whenever the body is
inspected — this reproduces the ``S = ∪ B(I, o) \\ I`` construction of
Theorem 3 with the final input set, which matters when an input chosen late in
the search lies on a path contributed earlier.  Because the body is a Python
integer bit mask, "saving the old tail of S" (Section 5.4) is free — the
recursion simply keeps the previous mask.

The hot path is organised around precomputation and incrementality:

* the ``B({w}, o)`` contributions come from the context's
  :class:`~repro.core.context.ContributionTables` (one closure intersection
  per (vertex, output) pair, computed once and shared across pruning
  configurations and batch workers through the engine's context cache);
* the dominator queries go through the context's shared caches — one
  Lengauer–Tarjan run per distinct *reachable region*, answering the
  completion query of every output of that region;
* the postdominator pair-loops of the admissibility and input–input checks
  are single mask intersections against precomputed comparability masks;
* the per-cut acceptance test derives inputs, outputs and convexity in one
  pass over the candidate's set bits
  (:meth:`~repro.dfg.reachability.ReachabilityIndex.cut_profile`); the full
  definitional re-derivation (:func:`~repro.core.validity.check_cut_mask`)
  runs only as a debug assertion when ``REPRO_DEBUG_VALIDITY`` is set.

The pruning techniques of Section 5.3 are individually switchable through
:class:`~repro.core.pruning.PruningConfig`; the test-suite verifies that every
configuration reports exactly the same set of cuts (and that the optimized
paths stay bit-identical to the frozen pre-optimization snapshot in
:mod:`repro.baselines.legacy_incremental`), and the ablation benchmark
measures how much search each rule removes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..dfg.graph import DataFlowGraph
from ..dfg.reachability import ids_from_mask
from .constraints import Constraints
from .context import EnumerationContext
from .cut import Cut
from .pruning import FULL_PRUNING, PruningConfig
from .stats import EnumerationResult, EnumerationStats, Stopwatch
from .validity import _cut_depth, _is_connected_mask, check_cut_mask, debug_validation_enabled

ALGORITHM_NAME = "poly-enum-incremental"


def enumerate_cuts(
    graph: DataFlowGraph,
    constraints: Optional[Constraints] = None,
    pruning: PruningConfig = FULL_PRUNING,
    context: Optional[EnumerationContext] = None,
) -> EnumerationResult:
    """Enumerate all convex cuts of *graph* with the incremental algorithm.

    This is the library's primary entry point; see
    :func:`repro.core.enumeration.enumerate_cuts_basic` for the reference
    (non-incremental) variant.
    """
    enumerator = IncrementalEnumerator(graph, constraints, pruning, context)
    return enumerator.run()


class IncrementalEnumerator:
    """Stateful implementation of ``POLY-ENUM-INCR`` (Figure 3)."""

    def __init__(
        self,
        graph: DataFlowGraph,
        constraints: Optional[Constraints] = None,
        pruning: PruningConfig = FULL_PRUNING,
        context: Optional[EnumerationContext] = None,
    ) -> None:
        self.graph = graph
        self.ctx = context or EnumerationContext.build(graph, constraints)
        self.pruning = pruning
        self.stats = EnumerationStats()
        self._found: Dict[int, Cut] = {}
        # Search-state dedup: the same (inputs, outputs, body) state is
        # reached through many different orderings of the same choices; the
        # set collapses those orderings without changing the reachable
        # states.  (The dominator/contribution memoisation lives on the
        # context and is shared across runs.)
        self._visited_states: set = set()
        self._tables = self.ctx.contribution_tables
        self._debug_validate = debug_validation_enabled()
        # In-search memo (repro.memo.insearch): every memoizable hot-path
        # query dispatches through one bound method, resolved here once —
        # to the memo view when one is active, straight to the underlying
        # computation otherwise — so the search itself never branches on
        # the toggle.  The memo only short-circuits recomputation; the
        # visited search states are identical either way.
        view = self.ctx.insearch_view()
        self._insearch = view
        if view is not None:
            self._cut_profile = view.cut_profile
            self._cut_outputs = view.cut_outputs
            self._between_union = view.between_union
            self._is_connected = view.is_connected
            self._cut_depth = view.cut_depth
            self._seed_ids = view.ids_tuple
        else:
            self._cut_profile = self.ctx.reach.cut_profile
            self._cut_outputs = self.ctx.reach.cut_outputs_mask
            self._between_union = self._tables.between_union
            self._is_connected = self._is_connected_raw
            self._cut_depth = self._cut_depth_raw
            self._seed_ids = ids_from_mask
        # Candidate outputs in topological order: picking outputs
        # ancestors-first guarantees every output set can be selected without
        # tripping the output-output pruning.
        topo_positions = {
            v: i for i, v in enumerate(self.ctx.augmented.graph.topological_order())
        }
        self._output_candidates: List[int] = sorted(
            self.ctx.candidate_nodes, key=lambda v: topo_positions[v]
        )
        self._forbidden_succ_mask = self._nodes_with_forbidden_successor()
        # Postdominator comparability rows: bit u of row v set iff u
        # (post)dominates v or vice versa.  Replaces the pair-loops of the
        # output-admissibility and input-input checks with one AND each.
        postdom = self.ctx.postdom_tree
        self._postdom_comparable: List[int] = [
            postdom.comparability_mask(v) for v in range(self.ctx.num_nodes)
        ]

    # ------------------------------------------------------------------ #
    def run(self) -> EnumerationResult:
        """Execute the search and return the enumeration result."""
        reach = self.ctx.reach
        hits_before = reach.forbidden_cache_hits
        misses_before = reach.forbidden_cache_misses
        lt_seconds_before = self.ctx.lt_seconds_performed
        memo = self._insearch.memo if self._insearch is not None else None
        if memo is not None:
            ins_hits_before, ins_misses_before, ins_evictions_before = memo.counters()
        with Stopwatch(self.stats):
            self._pick_output(
                inputs_mask=0,
                outputs_mask=0,
                body_mask=0,
                nin_left=self.ctx.max_inputs,
                nout_left=self.ctx.max_outputs,
            )
        self.stats.cuts_found = len(self._found)
        self.stats.forbidden_cache_hits = reach.forbidden_cache_hits - hits_before
        self.stats.forbidden_cache_misses = reach.forbidden_cache_misses - misses_before
        self.stats.lt_seconds = self.ctx.lt_seconds_performed - lt_seconds_before
        if memo is not None:
            ins_hits, ins_misses, ins_evictions = memo.counters()
            self.stats.insearch_hits = ins_hits - ins_hits_before
            self.stats.insearch_misses = ins_misses - ins_misses_before
            self.stats.insearch_evictions = ins_evictions - ins_evictions_before
        return EnumerationResult(
            cuts=list(self._found.values()),
            stats=self.stats,
            graph_name=self.graph.name,
            algorithm=ALGORITHM_NAME,
        )

    # ------------------------------------------------------------------ #
    # PICK-OUTPUT
    # ------------------------------------------------------------------ #
    def _pick_output(
        self,
        inputs_mask: int,
        outputs_mask: int,
        body_mask: int,
        nin_left: int,
        nout_left: int,
    ) -> None:
        self.stats.pick_output_calls += 1
        ctx = self.ctx
        reach = ctx.reach
        comparable = self._postdom_comparable

        has_internal_outputs = False
        require_connected = ctx.constraints.connected_only
        if outputs_mask and (self.pruning.connected_recovery or require_connected):
            effective = body_mask & ~inputs_mask & ~ctx.forbidden_mask
            current_outputs = self._cut_outputs(effective)
            has_internal_outputs = (
                current_outputs.bit_count() > outputs_mask.bit_count()
            )
        if not require_connected:
            require_connected = (
                self.pruning.connected_recovery and has_internal_outputs
            )

        output_output = self.pruning.output_output
        count_pruned = self.stats.count_pruned
        for output in self._output_candidates:
            if (outputs_mask >> output) & 1:
                continue
            # Section 5.1: chosen outputs may not postdominate one another.
            if comparable[output] & outputs_mask:
                continue
            if output_output and (
                reach.descendants_mask(output) & outputs_mask
            ):
                # Output-output pruning: ancestors of a chosen output.
                count_pruned("output_output")
                continue
            if outputs_mask and require_connected:
                if inputs_mask == 0 or not (
                    reach.ancestors_mask(output) & inputs_mask
                ):
                    count_pruned("connectedness")
                    continue

            new_outputs_mask = outputs_mask | (1 << output)
            if inputs_mask:
                new_body_mask = body_mask | self._between_union(inputs_mask, output)
            else:
                new_body_mask = body_mask

            if inputs_mask and ctx.dominated_by(inputs_mask, output):
                self._check_cut(
                    inputs_mask,
                    new_outputs_mask,
                    new_body_mask,
                    nin_left,
                    nout_left - 1,
                )
            elif nin_left > 0:
                self._pick_inputs(
                    inputs_mask,
                    output,
                    new_outputs_mask,
                    new_body_mask,
                    nin_left,
                    nout_left - 1,
                )

    # ------------------------------------------------------------------ #
    # PICK-INPUTS
    # ------------------------------------------------------------------ #
    def _pick_inputs(
        self,
        inputs_mask: int,
        output: int,
        outputs_mask: int,
        body_mask: int,
        nin_left: int,
        nout_left: int,
    ) -> None:
        self.stats.pick_input_calls += 1
        ctx = self.ctx
        tables = self._tables
        comparable = self._postdom_comparable

        state = (inputs_mask, outputs_mask, body_mask, output)
        if state in self._visited_states:
            return
        self._visited_states.add(state)

        step, fresh_lt_calls = ctx.dominator_completions_for(inputs_mask, output)
        self.stats.lt_calls += fresh_lt_calls

        if step.already_dominated:
            self._check_cut(
                inputs_mask, outputs_mask, body_mask, nin_left, nout_left
            )
            return

        output_input = self.pruning.output_input
        input_input = self.pruning.input_input
        prune_while_building = self.pruning.prune_while_building
        count_pruned = self.stats.count_pruned
        source = ctx.source
        # Both candidate loops below test the same two prunings against the
        # fixed *output*, so the per-(vertex, output) table rows are fetched
        # once here and indexed per candidate.
        #
        # Output-input pruning (Section 5.3): a forbidden vertex lying on a
        # path from the candidate input to the output ends up inside the
        # constructed body unless it is itself chosen as an input — so
        # forbidden vertices already promoted to inputs are ignored by the
        # test.  The paper additionally proposes a static bound counting the
        # forbidden predecessors of the vertices between candidate and
        # output ("if these nodes are Nin or more, v will not be a valid
        # input for w"); during this reproduction that bound turned out to
        # exclude a small number of valid cuts — the ones in which the
        # vertex with the forbidden predecessor is itself promoted to a cut
        # input — and it is therefore not applied; see EXPERIMENTS.md.
        #
        # Input-input pruning: chosen seed-set members may not postdominate
        # one another (one AND against the comparability row).
        forbidden_interiors = tables.forbidden_interior_table(output)
        between_row = tables.between_table(output)
        for completion in step.completions:
            if completion == source or (inputs_mask >> completion) & 1:
                continue
            if output_input and forbidden_interiors[completion] & ~inputs_mask:
                count_pruned("output_input_forbidden_path")
                continue
            if input_input and comparable[completion] & inputs_mask:
                count_pruned("input_input_postdom")
                continue
            new_inputs_mask = inputs_mask | (1 << completion)
            new_body_mask = body_mask | between_row[completion]
            if prune_while_building and self._prune_body(
                new_body_mask, new_inputs_mask
            ):
                continue
            self._check_cut(
                new_inputs_mask,
                outputs_mask,
                new_body_mask,
                nin_left - 1,
                nout_left,
            )

        if nin_left > 1:
            # Extend the seed set with another ancestor of the output.
            for seed in self._seed_candidates(output, inputs_mask):
                if output_input and forbidden_interiors[seed] & ~inputs_mask:
                    count_pruned("output_input_forbidden_path")
                    continue
                if input_input and comparable[seed] & inputs_mask:
                    count_pruned("input_input_postdom")
                    continue
                new_inputs_mask = inputs_mask | (1 << seed)
                new_body_mask = body_mask | between_row[seed]
                if prune_while_building and self._prune_body(
                    new_body_mask, new_inputs_mask
                ):
                    continue
                self._pick_inputs(
                    new_inputs_mask,
                    output,
                    outputs_mask,
                    new_body_mask,
                    nin_left - 1,
                    nout_left,
                )

    def _is_connected_raw(self, mask: int, outputs_mask: int) -> bool:
        """Memo-off binding of the Definition-4 connectivity check."""
        return _is_connected_mask(self.ctx, mask, outputs_mask)

    def _cut_depth_raw(self, mask: int) -> int:
        """Memo-off binding of the longest-path depth computation."""
        return _cut_depth(self.ctx, mask)

    def _seed_candidates(self, output: int, inputs_mask: int) -> Sequence[int]:
        """Ancestors of *output* usable as additional seed-set members."""
        ctx = self.ctx
        ancestors = ctx.ancestors_mask(output)
        ancestors &= ~(1 << ctx.source)
        ancestors &= ~inputs_mask
        return self._seed_ids(ancestors)

    # ------------------------------------------------------------------ #
    # Pruning predicates (Section 5.3)
    # ------------------------------------------------------------------ #
    def _nodes_with_forbidden_successor(self) -> int:
        """Mask of vertices that have at least one forbidden successor.

        Such vertices are necessarily outputs of any cut containing them,
        because a forbidden successor can never be absorbed into the cut.
        """
        ctx = self.ctx
        mask = 0
        successors_mask = ctx.reach.successors_mask
        forbidden = ctx.forbidden_mask
        for vertex in ctx.candidate_nodes:
            if successors_mask(vertex) & forbidden:
                mask |= 1 << vertex
        return mask

    def _prune_body(self, body_mask: int, inputs_mask: int) -> bool:
        """Prune-while-building-S (Section 5.3).

        The body is inspected after masking out both the chosen inputs and the
        forbidden vertices it contains — forbidden vertices sitting on a path
        between a chosen input and an output are not really part of the cut
        under construction, they are inputs that have not been chosen
        explicitly yet (the paper's footnote 2: forbidden nodes may still be
        chosen as inputs).  What remains is a lower bound on the final cut,
        and vertices of it that feed a forbidden consumer can never stop being
        outputs, so more than ``Nout`` of them dooms the whole branch.
        """
        effective = body_mask & ~inputs_mask & ~self.ctx.forbidden_mask
        unavoidable = (effective & self._forbidden_succ_mask).bit_count()
        if unavoidable > self.ctx.max_outputs:
            self.stats.count_pruned("too_many_unavoidable_outputs")
            return True
        return False

    # ------------------------------------------------------------------ #
    # CHECK-CUT
    # ------------------------------------------------------------------ #
    def _check_cut(
        self,
        inputs_mask: int,
        outputs_mask: int,
        body_mask: int,
        nin_left: int,
        nout_left: int,
    ) -> None:
        state = (inputs_mask, outputs_mask, body_mask)
        if state in self._visited_states:
            self.stats.duplicates += 1
            return
        self._visited_states.add(state)
        self.stats.candidates_checked += 1
        self._maybe_record(inputs_mask, outputs_mask, body_mask)
        if nout_left > 0:
            self._pick_output(
                inputs_mask, outputs_mask, body_mask, nin_left, nout_left
            )

    def _maybe_record(self, inputs_mask: int, outputs_mask: int, body_mask: int) -> None:
        ctx = self.ctx
        # The recorded cut is the constructed body minus the chosen inputs and
        # minus any forbidden vertex the construction dragged in: a forbidden
        # vertex between an input and an output cannot be part of the cut, so
        # it is one of the cut's (implicitly chosen) inputs instead.
        effective = body_mask & ~inputs_mask & ~ctx.forbidden_mask
        if effective == 0:
            return
        # One pass over the candidate's set bits yields I(S), O(S) and the
        # convexity verdict; the definitional re-derivation runs only under
        # REPRO_DEBUG_VALIDITY (see below).
        cut_inputs, actual_outputs, convex = self._cut_profile(effective)
        if self.pruning.output_output:
            # Relaxed acceptance: internal outputs are allowed as long as the
            # total stays within the budget.
            if actual_outputs.bit_count() > ctx.max_outputs:
                return
        else:
            if actual_outputs != outputs_mask:
                return
        if effective in self._found:
            self.stats.duplicates += 1
            return
        valid = (
            convex
            and cut_inputs.bit_count() <= ctx.max_inputs
            and actual_outputs.bit_count() <= ctx.max_outputs
        )
        constraints = ctx.constraints
        if valid and constraints.connected_only:
            valid = self._is_connected(effective, actual_outputs)
        if valid and constraints.max_depth is not None:
            valid = self._cut_depth(effective) <= constraints.max_depth
        if self._debug_validate:
            report = check_cut_mask(ctx, effective)
            assert report.valid == valid, (
                f"fast acceptance disagrees with check_cut_mask on "
                f"{effective:#x}: fast={valid} report={report}"
            )
        if not valid:
            return
        self._found[effective] = Cut.from_mask(ctx, effective)
