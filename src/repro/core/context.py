"""Enumeration context: everything precomputed before the search starts.

The paper's Section 5.4 lists the data structures kept by the implementation:
adjacency lists and matrix, path-presence information annotated with forbidden
vertices, and the dominator/postdominator trees.  :class:`EnumerationContext`
bundles all of them, derived once from a :class:`~repro.dfg.graph.DataFlowGraph`
and a :class:`~repro.core.constraints.Constraints` object, and is shared by
every enumeration algorithm and by the validity checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..dfg.augment import AugmentedDFG, augment
from ..dfg.graph import DataFlowGraph
from ..dfg.opcodes import is_memory
from ..dfg.reachability import ReachabilityInfo, mask_from_ids
from ..dominators.dominator_tree import DominatorTree
from ..dominators.postdominators import dominator_tree_of, postdominator_tree_of
from .constraints import Constraints


def effective_forbidden(node, constraints: Constraints) -> bool:
    """The forbidden flag of *node* after constraint-driven overrides.

    Memory operations are forbidden unless ``allow_memory_ops``; vertices in
    ``extra_forbidden`` are forbidden unconditionally.  This is the single
    definition of the rule: :meth:`EnumerationContext.build` applies it to
    the working graph, and :mod:`repro.memo.canon` folds it into canonical
    hashes — the two must agree or the memoization store would serve results
    computed under a different forbidden set.
    """
    forbidden = node.forbidden
    if node.is_operation:
        if is_memory(node.opcode):
            forbidden = not constraints.allow_memory_ops
        if node.node_id in constraints.extra_forbidden:
            forbidden = True
    return forbidden


@dataclass
class EnumerationContext:
    """Precomputed view of a basic block, ready for cut enumeration.

    Use :meth:`build` to construct one; the attributes are then read-only by
    convention.
    """

    constraints: Constraints
    original_graph: DataFlowGraph
    augmented: AugmentedDFG
    reach: ReachabilityInfo
    dom_tree: DominatorTree
    postdom_tree: DominatorTree
    successor_lists: List[List[int]] = field(default_factory=list)
    predecessor_lists: List[List[int]] = field(default_factory=list)
    forbidden_mask: int = 0
    candidate_mask: int = 0
    candidate_nodes: List[int] = field(default_factory=list)
    depths: List[int] = field(default_factory=list)

    # ------------------------------------------------------------------ #
    @classmethod
    def build(cls, graph: DataFlowGraph, constraints: Optional[Constraints] = None) -> "EnumerationContext":
        """Prepare a context for enumerating the cuts of *graph* under *constraints*."""
        constraints = constraints or Constraints()

        working = graph.copy()
        # Apply constraint-driven forbidden flags before augmentation so that
        # the artificial source is wired to the right vertices.
        for node in working.nodes():
            node.forbidden = effective_forbidden(node, constraints)

        augmented = augment(working)
        reach = ReachabilityInfo(augmented.graph, forbidden=augmented.forbidden)
        dom_tree = dominator_tree_of(augmented)
        postdom_tree = postdominator_tree_of(augmented)

        num_nodes = augmented.graph.num_nodes
        successor_lists = [list(augmented.graph.successors(v)) for v in range(num_nodes)]
        predecessor_lists = [list(augmented.graph.predecessors(v)) for v in range(num_nodes)]

        forbidden_mask = mask_from_ids(augmented.forbidden)
        candidate_nodes = [
            v for v in augmented.original_node_ids() if v not in augmented.forbidden
        ]
        candidate_mask = mask_from_ids(candidate_nodes)
        depths = augmented.graph.all_depths()

        return cls(
            constraints=constraints,
            original_graph=graph,
            augmented=augmented,
            reach=reach,
            dom_tree=dom_tree,
            postdom_tree=postdom_tree,
            successor_lists=successor_lists,
            predecessor_lists=predecessor_lists,
            forbidden_mask=forbidden_mask,
            candidate_mask=candidate_mask,
            candidate_nodes=candidate_nodes,
            depths=depths,
        )

    # ------------------------------------------------------------------ #
    # Convenience accessors
    # ------------------------------------------------------------------ #
    @property
    def num_nodes(self) -> int:
        """Number of vertices of the augmented graph (original + source + sink)."""
        return self.augmented.graph.num_nodes

    @property
    def source(self) -> int:
        """Artificial source vertex (root for dominator queries)."""
        return self.augmented.source

    @property
    def sink(self) -> int:
        """Artificial sink vertex (root for postdominator queries)."""
        return self.augmented.sink

    @property
    def max_inputs(self) -> int:
        """``Nin`` of the active constraint set."""
        return self.constraints.max_inputs

    @property
    def max_outputs(self) -> int:
        """``Nout`` of the active constraint set."""
        return self.constraints.max_outputs

    def is_forbidden(self, node_id: int) -> bool:
        """``True`` if the vertex may not belong to any cut."""
        return bool((self.forbidden_mask >> node_id) & 1)

    def is_candidate(self, node_id: int) -> bool:
        """``True`` if the vertex may belong to a cut."""
        return bool((self.candidate_mask >> node_id) & 1)

    def ancestors_mask(self, node_id: int) -> int:
        """Ancestor mask of *node_id* in the augmented graph."""
        return self.reach.ancestors_mask(node_id)

    def graph_name(self) -> str:
        """Name of the underlying basic block."""
        return self.original_graph.name
