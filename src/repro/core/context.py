"""Enumeration context: everything precomputed before the search starts.

The paper's Section 5.4 lists the data structures kept by the implementation:
adjacency lists and matrix, path-presence information annotated with forbidden
vertices, and the dominator/postdominator trees.  :class:`EnumerationContext`
bundles all of them, derived once from a :class:`~repro.dfg.graph.DataFlowGraph`
and a :class:`~repro.core.constraints.Constraints` object, and is shared by
every enumeration algorithm and by the validity checks.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..dfg.augment import AugmentedDFG, augment
from ..dfg.graph import DataFlowGraph
from ..dfg.opcodes import is_memory
from ..dfg.reachability import ReachabilityIndex, mask_from_ids
from ..dominators.dominator_tree import DominatorTree
from ..dominators.iterative import immediate_dominators_dag
from ..dominators.multi_vertex import CompletionResult, completions_from_idom
from ..dominators.postdominators import dominator_tree_of, postdominator_tree_of
from .constraints import Constraints


def effective_forbidden(node, constraints: Constraints) -> bool:
    """The forbidden flag of *node* after constraint-driven overrides.

    Memory operations are forbidden unless ``allow_memory_ops``; vertices in
    ``extra_forbidden`` are forbidden unconditionally.  This is the single
    definition of the rule: :meth:`EnumerationContext.build` applies it to
    the working graph, and :mod:`repro.memo.canon` folds it into canonical
    hashes — the two must agree or the memoization store would serve results
    computed under a different forbidden set.
    """
    forbidden = node.forbidden
    if node.is_operation:
        if is_memory(node.opcode):
            forbidden = not constraints.allow_memory_ops
        if node.node_id in constraints.extra_forbidden:
            forbidden = True
    return forbidden


class ContributionTables:
    """Precomputed per-(vertex, output) contribution masks.

    For a candidate output ``o`` the incremental enumerator repeatedly needs
    ``B({w}, o)`` — the vertices a candidate input ``w`` contributes to the
    cut body — and the *forbidden interior* of the ``(w, o)`` pair, which
    drives the output–input pruning of Section 5.3.  Both are pure
    intersections of closure rows, so this class materialises them once per
    output (lazily, on first query) and serves every later query with a list
    index.

    The forbidden interiors depend on the forbidden set, so the tables carry
    the forbidden-set fingerprint they were built against;
    :meth:`EnumerationContext.contribution_tables` rebuilds them whenever the
    context's fingerprint no longer matches.  Because contexts are shared
    through the engine's ``ContextCache`` (whose key ignores the pruning
    configuration) and per-process in the batch workers, one set of tables
    serves every pruning variant and every repeated run on the same block.
    """

    def __init__(self, reach: ReachabilityIndex, forbidden_mask: int) -> None:
        self.reach = reach
        self.forbidden_fingerprint = forbidden_mask
        self._between: Dict[int, List[int]] = {}
        self._forbidden_interior: Dict[int, List[int]] = {}

    # ------------------------------------------------------------------ #
    def between_table(self, output: int) -> List[int]:
        """Per-vertex ``B({w}, output)`` masks (row ``w`` of the table)."""
        rows = self._between.get(output)
        if rows is None:
            reach = self.reach
            window = reach.ancestors_mask(output) | (1 << output)
            rows = [reach.descendants_mask(v) & window for v in range(reach.num_nodes)]
            self._between[output] = rows
        return rows

    def forbidden_interior_table(self, output: int) -> List[int]:
        """Per-vertex masks of forbidden vertices strictly between ``w`` and *output*."""
        rows = self._forbidden_interior.get(output)
        if rows is None:
            reach = self.reach
            window = reach.ancestors_mask(output) & self.forbidden_fingerprint
            rows = [reach.descendants_mask(v) & window for v in range(reach.num_nodes)]
            self._forbidden_interior[output] = rows
        return rows

    # ------------------------------------------------------------------ #
    def between(self, vertex: int, output: int) -> int:
        """``B({vertex}, output)`` from the precomputed table."""
        return self.between_table(output)[vertex]

    def between_union(self, sources_mask: int, output: int) -> int:
        """``B(V, output)`` as the union of the table rows of ``V``."""
        rows = self.between_table(output)
        union = 0
        while sources_mask:
            low = sources_mask & -sources_mask
            union |= rows[low.bit_length() - 1]
            sources_mask ^= low
        return union

    def forbidden_interior(self, vertex: int, output: int) -> int:
        """Forbidden vertices on some path strictly between *vertex* and *output*."""
        return self.forbidden_interior_table(output)[vertex]


#: Shared "the seed already blocks every path" completion step.  The
#: dataclass is frozen and the completion sequence an immutable tuple, so
#: handing one instance to every caller in the process is safe.
_ALREADY_DOMINATED = CompletionResult(already_dominated=True, completions=(), lt_calls=0)

#: Entry cap of each per-context dominator cache (reachable regions, idom
#: arrays, completion steps).  The keys are drawn from one graph's own
#: search space, which is usually far smaller, but a pathological block
#: under a long-lived batch worker must not grow without bound — eviction
#: is first-in, like the reachability index's forbidden-between memo.
REGION_CACHE_LIMIT = 32768


@dataclass
class EnumerationContext:
    """Precomputed view of a basic block, ready for cut enumeration.

    Use :meth:`build` to construct one; the attributes are then read-only by
    convention.  On top of the static precomputation the context owns the
    *shared dominator-query caches* of the enumeration hot path: reachable
    regions per forbidden/seed mask, one immediate-dominator array per
    reachable region (a single Lengauer–Tarjan run answers the completion
    query of every output of that region), and the per-(region, output)
    completion steps derived from them.  Keeping these on the context —
    rather than inside one enumerator instance — lets repeated runs over the
    same block (pruning ablations, batch re-runs, warm ``ContextCache``
    hits) skip the dominator kernel entirely.
    """

    constraints: Constraints
    original_graph: DataFlowGraph
    augmented: AugmentedDFG
    reach: ReachabilityIndex
    dom_tree: DominatorTree
    postdom_tree: DominatorTree
    successor_lists: List[List[int]] = field(default_factory=list)
    predecessor_lists: List[List[int]] = field(default_factory=list)
    forbidden_mask: int = 0
    candidate_mask: int = 0
    candidate_nodes: List[int] = field(default_factory=list)
    depths: List[int] = field(default_factory=list)
    topo_order: List[int] = field(default_factory=list)
    #: Dominator-kernel invocations actually performed through this context
    #: (cache misses only); enumerators report per-run deltas of it.
    lt_calls_performed: int = field(default=0, compare=False)
    #: Wall time spent inside those fresh kernel invocations, in seconds —
    #: the denominator of the paper's "at least 70% of the time" claim.
    lt_seconds_performed: float = field(default=0.0, compare=False)
    _reachable_cache: Dict[int, int] = field(
        default_factory=dict, repr=False, compare=False
    )
    _idom_cache: Dict[int, List[Optional[int]]] = field(
        default_factory=dict, repr=False, compare=False
    )
    _completion_cache: Dict[Tuple[int, int], CompletionResult] = field(
        default_factory=dict, repr=False, compare=False
    )
    _contrib: Optional[ContributionTables] = field(
        default=None, repr=False, compare=False
    )
    #: The in-search memo this context's enumerations feed
    #: (:class:`repro.memo.insearch.InSearchMemo`).  Assigned by the engine's
    #: ``ContextCache`` so every context of one cache shares one memo; a
    #: standalone context lazily creates a private memo on first use.  Typed
    #: loosely to keep :mod:`repro.memo` out of this module's import graph.
    insearch_memo: Optional[object] = field(default=None, repr=False, compare=False)
    _insearch_view: Optional[object] = field(default=None, repr=False, compare=False)

    # ------------------------------------------------------------------ #
    @classmethod
    def build(cls, graph: DataFlowGraph, constraints: Optional[Constraints] = None) -> "EnumerationContext":
        """Prepare a context for enumerating the cuts of *graph* under *constraints*."""
        constraints = constraints or Constraints()

        working = graph.copy()
        # Apply constraint-driven forbidden flags before augmentation so that
        # the artificial source is wired to the right vertices.
        for node in working.nodes():
            node.forbidden = effective_forbidden(node, constraints)

        augmented = augment(working)
        reach = ReachabilityIndex(augmented.graph, forbidden=augmented.forbidden)
        dom_tree = dominator_tree_of(augmented)
        postdom_tree = postdominator_tree_of(augmented)

        num_nodes = augmented.graph.num_nodes
        successor_lists = [list(augmented.graph.successors(v)) for v in range(num_nodes)]
        predecessor_lists = [list(augmented.graph.predecessors(v)) for v in range(num_nodes)]

        forbidden_mask = mask_from_ids(augmented.forbidden)
        candidate_nodes = [
            v for v in augmented.original_node_ids() if v not in augmented.forbidden
        ]
        candidate_mask = mask_from_ids(candidate_nodes)
        depths = augmented.graph.all_depths()
        topo_order = list(augmented.graph.topological_order())

        return cls(
            constraints=constraints,
            original_graph=graph,
            augmented=augmented,
            reach=reach,
            dom_tree=dom_tree,
            postdom_tree=postdom_tree,
            successor_lists=successor_lists,
            predecessor_lists=predecessor_lists,
            forbidden_mask=forbidden_mask,
            candidate_mask=candidate_mask,
            candidate_nodes=candidate_nodes,
            depths=depths,
            topo_order=topo_order,
        )

    # ------------------------------------------------------------------ #
    # Convenience accessors
    # ------------------------------------------------------------------ #
    @property
    def num_nodes(self) -> int:
        """Number of vertices of the augmented graph (original + source + sink)."""
        return self.augmented.graph.num_nodes

    @property
    def source(self) -> int:
        """Artificial source vertex (root for dominator queries)."""
        return self.augmented.source

    @property
    def sink(self) -> int:
        """Artificial sink vertex (root for postdominator queries)."""
        return self.augmented.sink

    @property
    def max_inputs(self) -> int:
        """``Nin`` of the active constraint set."""
        return self.constraints.max_inputs

    @property
    def max_outputs(self) -> int:
        """``Nout`` of the active constraint set."""
        return self.constraints.max_outputs

    def is_forbidden(self, node_id: int) -> bool:
        """``True`` if the vertex may not belong to any cut."""
        return bool((self.forbidden_mask >> node_id) & 1)

    def is_candidate(self, node_id: int) -> bool:
        """``True`` if the vertex may belong to a cut."""
        return bool((self.candidate_mask >> node_id) & 1)

    def ancestors_mask(self, node_id: int) -> int:
        """Ancestor mask of *node_id* in the augmented graph."""
        return self.reach.ancestors_mask(node_id)

    # ------------------------------------------------------------------ #
    # Shared hot-path caches
    # ------------------------------------------------------------------ #
    @property
    def contribution_tables(self) -> ContributionTables:
        """The per-(vertex, output) contribution tables, fingerprint-checked.

        Rebuilt automatically when the context's forbidden mask no longer
        matches the fingerprint the tables were computed against (the
        forbidden interiors bake the forbidden set into their rows).
        """
        tables = self._contrib
        if tables is None or tables.forbidden_fingerprint != self.forbidden_mask:
            tables = ContributionTables(self.reach, self.forbidden_mask)
            self._contrib = tables
        return tables

    def insearch_view(self):
        """This context's handle on the in-search memo, or ``None`` when off.

        The view binds the context's block-shape domain, reachability index
        and contribution tables once; it is revalidated here — mirroring
        :attr:`contribution_tables` — whenever the attached memo or the
        forbidden mask changed since it was built.  The import is deferred
        because :mod:`repro.memo` imports this module at load time.
        """
        from ..memo.insearch import InSearchMemo, insearch_enabled

        if not insearch_enabled():
            if self._insearch_view is not None:
                # Detach: restore private dominator caches so a disabled run
                # (A/B baseline) cannot read memo-warmed shared state.
                self._insearch_view = None
                self._reachable_cache = {}
                self._idom_cache = {}
                self._completion_cache = {}
            return None
        view = self._insearch_view
        if (
            view is not None
            and view.memo is self.insearch_memo
            and view.forbidden_fingerprint == self.forbidden_mask
        ):
            return view
        if self.insearch_memo is None:
            self.insearch_memo = InSearchMemo()
        view = self.insearch_memo.view_for(self)
        self._insearch_view = view
        # Re-point the dominator caches at the domain's shared dicts: the
        # region-keyed machinery above then serves every same-shape block
        # (and every context rebuilt for this shape) from one cache.  They
        # stay plain dicts — the per-probe cost here dominates the search,
        # so no counting wrapper is tolerable — which means dominator
        # sharing is invisible to the hit/miss counters and shows up as a
        # reduced ``lt_calls`` instead.
        self._reachable_cache = view.domain.regions
        self._idom_cache = view.domain.idoms
        self._completion_cache = view.domain.completions
        return view

    def reachable_avoiding(self, avoid_mask: int) -> int:
        """Vertices reachable from the source once *avoid_mask* is removed.

        Memoised on the context: two input sets that leave the same
        reachable region induce the same reduced graph, so this mask doubles
        as the key of the shared dominator cache.  Computed as a frontier
        sweep over the packed successor rows — one row union per level
        instead of one Python iteration per edge.
        """
        cached = self._reachable_cache.get(avoid_mask)
        if cached is None:
            source = self.source
            if (avoid_mask >> source) & 1:
                cached = 0
            else:
                rows = self.reach.successor_rows()
                seen = 1 << source
                frontier = rows[source] & ~avoid_mask
                while frontier:
                    seen |= frontier
                    grown = 0
                    while frontier:
                        low = frontier & -frontier
                        grown |= rows[low.bit_length() - 1]
                        frontier ^= low
                    frontier = grown & ~avoid_mask & ~seen
                cached = seen
            if len(self._reachable_cache) >= REGION_CACHE_LIMIT:
                self._reachable_cache.pop(next(iter(self._reachable_cache)))
            self._reachable_cache[avoid_mask] = cached
        return cached

    def dominator_completions_for(
        self, inputs_mask: int, output: int
    ) -> Tuple[CompletionResult, int]:
        """Memoised Dubrova reduction step for ``(current inputs, output)``.

        Returns the completion step plus the number of Lengauer–Tarjan runs
        it actually triggered (0 on any cache hit).  The dominator arrays
        are keyed by the *reachable region* the input set leaves behind, and
        one array serves every output of that region — the optimisation that
        collapses the enumeration's LT-call count from one per (input set,
        output) pair to one per distinct region.
        """
        reachable = self.reachable_avoiding(inputs_mask)
        if not ((reachable >> output) & 1):
            return _ALREADY_DOMINATED, 0
        key = (reachable, output)
        cached = self._completion_cache.get(key)
        if cached is not None:
            return cached, 0
        idom = self._idom_cache.get(reachable)
        fresh_lt_calls = 0
        if idom is None:
            # DFGs are acyclic, so the single-pass DAG kernel replaces the
            # general Lengauer–Tarjan run; ``lt_calls`` keeps counting these
            # dominator-kernel invocations.
            kernel_start = time.perf_counter()
            idom = immediate_dominators_dag(
                self.topo_order,
                self.predecessor_lists,
                self.source,
                removed_mask=inputs_mask,
            )
            self.lt_seconds_performed += time.perf_counter() - kernel_start
            if len(self._idom_cache) >= REGION_CACHE_LIMIT:
                self._idom_cache.pop(next(iter(self._idom_cache)))
            self._idom_cache[reachable] = idom
            fresh_lt_calls = 1
            self.lt_calls_performed += 1
        step = completions_from_idom(idom, self.source, output)
        if len(self._completion_cache) >= REGION_CACHE_LIMIT:
            self._completion_cache.pop(next(iter(self._completion_cache)))
        self._completion_cache[key] = step
        return step, fresh_lt_calls

    def dominated_by(self, inputs_mask: int, output: int) -> bool:
        """Condition 1 of Definition 5 for the current input set and *output*."""
        if not inputs_mask:
            return False
        reachable = self.reachable_avoiding(inputs_mask)
        return not ((reachable >> output) & 1)

    def graph_name(self) -> str:
        """Name of the underlying basic block."""
        return self.original_graph.name
