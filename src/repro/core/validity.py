"""Validity predicates for cuts.

These predicates define, independently of any enumeration algorithm, which
vertex sets count as valid instruction-set-extension candidates.  They are
used by the enumerators for their final acceptance test, by the brute-force
oracle, and by the property-based tests that encode the paper's theorems.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from ..dfg.reachability import ids_from_mask, iterate_mask, popcount
from ..dominators.generalized import reachable_mask_avoiding
from .context import EnumerationContext
from .cut import build_body_mask

#: Environment variable enabling the per-cut debug cross-check: when set (to
#: any non-empty value), the optimized enumerators re-derive every recorded
#: candidate through :func:`check_cut_mask` and assert agreement with their
#: fast acceptance test.  Off by default — the re-derivation is exactly the
#: per-cut cost the hot-path optimisation removed.
DEBUG_VALIDITY_ENV = "REPRO_DEBUG_VALIDITY"


def debug_validation_enabled() -> bool:
    """``True`` when the ``REPRO_DEBUG_VALIDITY`` cross-check is switched on."""
    return bool(os.environ.get(DEBUG_VALIDITY_ENV))


@dataclass
class ValidityReport:
    """Detailed outcome of :func:`check_cut_mask` (useful in tests and debugging)."""

    empty: bool = False
    has_forbidden: bool = False
    convex: bool = True
    num_inputs: int = 0
    num_outputs: int = 0
    too_many_inputs: bool = False
    too_many_outputs: bool = False
    disconnected: bool = False
    too_deep: bool = False

    @property
    def valid(self) -> bool:
        """``True`` if the cut passed every check."""
        return not (
            self.empty
            or self.has_forbidden
            or not self.convex
            or self.too_many_inputs
            or self.too_many_outputs
            or self.disconnected
            or self.too_deep
        )


def check_cut_mask(context: EnumerationContext, node_mask: int) -> ValidityReport:
    """Run every validity check on *node_mask* and return a detailed report."""
    report = ValidityReport()
    if node_mask == 0:
        report.empty = True
        return report
    if node_mask & context.forbidden_mask:
        report.has_forbidden = True
    reach = context.reach
    report.convex = reach.is_convex_mask(node_mask)
    inputs_mask = reach.cut_inputs_mask(node_mask)
    outputs_mask = reach.cut_outputs_mask(node_mask)
    report.num_inputs = popcount(inputs_mask)
    report.num_outputs = popcount(outputs_mask)
    report.too_many_inputs = report.num_inputs > context.max_inputs
    report.too_many_outputs = report.num_outputs > context.max_outputs
    constraints = context.constraints
    if constraints.connected_only and report.convex and not report.has_forbidden:
        report.disconnected = not _is_connected_mask(context, node_mask, outputs_mask)
    if constraints.max_depth is not None:
        report.too_deep = _cut_depth(context, node_mask) > constraints.max_depth
    return report


def is_valid_cut_mask(context: EnumerationContext, node_mask: int) -> bool:
    """``True`` if *node_mask* is a valid cut under the context's constraints."""
    return check_cut_mask(context, node_mask).valid


def _is_connected_mask(context: EnumerationContext, node_mask: int, outputs_mask: int) -> bool:
    """Definition 4 connectivity check at mask level."""
    outputs = ids_from_mask(outputs_mask)
    if len(outputs) <= 1:
        return True
    inputs_mask = context.reach.cut_inputs_mask(node_mask)
    inputs_per_output = {}
    for output in outputs:
        feeding = 0
        for input_vertex in iterate_mask(inputs_mask):
            if _input_reaches_inside(context, node_mask, input_vertex, output):
                feeding |= 1 << input_vertex
        inputs_per_output[output] = feeding
    for i, first in enumerate(outputs):
        for second in outputs[i + 1 :]:
            if not (inputs_per_output[first] & inputs_per_output[second]):
                return False
    return True


def _input_reaches_inside(
    context: EnumerationContext, node_mask: int, input_vertex: int, output: int
) -> bool:
    """``True`` if *input_vertex* reaches *output* through cut vertices only."""
    frontier = [
        succ for succ in context.successor_lists[input_vertex] if (node_mask >> succ) & 1
    ]
    if output in frontier:
        return True
    seen = set(frontier)
    while frontier:
        vertex = frontier.pop()
        for succ in context.successor_lists[vertex]:
            if succ == output:
                return True
            if (node_mask >> succ) & 1 and succ not in seen:
                seen.add(succ)
                frontier.append(succ)
    return False


def _cut_depth(context: EnumerationContext, node_mask: int) -> int:
    """Longest path through the cut, counted in vertices."""
    order = [
        v for v in context.augmented.graph.topological_order() if (node_mask >> v) & 1
    ]
    longest = {v: 1 for v in order}
    best = 0
    for v in order:
        for succ in context.successor_lists[v]:
            if (node_mask >> succ) & 1 and longest[v] + 1 > longest[succ]:
                longest[succ] = longest[v] + 1
        if longest[v] > best:
            best = longest[v]
    return best


# ---------------------------------------------------------------------- #
# The paper's additional characterisations
# ---------------------------------------------------------------------- #
def satisfies_technical_condition(context: EnumerationContext, node_mask: int) -> bool:
    """The extra validity condition of Section 3.

    For each input ``w`` of the cut there must be a cut vertex ``v`` and a
    path from the (artificial) root to ``v`` that contains ``w`` but no other
    input of the cut.  The few valid cuts that violate it are excluded from
    the paper's enumeration (they can be recovered afterwards, see
    :mod:`repro.core.recovery`).
    """
    reach = context.reach
    inputs_mask = reach.cut_inputs_mask(node_mask)
    if inputs_mask == 0:
        return True
    root = context.source
    num_nodes = context.num_nodes
    successors = context.successor_lists
    for input_vertex in iterate_mask(inputs_mask):
        others = inputs_mask & ~(1 << input_vertex)
        reach_root = reachable_mask_avoiding(num_nodes, successors, root, others)
        if not ((reach_root >> input_vertex) & 1):
            return False
        reach_from_input = reachable_mask_avoiding(
            num_nodes, successors, input_vertex, others
        )
        if not (reach_from_input & node_mask):
            return False
    return True


def is_io_identified(context: EnumerationContext, node_mask: int) -> bool:
    """``True`` if the cut equals the Theorem 2/3 reconstruction from its I/O sets.

    The paper's enumeration reaches exactly the cuts for which
    ``S == ∪_{o ∈ O(S)} B(I(S), o) \\ I(S)``; a small number of valid convex
    cuts (those where one input can be reached from another input through
    vertices outside the cut) do not satisfy this equality.  The predicate
    makes that boundary explicit and testable.
    """
    reach = context.reach
    inputs_mask = reach.cut_inputs_mask(node_mask)
    outputs_mask = reach.cut_outputs_mask(node_mask)
    reconstructed = build_body_mask(context, inputs_mask, outputs_mask)
    return reconstructed == node_mask


def enumerable_by_paper_algorithm(context: EnumerationContext, node_mask: int) -> bool:
    """Valid cuts the polynomial algorithms are expected to report.

    Combines :func:`is_valid_cut_mask` with the two restrictions the paper
    introduces: the technical input condition of Section 3 and the
    input/output identification property the construction of Theorem 3 relies
    on.
    """
    return (
        is_valid_cut_mask(context, node_mask)
        and satisfies_technical_condition(context, node_mask)
        and is_io_identified(context, node_mask)
    )
