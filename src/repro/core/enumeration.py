"""The basic polynomial-time enumeration algorithm (Figure 2 of the paper).

``POLY-ENUM`` precomputes, for every candidate output vertex, all of its
generalized dominators with at most ``Nin`` vertices, and then recursively
couples output choices with dominator choices.  The cut body is rebuilt from
scratch for every candidate through the Theorem 3 construction
``S = ∪ B(D, o) \\ I``.

This variant is the reference implementation: simple, close to the paper's
pseudo-code, and "feasible only for small basic blocks" (Section 5.1).  The
practical algorithm is the incremental one in
:mod:`repro.core.incremental`, which the tests check against this one.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..dfg.graph import DataFlowGraph
from ..dfg.reachability import ids_from_mask, popcount
from ..dominators.multi_vertex import (
    DominatorSearchStats,
    enumerate_generalized_dominators,
)
from .constraints import Constraints
from .context import EnumerationContext
from .cut import Cut
from .stats import EnumerationResult, EnumerationStats, Stopwatch
from .validity import is_valid_cut_mask

ALGORITHM_NAME = "poly-enum-basic"


def enumerate_cuts_basic(
    graph: DataFlowGraph,
    constraints: Optional[Constraints] = None,
    context: Optional[EnumerationContext] = None,
) -> EnumerationResult:
    """Enumerate all convex cuts of *graph* with the basic algorithm of Figure 2.

    Parameters
    ----------
    graph:
        The basic block to analyse.
    constraints:
        Input/output constraints; defaults to ``Nin=4, Nout=2`` as in the
        paper's experiments.
    context:
        Optional pre-built :class:`EnumerationContext` (must match *graph*).

    Returns
    -------
    EnumerationResult
        The distinct valid cuts and the search statistics.
    """
    ctx = context or EnumerationContext.build(graph, constraints)
    stats = EnumerationStats()
    found: Dict[int, Cut] = {}

    with Stopwatch(stats):
        dominators_of = _precompute_dominators(ctx, stats)
        _do_enum(
            ctx,
            dominators_of,
            inputs_mask=0,
            outputs_mask=0,
            body_mask=0,
            chosen=(),
            nout_left=ctx.max_outputs,
            stats=stats,
            found=found,
        )

    stats.cuts_found = len(found)
    return EnumerationResult(
        cuts=list(found.values()),
        stats=stats,
        graph_name=graph.name,
        algorithm=ALGORITHM_NAME,
    )


def _precompute_dominators(
    ctx: EnumerationContext, stats: EnumerationStats
) -> Dict[int, List[int]]:
    """Setup phase: generalized dominators (as masks) of every candidate output."""
    dominators_of: Dict[int, List[int]] = {}
    for output in ctx.candidate_nodes:
        candidates = [
            v
            for v in ids_from_mask(ctx.ancestors_mask(output))
            if v != ctx.source
        ]
        search_stats = DominatorSearchStats()
        dominator_sets = enumerate_generalized_dominators(
            ctx.num_nodes,
            ctx.successor_lists,
            ctx.source,
            output,
            max_size=ctx.max_inputs,
            candidates=candidates,
            require_irredundant=True,
            search_stats=search_stats,
        )
        masks = []
        for dominator_set in dominator_sets:
            mask = 0
            for vertex in dominator_set:
                mask |= 1 << vertex
            masks.append(mask)
        stats.lt_calls += search_stats.lt_calls
        dominators_of[output] = masks
    return dominators_of


def _do_enum(
    ctx: EnumerationContext,
    dominators_of: Dict[int, List[int]],
    inputs_mask: int,
    outputs_mask: int,
    body_mask: int,
    chosen: Tuple[int, ...],
    nout_left: int,
    stats: EnumerationStats,
    found: Dict[int, Cut],
) -> None:
    """``DO-ENUM`` of Figure 2."""
    stats.pick_output_calls += 1
    postdom = ctx.postdom_tree
    reach_between = ctx.reach.between_mask
    for output in ctx.candidate_nodes:
        if (outputs_mask >> output) & 1:
            continue
        if _inadmissible_output(postdom, chosen, output):
            continue
        new_outputs_mask = outputs_mask | (1 << output)
        for dominator_mask in dominators_of[output]:
            new_inputs_mask = inputs_mask | dominator_mask
            if popcount(new_inputs_mask) > ctx.max_inputs:
                continue
            between = reach_between(dominator_mask, output)
            new_body_mask = body_mask | between
            stats.candidates_checked += 1
            _maybe_record(ctx, new_body_mask, new_inputs_mask, new_outputs_mask, stats, found)
            if nout_left > 1:
                _do_enum(
                    ctx,
                    dominators_of,
                    new_inputs_mask,
                    new_outputs_mask,
                    new_body_mask,
                    chosen + (output,),
                    nout_left - 1,
                    stats,
                    found,
                )


def _inadmissible_output(postdom, chosen: Tuple[int, ...], output: int) -> bool:
    """Output admissibility check of Section 5.1.

    A vertex cannot be an output together with a vertex that postdominates it
    (or that it postdominates): the path to the sink of the postdominated
    vertex would re-enter the cut and violate convexity.
    """
    for previous in chosen:
        if postdom.dominates(previous, output) or postdom.dominates(output, previous):
            return True
    return False


def _maybe_record(
    ctx: EnumerationContext,
    body_mask: int,
    inputs_mask: int,
    outputs_mask: int,
    stats: EnumerationStats,
    found: Dict[int, Cut],
) -> None:
    """Record the constructed body if it is a valid cut with the chosen outputs.

    The body is the raw union of the ``B(D, o)`` contributions; the chosen
    input vertices are masked out here, with the *final* input set, exactly as
    in the Theorem 3 construction ``S = ∪ B(D, o) \\ I``.
    """
    effective = body_mask & ~inputs_mask
    if effective == 0:
        return
    if effective & ctx.forbidden_mask:
        return
    actual_outputs = ctx.reach.cut_outputs_mask(effective)
    if actual_outputs != outputs_mask:
        return
    if effective in found:
        stats.duplicates += 1
        return
    if not is_valid_cut_mask(ctx, effective):
        return
    found[effective] = Cut.from_mask(ctx, effective)
