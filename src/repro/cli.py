"""Command-line interface: ``repro-enum``.

Sub-commands
------------
``enumerate``
    Enumerate the convex cuts of a DFG (JSON file or built-in kernel).
``compare``
    Compare the polynomial algorithm against the exhaustive baseline on a
    workload (the Figure 5 experiment, scaled by ``--blocks``/``--max-ops``).
``ise``
    Run the full ISE identification pipeline on one or more kernels.
``generate``
    Generate a synthetic workload suite and save it to a directory.
``kernels``
    List the built-in hand-written kernels.
``frontend``
    Compile Python source (or the bundled corpus) through the bytecode →
    CFG → DFG frontend, optionally profile it, and feed it to the ISE
    pipeline: ``repro frontend path.py --func f --profile --ise``.
``cache``
    Inspect, clear or warm the persistent enumeration-result cache.
``metrics``
    Pretty-print the run report of a ``--metrics-json`` document (optionally
    with its matching ``--trace`` file for span accounting).
``bench``
    The unified benchmark harness (``repro.perf``): ``bench run`` executes
    registered benchmarks and appends to the ``BENCH_history.jsonl`` ledger,
    ``bench compare`` gates fresh records against baselines, ``bench
    history`` renders the perf trajectory, ``bench list`` shows the
    registry, ``bench env`` prints the environment fingerprint.  Human
    progress goes to stderr, so ``bench run --json -`` emits machine-
    parseable JSON on stdout.

Targets: wherever a kernel name or DFG JSON file is accepted, a Python
source target ``file.py::function`` is too (the function's largest basic
block); ``--from-source`` on ``enumerate``/``ise`` forces that
interpretation, and on ``ise`` expands every basic block of the function.

Caching: ``enumerate``, ``compare`` and ``ise`` accept ``--cache-dir`` (or the
``REPRO_ENUM_CACHE`` environment variable) to memoize enumeration results
across runs, and ``--no-cache`` to force recomputation.

Progress: the engine streams per-block results as they complete;
``--progress`` (on ``enumerate``, ``compare``, ``ise`` and ``cache warm``)
prints one status line per finished block to stderr.

Observability: ``--trace FILE`` records a span timeline (``.jsonl`` for the
raw span log, anything else for a Perfetto-loadable Chrome trace) and
``--metrics-json FILE`` dumps the metrics registry (``-`` writes the JSON to
stdout and diverts the command's normal output to stderr, so piped stdout
stays machine-readable).  Both default to off, in which case the
instrumentation throughout the tree is no-op stubs.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import sys
import time
from pathlib import Path
from typing import List, Optional

from .analysis.comparison import algorithms_from_registry, compare_on_suite
from .analysis.metrics import population_stats, result_summary
from .analysis.reporting import cluster_summary, figure5_report, format_table
from .core.constraints import Constraints
from .dfg.serialization import load as load_graph
from .engine.batch import BatchRunner
from .engine.registry import (
    DEFAULT_ALGORITHM,
    algorithm_aliases,
    available_algorithms,
)
from .ise.pipeline import BlockProfile, identify_instruction_set_extension
from .ise.selection import SelectionConfig
from .memo.insearch import INSEARCH_ENV, set_insearch_enabled
from .memo.store import ResultStore
from .obs import runtime as obs_runtime
from .obs.export import read_trace_file, write_trace_file
from .obs.metrics import METRICS_SCHEMA
from .obs.report import format_run_report, load_metrics
from .workloads.kernels import KERNEL_FACTORIES, build_kernel, kernel_names
from .workloads.mibench_like import SuiteConfig, build_suite, size_cluster
from .workloads.suite import WorkloadSuite


def _algorithm_choices() -> List[str]:
    """Every accepted ``--algorithm`` value: canonical names plus aliases."""
    return sorted({*available_algorithms(), *algorithm_aliases()})


def _add_engine_arguments(
    parser: argparse.ArgumentParser,
    default_algorithm: Optional[str] = DEFAULT_ALGORITHM,
    multiple: bool = False,
) -> None:
    """The uniform ``--algorithm`` / ``--jobs`` / ``--timeout`` flags."""
    if multiple:
        parser.add_argument(
            "--algorithm",
            choices=_algorithm_choices(),
            action="append",
            help="enumeration algorithm (repeatable; default: "
            "poly-enum-incremental vs exhaustive)",
        )
    else:
        parser.add_argument(
            "--algorithm",
            choices=_algorithm_choices(),
            default=default_algorithm,
            help=f"enumeration algorithm (default {default_algorithm})",
        )
    parser.add_argument(
        "--jobs",
        type=_jobs_value,
        default=1,
        help='number of enumeration worker processes, or "auto" for the '
        "machine's CPU count (default 1)",
    )
    parser.add_argument(
        "--timeout",
        type=_positive_float,
        default=None,
        help="per-block enumeration budget in seconds, charged from task "
        "start — queue wait is excluded (default: none)",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="print per-block status to stderr as each block finishes",
    )
    parser.add_argument(
        "--no-insearch-memo",
        action="store_true",
        help="disable the in-search memo (repro.memo.insearch) for this run "
        f"— equivalent to setting ${INSEARCH_ENV}; useful for A/B timing",
    )


def _add_obs_arguments(parser: argparse.ArgumentParser) -> None:
    """The uniform ``--trace`` / ``--metrics-json`` observability flags."""
    parser.add_argument(
        "--trace",
        dest="trace_out",
        metavar="FILE",
        default=None,
        help="record a span timeline: .jsonl writes the raw span log, any "
        "other extension a Chrome trace-event JSON (load in ui.perfetto.dev)",
    )
    parser.add_argument(
        "--metrics-json",
        dest="metrics_json",
        metavar="FILE",
        default=None,
        help="write the run's metrics registry as JSON ('-' prints it to "
        "stdout and diverts normal output to stderr)",
    )


#: Environment variable naming the default cache directory.
CACHE_ENV_VAR = "REPRO_ENUM_CACHE"


def _add_cache_arguments(parser: argparse.ArgumentParser) -> None:
    """The uniform ``--cache-dir`` / ``--no-cache`` flags."""
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="directory of the persistent enumeration-result cache "
        f"(default: ${CACHE_ENV_VAR} if set, else caching is off)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the result cache even if --cache-dir or "
        f"${CACHE_ENV_VAR} is set",
    )


def _store_from(args: argparse.Namespace) -> Optional[ResultStore]:
    """Build the :class:`ResultStore` selected by the cache flags, if any."""
    if getattr(args, "no_cache", False):
        return None
    cache_dir = getattr(args, "cache_dir", None) or os.environ.get(CACHE_ENV_VAR)
    return ResultStore(cache_dir) if cache_dir else None


def _progress_from(args: argparse.Namespace):
    """Per-block progress printer for ``--progress``, or ``None``."""
    if not getattr(args, "progress", False):
        return None

    def report(item, completed: int, total: int) -> None:
        if item.error is not None:
            status = f"error: {item.error}"
        elif item.result is None:
            status = "timed out"
        elif item.cached:
            status = "cached"
        elif item.timed_out:
            status = "over budget, result kept"
        else:
            status = "ok"
        print(
            f"[{completed}/{total}] {item.graph_name}: {status} "
            f"({item.elapsed_seconds:.3f}s)",
            file=sys.stderr,
            flush=True,
        )

    return report


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _jobs_value(text: str):
    """``--jobs`` accepts a positive integer or the literal ``auto``."""
    if text == "auto":
        return "auto"
    try:
        return _positive_int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f'must be a positive integer or "auto", got {text!r}'
        )


def _positive_float(text: str) -> float:
    value = float(text)
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be positive, got {value}")
    return value


def _add_constraint_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--max-inputs", type=int, default=4, help="Nin (default 4)")
    parser.add_argument("--max-outputs", type=int, default=2, help="Nout (default 2)")
    parser.add_argument(
        "--allow-memory",
        action="store_true",
        help="allow loads/stores inside custom instructions",
    )
    parser.add_argument(
        "--connected-only",
        action="store_true",
        help="restrict the search to connected cuts",
    )


def _constraints_from(args: argparse.Namespace) -> Constraints:
    return Constraints(
        max_inputs=args.max_inputs,
        max_outputs=args.max_outputs,
        allow_memory_ops=args.allow_memory,
        connected_only=args.connected_only,
    )


def _load_python_target(path: Path, func: Optional[str]):
    """Resolve ``file.py`` / ``file.py::func`` to the function's largest-block DFG."""
    from .frontend import SourceResolutionError, graph_for_function, resolve_functions

    try:
        selected = resolve_functions(path, func)
    except SourceResolutionError as exc:
        raise SystemExit(str(exc))
    if len(selected) > 1:
        available = ", ".join(name for name, _ in selected)
        raise SystemExit(
            f"{path} defines {len(selected)} functions; pick one with "
            f"'{path}::<name>' or --func (available: {available})"
        )
    name, fn = selected[0]
    return graph_for_function(fn, name=name)


def _load_target(target: str, from_source: bool = False):
    """Interpret *target* as a kernel name, a DFG JSON file, or Python source.

    Shared resolution helper for ``enumerate``/``ise``/``cache warm`` and the
    ``frontend`` subcommand: Python sources are addressed as
    ``file.py::function`` and contribute the function's largest basic block.
    """
    from .frontend import split_target

    base, func = split_target(target)
    # Built-in kernel names always resolve, even under --from-source (the
    # flag governs how *paths* are interpreted, and kernels/sources can be
    # mixed freely in one invocation).
    if func is None and target in KERNEL_FACTORIES:
        return build_kernel(target)
    path = Path(base)
    if path.exists():
        if path.suffix == ".py" or from_source or func is not None:
            return _load_python_target(path, func)
        if path.suffix == ".json":
            return load_graph(path)
        raise SystemExit(
            f"target {target!r} exists but has unsupported extension "
            f"{path.suffix or '(none)'!r}: expected a .json DFG file or a "
            f".py source (address functions as 'file.py::function')"
        )
    raise SystemExit(
        f"unknown target {target!r}: not a built-in kernel "
        f"({', '.join(kernel_names())}), not an existing DFG JSON file, and "
        "not an existing .py source"
    )


# --------------------------------------------------------------------------- #
# Sub-commands
# --------------------------------------------------------------------------- #
def _cmd_enumerate(args: argparse.Namespace) -> int:
    with obs_runtime.tracer().span("cli.load_targets", cat="cli", targets=1):
        graph = _load_target(
            args.target, from_source=getattr(args, "from_source", False)
        )
    constraints = _constraints_from(args)
    store = _store_from(args)
    runner = BatchRunner(
        algorithm=args.algorithm,
        constraints=constraints,
        jobs=args.jobs,
        timeout=args.timeout,
        store=store,
    )
    item = runner.run([graph], progress=_progress_from(args)).items[0]
    if item.cached:
        print(f"(result served from cache {store.root})", file=sys.stderr)
    if item.error is not None:
        raise SystemExit(f"enumeration failed: {item.error}")
    if item.result is None:
        raise SystemExit(
            f"enumeration of {graph.name!r} exceeded the {args.timeout}s budget"
        )
    if item.timed_out:
        print(
            f"warning: enumeration took {item.elapsed_seconds:.3f}s, "
            f"over the {args.timeout}s budget",
            file=sys.stderr,
        )
    result = item.result
    print(result_summary(result))
    print()
    print(population_stats(result.cuts).summary())
    if args.show_cuts:
        print()
        for cut in sorted(result.cuts, key=lambda c: (-c.num_nodes, sorted(c.nodes))):
            print("  " + cut.describe())
    if store is not None:
        store.persist_stats()
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    config = SuiteConfig(
        num_blocks=args.blocks,
        min_operations=args.min_ops,
        max_operations=args.max_ops,
        include_kernels=not args.no_kernels,
        include_trees=not args.no_trees,
    )
    suite = build_suite(config)
    constraints = _constraints_from(args)
    entries = algorithms_from_registry(args.algorithm) if args.algorithm else None
    store = _store_from(args)
    if store is not None:
        print(
            f"note: result cache {store.root} is active; cached blocks report "
            "lookup time, not enumeration time (pass --no-cache for clean "
            "timings)",
            file=sys.stderr,
        )
    report = compare_on_suite(
        suite,
        constraints,
        algorithms=entries,
        cluster_of=size_cluster,
        jobs=args.jobs,
        timeout=args.timeout,
        store=store,
        progress=_progress_from(args),
    )
    names = report.algorithms()
    if "poly-enum-incremental" in names and "exhaustive" in names:
        print(figure5_report(report))
        print()
    print(format_table(cluster_summary(report)))
    if store is not None:
        store.persist_stats()
    return 0


def _ise_blocks_from_target(target: str, args: argparse.Namespace) -> List[BlockProfile]:
    """Expand one ``ise`` target into profiled blocks.

    With ``--from-source``, a Python target contributes *every* non-trivial
    basic block of the function (execution counts weighted by the CFG's
    static profile); otherwise a target is one graph, as before.
    """
    from .frontend import SourceResolutionError, split_target, static_profile

    base, func = split_target(target)
    path = Path(base)
    if getattr(args, "from_source", False) and path.suffix == ".py":
        from .frontend import resolve_functions

        try:
            selected = resolve_functions(path, func)
        except SourceResolutionError as exc:
            raise SystemExit(str(exc))
        blocks: List[BlockProfile] = []
        for name, fn in selected:
            profiled = static_profile(fn, name=name, default_count=args.execution_count)
            blocks.extend(profiled.block_profiles())
        if not blocks:
            raise SystemExit(f"{target!r} produced no blocks with operations")
        return blocks
    return [
        BlockProfile(
            graph=_load_target(target, from_source=getattr(args, "from_source", False)),
            execution_count=args.execution_count,
        )
    ]


def _write_instruction_dots(result, graphs: dict, dot_dir: str) -> int:
    """One DOT file per selected custom instruction, cut vertices shaded."""
    from .dfg.dot import to_dot

    directory = Path(dot_dir)
    directory.mkdir(parents=True, exist_ok=True)
    written = 0
    for instruction in result.extension.instructions:
        graph = graphs.get(instruction.cut.graph_name)
        if graph is None:
            continue
        text = to_dot(
            graph,
            highlight=instruction.cut.nodes,
            title=f"{graph.name} / {instruction.name}",
        )
        (directory / f"{graph.name}__{instruction.name}.dot").write_text(
            text, encoding="utf-8"
        )
        written += 1
    return written


def _cmd_ise(args: argparse.Namespace) -> int:
    blocks: List[BlockProfile] = []
    with obs_runtime.tracer().span(
        "cli.load_targets", cat="cli", targets=len(args.targets)
    ):
        for target in args.targets:
            blocks.extend(_ise_blocks_from_target(target, args))
    constraints = _constraints_from(args)
    store = _store_from(args)
    result = identify_instruction_set_extension(
        blocks,
        constraints,
        selection=SelectionConfig(max_instructions=args.max_instructions),
        application_name=args.name,
        algorithm=args.algorithm,
        jobs=args.jobs,
        timeout=args.timeout,
        store=store,
        progress=_progress_from(args),
    )
    if store is not None:
        store.persist_stats()
    print(result.summary())
    if args.dot_dir:
        graphs = {}
        duplicates = set()
        for block in blocks:
            existing = graphs.get(block.graph.name)
            if existing is not None and existing is not block.graph:
                duplicates.add(block.graph.name)
            graphs[block.graph.name] = block.graph
        if duplicates:
            print(
                "warning: multiple distinct blocks share the name(s) "
                f"{', '.join(sorted(duplicates))}; their DOT renderings may "
                "highlight the wrong graph",
                file=sys.stderr,
            )
        written = _write_instruction_dots(result, graphs, args.dot_dir)
        print(f"wrote {written} DOT file(s) to {args.dot_dir}", file=sys.stderr)
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    config = SuiteConfig(
        num_blocks=args.blocks,
        min_operations=args.min_ops,
        max_operations=args.max_ops,
    )
    suite = WorkloadSuite(name=args.name, graphs=build_suite(config))
    suite.save(args.output)
    print(f"wrote {len(suite)} graphs to {args.output}")
    return 0


def _cmd_frontend(args: argparse.Namespace) -> int:
    """Compile Python source through the frontend; optionally profile + ISE."""
    import json as _json

    from .frontend import (
        CORPUS,
        SourceResolutionError,
        corpus_names,
        profile_function,
        profile_kernel,
        split_target,
        static_profile,
    )
    from .workloads.suite import WorkloadSuite as _Suite

    explicit_calls = []
    for text in args.call or []:
        try:
            parsed = _json.loads(text)
        except ValueError as exc:
            raise SystemExit(f"--call {text!r} is not valid JSON: {exc}")
        if not isinstance(parsed, list):
            raise SystemExit(
                f"--call {text!r} must be a JSON argument *list*, e.g. '[255, 3]'"
            )
        explicit_calls.append(tuple(parsed))

    profiled = []  # (name, ProfiledFunction)
    if args.source == "corpus":
        if explicit_calls:
            print(
                "note: corpus kernels are profiled with their bundled sample "
                "calls; --call is ignored",
                file=sys.stderr,
            )
        names = args.functions or corpus_names()
        for name in names:
            if name not in CORPUS:
                raise SystemExit(
                    f"unknown corpus kernel {name!r} (available: "
                    f"{', '.join(corpus_names())})"
                )
            profiled.append((name, profile_kernel(name, profile=args.profile)))
    else:
        from .frontend import functions_in_module, load_module

        base, func_in_target = split_target(args.source)
        path = Path(base)
        if not path.exists():
            raise SystemExit(
                f"source {args.source!r} does not exist (pass a .py file or "
                "'corpus' for the bundled kernels)"
            )
        # Load (and execute) the module exactly once, however many functions
        # are requested.
        try:
            module = load_module(path)
        except SourceResolutionError as exc:
            raise SystemExit(str(exc))
        available = functions_in_module(module, include_private=True)
        public = sorted(n for n in available if not n.startswith("_"))
        wanted = args.functions or (
            [func_in_target] if func_in_target else public
        )
        if not wanted:
            raise SystemExit(f"{path} defines no public plain Python functions")
        for name in wanted:
            fn = available.get(name)
            if fn is None:
                raise SystemExit(
                    f"{path} defines no function {name!r} "
                    f"(available: {', '.join(public) or '(none)'})"
                )
            if args.profile:
                if not explicit_calls:
                    raise SystemExit(
                        "--profile on a source file needs at least one "
                        "--call '[arg, ...]' sample invocation"
                    )
                try:
                    profiled.append(
                        (name, profile_function(fn, explicit_calls, name=name))
                    )
                except Exception as exc:
                    raise SystemExit(
                        f"profiling {name}{fn.__code__.co_varnames[: fn.__code__.co_argcount]} "
                        f"with the given --call arguments failed: {exc}"
                    )
            else:
                profiled.append((name, static_profile(fn, name=name)))

    blocks: List[BlockProfile] = []
    for name, prof in profiled:
        print(prof.dfgs.describe())
        counts = prof.execution_counts()
        if args.profile:
            hot = ", ".join(
                f"{graph_name}={count:.0f}" for graph_name, count in counts.items()
            )
            print(f"  profiled execution counts: {hot}")
        blocks.extend(prof.block_profiles())
    print(
        f"{len(profiled)} function(s) -> {len(blocks)} basic block(s) "
        "with operations"
    )

    if args.save_suite:
        suite = _Suite(name=args.name, metadata={"source": args.source})
        for block in blocks:
            suite.add(block.graph, execution_count=block.execution_count)
        suite.save(args.save_suite)
        print(f"saved {len(suite)} block graph(s) to {args.save_suite}")

    if args.ise:
        if not blocks:
            raise SystemExit("nothing to run ISE on: no blocks with operations")
        store = _store_from(args)
        result = identify_instruction_set_extension(
            blocks,
            _constraints_from(args),
            selection=SelectionConfig(max_instructions=args.max_instructions),
            application_name=args.name,
            algorithm=args.algorithm,
            jobs=args.jobs,
            timeout=args.timeout,
            store=store,
            progress=_progress_from(args),
        )
        if store is not None:
            store.persist_stats()
        print()
        print(result.summary())
        if args.dot_dir:
            graphs = {block.graph.name: block.graph for block in blocks}
            written = _write_instruction_dots(result, graphs, args.dot_dir)
            print(f"wrote {written} DOT file(s) to {args.dot_dir}", file=sys.stderr)
    return 0


def _cmd_kernels(_: argparse.Namespace) -> int:
    for name in kernel_names():
        graph = build_kernel(name)
        print(
            f"{name:20s} {len(graph.operation_nodes()):3d} operations, "
            f"{graph.num_edges:3d} edges"
        )
    return 0


# --------------------------------------------------------------------------- #
# cache sub-command
# --------------------------------------------------------------------------- #
def _cache_store(args: argparse.Namespace) -> ResultStore:
    cache_dir = args.cache_dir or os.environ.get(CACHE_ENV_VAR)
    if not cache_dir:
        raise SystemExit(
            f"no cache directory: pass --cache-dir or set ${CACHE_ENV_VAR}"
        )
    return ResultStore(cache_dir)


def _cmd_cache_stats(args: argparse.Namespace) -> int:
    store = _cache_store(args)
    info = store.scan()
    print(f"cache directory : {info['root']}")
    print(f"entries         : {info['entries']}")
    print(f"total size      : {info['total_bytes']} bytes")
    lifetime = store.lifetime_stats()
    if lifetime.lookups or lifetime.writes:
        # Cumulative hit/miss/put/evict counters persisted by past runs
        # (every command flushes its deltas on exit), so operators see the
        # cache's actual effectiveness, not just its disk footprint.
        print(f"lifetime        : {lifetime.summary()}")
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    if args.metrics_file == "-":
        try:
            document = json.load(sys.stdin)
        except ValueError as exc:
            raise SystemExit(f"stdin: invalid JSON ({exc})")
        if not isinstance(document, dict) or document.get("schema") != METRICS_SCHEMA:
            raise SystemExit(f"stdin: not a {METRICS_SCHEMA} document")
    else:
        try:
            document = load_metrics(args.metrics_file)
        except (OSError, ValueError) as exc:
            raise SystemExit(str(exc))
    trace = None
    if args.trace:
        try:
            trace = read_trace_file(args.trace)
        except (OSError, ValueError) as exc:
            raise SystemExit(str(exc))
    print(format_run_report(document, trace=trace))
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    # Imported lazily: the lint framework is not needed by the enumeration
    # commands, and keeping it out of the default import path keeps CLI
    # startup lean.
    from .lint import format_text_report, iter_rules, report_to_dict, run_lint

    if args.list_rules:
        for rule, pass_name, description in iter_rules():
            print(f"{rule:24} [{pass_name}] {description}")
        return 0
    if args.jobs == "auto":
        jobs = os.cpu_count() or 1
    else:
        try:
            jobs = int(args.jobs)
        except ValueError:
            raise SystemExit(f"--jobs must be an integer or 'auto', got {args.jobs!r}")
        if jobs < 1:
            raise SystemExit("--jobs must be >= 1")
    select = None
    if args.select:
        select = [
            rule.strip()
            for entry in args.select
            for rule in entry.split(",")
            if rule.strip()
        ]
    try:
        report = run_lint(
            args.paths, select=select, jobs=jobs, changed=args.changed
        )
    except (FileNotFoundError, RuntimeError, ValueError) as exc:
        raise SystemExit(str(exc))
    if args.format == "json":
        rendered = (
            json.dumps(
                report_to_dict(
                    report.diagnostics,
                    report.files_scanned,
                    report.roots,
                    report.changed_ref,
                ),
                indent=2,
            )
            + "\n"
        )
    else:
        rendered = format_text_report(report.diagnostics, report.files_scanned) + "\n"
    if args.output:
        Path(args.output).write_text(rendered, encoding="utf-8")
        # Keep the terminal/CI log readable even when the machine-readable
        # report goes to a file.
        print(format_text_report(report.diagnostics, report.files_scanned))
        print(f"lint report: {args.output}", file=sys.stderr)
    else:
        sys.stdout.write(rendered)
    return 0 if report.ok else 1


# --------------------------------------------------------------------------- #
# bench sub-command (the unified harness in repro.perf)
# --------------------------------------------------------------------------- #
def _bench_echo(message: str) -> None:
    """Human progress for ``bench``: always stderr, so ``--json -`` stdout
    stays machine-parseable."""
    print(message, file=sys.stderr, flush=True)


def _bench_ledger_path(args: argparse.Namespace):
    from .perf import LEDGER_NAME

    if getattr(args, "no_ledger", False):
        return None
    if getattr(args, "ledger", None):
        return Path(args.ledger)
    return Path(args.records_dir) / LEDGER_NAME


def _bench_metric_line(record) -> str:
    """The gated/directional metrics of a record, one compact line."""
    shown = [
        f"{name}={value.value:g}{(' ' + value.unit) if value.unit else ''}"
        for name, value in sorted(record.metrics.items())
        if value.better != "none"
    ]
    return ", ".join(shown)


def _cmd_bench_run(args: argparse.Namespace) -> int:
    from . import perf

    try:
        if args.names:
            names = [perf.get_benchmark(name).name for name in args.names]
        else:
            names = perf.benchmark_names(args.suite)
    except KeyError as exc:
        raise SystemExit(exc.args[0])
    if not names:
        raise SystemExit(
            f"no benchmarks in suite {args.suite!r} "
            f"(suites: {', '.join(perf.suite_names())})"
        )

    records_dir = Path(args.records_dir)
    outcomes = []
    problems: dict = {}
    for name in names:
        _bench_echo(f"bench {name}: running (scale={args.scale}) ...")
        try:
            outcome = perf.run_registered(name, args.scale)
        except Exception as exc:  # a broken benchmark must not kill the suite
            problems[name] = [f"{type(exc).__name__}: {exc}"]
            _bench_echo(f"bench {name}: ERROR {type(exc).__name__}: {exc}")
            continue
        outcomes.append(outcome)
        bench_problems = list(outcome.problems)

        if args.compare_against_committed:
            baseline, compare_problems, deltas = perf.compare_with_committed(
                outcome.record, records_dir
            )
            env_warnings = (
                perf.comparability_warnings(baseline.env, outcome.record.env)
                if baseline is not None
                else []
            )
            if deltas:
                _bench_echo(f"bench {name}: vs committed baseline")
                _bench_echo(perf.format_compare(deltas, env_warnings))
            # compare_problems repeats the absolute-gate findings (prefixed
            # with the benchmark name); keep each finding once.
            bench_problems = [
                p
                for p in bench_problems
                if not any(p in cp for cp in compare_problems)
            ] + compare_problems

        status = "ok" if not bench_problems else "FAIL"
        _bench_echo(
            f"bench {name}: {status} in {outcome.seconds:.1f}s  "
            f"{_bench_metric_line(outcome.record)}"
        )
        for problem in bench_problems:
            _bench_echo(f"  problem: {problem}")
        if bench_problems:
            problems[name] = bench_problems

    fresh_records = [outcome.record for outcome in outcomes]
    ledger = _bench_ledger_path(args)
    if ledger is not None and fresh_records:
        # Seed with the committed legacy records first (idempotent: the
        # ledger dedups on content), so history starts at the recorded
        # trajectory instead of at this run.
        seeded, _ = perf.append_records(
            ledger, perf.ingest_legacy_directory(records_dir).values()
        )
        appended, deduplicated = perf.append_records(ledger, fresh_records)
        _bench_echo(
            f"ledger {ledger}: +{appended + seeded} record(s)"
            + (f", {deduplicated} duplicate(s) skipped" if deduplicated else "")
        )

    if args.write_records:
        records_dir.mkdir(parents=True, exist_ok=True)
        for record in fresh_records:
            path = records_dir / f"BENCH_{record.benchmark}.json"
            path.write_text(
                json.dumps(record.to_dict(), indent=2, sort_keys=True) + "\n",
                encoding="utf-8",
            )
        _bench_echo(f"wrote {len(fresh_records)} record(s) to {records_dir}")

    ok = not problems
    if args.json:
        document = {
            "schema": "repro-bench-run-1",
            "scale": args.scale,
            "benchmarks": names,
            "ok": ok,
            "problems": problems,
            "records": [record.to_dict() for record in fresh_records],
        }
        payload = json.dumps(document, indent=2, sort_keys=True) + "\n"
        if args.json == "-":
            sys.stdout.write(payload)
        else:
            Path(args.json).write_text(payload, encoding="utf-8")
            _bench_echo(f"run document: {args.json}")
    if not ok:
        _bench_echo(
            f"bench run: {len(problems)} of {len(names)} benchmark(s) failed"
        )
    return 0 if ok else 1


def _cmd_bench_compare(args: argparse.Namespace) -> int:
    from . import perf

    records_dir = Path(args.records_dir)
    try:
        if args.against_committed:
            pairs = []
            for path in args.records:
                current = perf.load_record_file(path)
                baseline, problems, deltas = perf.compare_with_committed(
                    current, records_dir
                )
                pairs.append((current, baseline, problems, deltas))
        else:
            if len(args.records) != 2:
                raise SystemExit(
                    "bench compare needs exactly two record files (baseline "
                    "current), or --against-committed with one or more "
                    "current records"
                )
            baseline = perf.load_record_file(args.records[0])
            current = perf.load_record_file(args.records[1])
            if baseline.benchmark != current.benchmark:
                raise SystemExit(
                    f"records describe different benchmarks: "
                    f"{baseline.benchmark!r} vs {current.benchmark!r}"
                )
            pairs = [
                (
                    current,
                    baseline,
                    perf.comparison_problems(baseline, current),
                    perf.compare_records(baseline, current),
                )
            ]
    except (OSError, ValueError) as exc:
        raise SystemExit(str(exc))

    failed = False
    for current, baseline, problems, deltas in pairs:
        env_warnings = (
            perf.comparability_warnings(baseline.env, current.env)
            if baseline is not None
            else []
        )
        print(f"{current.benchmark} (scale={current.scale}):")
        if deltas:
            print(perf.format_compare(deltas, env_warnings))
        for problem in problems:
            print(f"  problem: {problem}")
            failed = True
        if not problems:
            print("  ok: within gates and tolerances")
    return 1 if failed else 0


def _cmd_bench_history(args: argparse.Namespace) -> int:
    from . import perf

    ledger = (
        Path(args.ledger)
        if args.ledger
        else Path(args.records_dir) / perf.LEDGER_NAME
    )
    records, parse_problems = perf.load_history(ledger)
    for problem in parse_problems:
        print(f"warning: {problem}", file=sys.stderr)
    if args.latest:
        records = perf.latest_by_benchmark(records, args.benchmark)
        print(perf.history_table(records, None))
        return 0
    print(perf.history_table(records, args.benchmark, limit=args.limit))
    return 0


def _cmd_bench_list(args: argparse.Namespace) -> int:
    from . import perf

    names = perf.benchmark_names(args.suite)
    if not names:
        raise SystemExit(
            f"no benchmarks in suite {args.suite!r} "
            f"(suites: {', '.join(perf.suite_names())})"
        )
    for name in names:
        bench = perf.get_benchmark(name)
        gated = [
            spec.name
            for spec in bench.metrics
            if spec.gate_min is not None
            or spec.gate_max is not None
            or spec.rel_tolerance is not None
        ]
        print(f"{name:24s} [{', '.join(bench.suites)}] {bench.title}")
        print(
            f"{'':24s} metrics: {len(bench.metrics)}, gated: "
            f"{', '.join(gated) or '(none)'}"
        )
    return 0


def _cmd_bench_env(args: argparse.Namespace) -> int:
    from .perf import environment_fingerprint

    print(json.dumps(environment_fingerprint(), indent=2, sort_keys=True))
    return 0


def _cmd_cache_clear(args: argparse.Namespace) -> int:
    store = _cache_store(args)
    removed = store.clear()
    print(f"removed {removed} entr{'y' if removed == 1 else 'ies'} from {store.root}")
    return 0


def _cmd_cache_warm(args: argparse.Namespace) -> int:
    store = _cache_store(args)
    graphs = []
    for target in args.targets:
        path = Path(target)
        if path.is_dir():
            graphs.extend(WorkloadSuite.load(path))
        else:
            graphs.append(_load_target(target))
    if not graphs:
        raise SystemExit("nothing to warm: no targets resolved to graphs")
    runner = BatchRunner(
        algorithm=args.algorithm,
        constraints=_constraints_from(args),
        jobs=args.jobs,
        timeout=args.timeout,
        store=store,
    )
    report = runner.run(graphs, progress=_progress_from(args))
    computed = sum(1 for item in report.items if item.ok and not item.cached)
    already = sum(1 for item in report.items if item.cached)
    failed = len(report.failures())
    print(
        f"warmed {store.root}: {computed} block(s) enumerated and stored, "
        f"{already} already cached, {failed} failed"
    )
    print(store.stats.summary())
    store.persist_stats()
    return 0 if failed == 0 else 1


# --------------------------------------------------------------------------- #
def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-enum",
        description="Polynomial-time convex subgraph enumeration for instruction set extension",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    p_enum = subparsers.add_parser("enumerate", help="enumerate cuts of one basic block")
    p_enum.add_argument(
        "target", help="kernel name, DFG JSON file, or Python source (file.py::func)"
    )
    p_enum.add_argument("--show-cuts", action="store_true", help="print every cut")
    _add_profile_argument(p_enum)
    p_enum.add_argument(
        "--from-source",
        action="store_true",
        help="treat the target as Python source and enumerate the function's "
        "largest basic block",
    )
    _add_engine_arguments(p_enum)
    _add_constraint_arguments(p_enum)
    _add_cache_arguments(p_enum)
    _add_obs_arguments(p_enum)
    p_enum.set_defaults(func=_cmd_enumerate)

    p_cmp = subparsers.add_parser("compare", help="compare algorithms on a suite (Figure 5)")
    p_cmp.add_argument("--blocks", type=int, default=20)
    p_cmp.add_argument("--min-ops", type=int, default=10)
    p_cmp.add_argument("--max-ops", type=int, default=40)
    p_cmp.add_argument("--no-kernels", action="store_true")
    p_cmp.add_argument("--no-trees", action="store_true")
    _add_profile_argument(p_cmp)
    _add_engine_arguments(p_cmp, multiple=True)
    _add_constraint_arguments(p_cmp)
    _add_cache_arguments(p_cmp)
    _add_obs_arguments(p_cmp)
    p_cmp.set_defaults(func=_cmd_compare)

    p_ise = subparsers.add_parser("ise", help="identify an instruction set extension")
    p_ise.add_argument(
        "targets",
        nargs="+",
        help="kernel names, DFG JSON files, or Python sources (file.py::func)",
    )
    p_ise.add_argument("--name", default="application")
    p_ise.add_argument("--execution-count", type=float, default=1000.0)
    p_ise.add_argument("--max-instructions", type=int, default=4)
    p_ise.add_argument(
        "--from-source",
        action="store_true",
        help="treat Python targets as whole functions: every basic block "
        "with operations joins the application",
    )
    p_ise.add_argument(
        "--dot-dir",
        default=None,
        help="write one Graphviz DOT file per selected custom instruction "
        "(cut vertices highlighted) into this directory",
    )
    _add_engine_arguments(p_ise)
    _add_constraint_arguments(p_ise)
    _add_cache_arguments(p_ise)
    _add_obs_arguments(p_ise)
    p_ise.set_defaults(func=_cmd_ise)

    p_gen = subparsers.add_parser("generate", help="generate and save a workload suite")
    p_gen.add_argument("output", help="output directory")
    p_gen.add_argument("--name", default="suite")
    p_gen.add_argument("--blocks", type=int, default=30)
    p_gen.add_argument("--min-ops", type=int, default=10)
    p_gen.add_argument("--max-ops", type=int, default=60)
    p_gen.set_defaults(func=_cmd_generate)

    p_ker = subparsers.add_parser("kernels", help="list built-in kernels")
    p_ker.set_defaults(func=_cmd_kernels)

    p_front = subparsers.add_parser(
        "frontend",
        help="compile Python source (or 'corpus') through the bytecode -> "
        "CFG -> DFG frontend",
    )
    p_front.add_argument(
        "source",
        help="a .py file (optionally file.py::func) or 'corpus' for the "
        "bundled reference kernels",
    )
    p_front.add_argument(
        "--func",
        dest="functions",
        action="append",
        help="function to compile (repeatable; default: every function "
        "defined in the file / every corpus kernel)",
    )
    p_front.add_argument(
        "--profile",
        action="store_true",
        help="run the function(s) and attribute execution counts to blocks "
        "(corpus kernels use their bundled sample calls)",
    )
    p_front.add_argument(
        "--call",
        action="append",
        help="one profiling invocation as a JSON argument list, e.g. "
        "--call '[255, 3]' (repeatable; required with --profile on files)",
    )
    p_front.add_argument(
        "--ise",
        action="store_true",
        help="run the ISE pipeline on the translated blocks",
    )
    p_front.add_argument(
        "--save-suite",
        default=None,
        help="save the translated blocks (with execution counts) as a "
        "workload suite directory",
    )
    p_front.add_argument("--name", default="frontend")
    p_front.add_argument("--max-instructions", type=int, default=4)
    p_front.add_argument(
        "--dot-dir",
        default=None,
        help="with --ise: write one DOT file per selected instruction",
    )
    _add_engine_arguments(p_front)
    _add_constraint_arguments(p_front)
    _add_cache_arguments(p_front)
    _add_obs_arguments(p_front)
    p_front.set_defaults(func=_cmd_frontend)

    p_cache = subparsers.add_parser(
        "cache", help="inspect, clear or warm the enumeration-result cache"
    )
    cache_sub = p_cache.add_subparsers(dest="cache_command", required=True)

    p_stats = cache_sub.add_parser("stats", help="show cache entry count and size")
    p_stats.add_argument("--cache-dir", default=None)
    p_stats.set_defaults(func=_cmd_cache_stats)

    p_clear = cache_sub.add_parser("clear", help="delete every cache entry")
    p_clear.add_argument("--cache-dir", default=None)
    p_clear.set_defaults(func=_cmd_cache_clear)

    p_warm = cache_sub.add_parser(
        "warm", help="pre-populate the cache by enumerating targets"
    )
    p_warm.add_argument(
        "targets",
        nargs="+",
        help="kernel names, DFG JSON files, or saved workload-suite directories",
    )
    p_warm.add_argument("--cache-dir", default=None)
    _add_engine_arguments(p_warm)
    _add_constraint_arguments(p_warm)
    _add_obs_arguments(p_warm)
    p_warm.set_defaults(func=_cmd_cache_warm)

    p_metrics = subparsers.add_parser(
        "metrics",
        help="pretty-print the run report of a --metrics-json document",
    )
    p_metrics.add_argument(
        "metrics_file",
        help="a --metrics-json output file, or '-' to read it from stdin",
    )
    p_metrics.add_argument(
        "--trace",
        default=None,
        help="matching --trace file (.jsonl or Chrome JSON) for span "
        "accounting of the run's wall time",
    )
    p_metrics.set_defaults(func=_cmd_metrics)

    p_bench = subparsers.add_parser(
        "bench",
        help="run, compare and browse the unified benchmark harness "
        "(repro.perf)",
    )
    bench_sub = p_bench.add_subparsers(dest="bench_command", required=True)

    def _add_records_dir(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--records-dir",
            default="benchmarks",
            help="directory of the committed BENCH_*.json records and the "
            "history ledger (default: benchmarks)",
        )

    p_brun = bench_sub.add_parser(
        "run", help="run registered benchmarks and append to the ledger"
    )
    p_brun.add_argument(
        "names",
        nargs="*",
        help="benchmark names to run (default: every benchmark in --suite)",
    )
    p_brun.add_argument(
        "--suite",
        default="ci",
        help="suite to run when no names are given (default: ci; "
        "'all' runs everything)",
    )
    p_brun.add_argument(
        "--scale",
        choices=("small", "full"),
        default="small",
        help="workload tier (small is the CI configuration; default small)",
    )
    p_brun.add_argument(
        "--json",
        metavar="FILE",
        default=None,
        help="write the run document (records + problems) as JSON; '-' "
        "prints it to stdout with all progress on stderr",
    )
    p_brun.add_argument(
        "--compare-against-committed",
        action="store_true",
        help="gate each fresh record against its committed "
        "BENCH_<name>.json baseline (exit 1 on regression)",
    )
    p_brun.add_argument(
        "--write-records",
        action="store_true",
        help="overwrite the committed BENCH_<name>.json records with this "
        "run's results (re-baselining)",
    )
    p_brun.add_argument(
        "--ledger",
        default=None,
        metavar="FILE",
        help="history ledger path (default: <records-dir>/BENCH_history.jsonl)",
    )
    p_brun.add_argument(
        "--no-ledger",
        action="store_true",
        help="do not append this run to the history ledger",
    )
    _add_records_dir(p_brun)
    _add_obs_arguments(p_brun)
    p_brun.set_defaults(func=_cmd_bench_run)

    p_bcmp = bench_sub.add_parser(
        "compare",
        help="compare record files; exit 1 on gate violations or regressions",
    )
    p_bcmp.add_argument(
        "records",
        nargs="+",
        help="two record files (baseline current), or current records only "
        "with --against-committed",
    )
    p_bcmp.add_argument(
        "--against-committed",
        action="store_true",
        help="compare each record against its committed BENCH_<name>.json",
    )
    _add_records_dir(p_bcmp)
    p_bcmp.set_defaults(func=_cmd_bench_compare)

    p_bhist = bench_sub.add_parser(
        "history", help="render the perf trajectory from the ledger"
    )
    p_bhist.add_argument(
        "benchmark", nargs="?", default=None, help="restrict to one benchmark"
    )
    p_bhist.add_argument(
        "--ledger",
        default=None,
        metavar="FILE",
        help="ledger path (default: <records-dir>/BENCH_history.jsonl)",
    )
    p_bhist.add_argument(
        "--limit", type=_positive_int, default=None, help="show only the last N runs"
    )
    p_bhist.add_argument(
        "--latest",
        action="store_true",
        help="show only the newest record per benchmark",
    )
    _add_records_dir(p_bhist)
    p_bhist.set_defaults(func=_cmd_bench_history)

    p_blist = bench_sub.add_parser("list", help="list registered benchmarks")
    p_blist.add_argument(
        "--suite", default=None, help="restrict to one suite (default: all)"
    )
    p_blist.set_defaults(func=_cmd_bench_list)

    p_benv = bench_sub.add_parser(
        "env", help="print the environment fingerprint records are stamped with"
    )
    p_benv.set_defaults(func=_cmd_bench_env)

    p_lint = subparsers.add_parser(
        "lint",
        help="run the domain-aware static analysis passes (see repro.lint)",
    )
    p_lint.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests", "benchmarks"],
        help="files or directories to lint (default: src tests benchmarks)",
    )
    p_lint.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (json is the versioned CI artifact document)",
    )
    p_lint.add_argument(
        "--select",
        action="append",
        default=None,
        metavar="RULES",
        help="comma-separated rule ids to run (repeatable); default: all",
    )
    p_lint.add_argument(
        "--jobs",
        default="1",
        metavar="N",
        help="parallel worker processes for the per-file passes "
        "('auto' = CPU count; project passes always run in-process)",
    )
    p_lint.add_argument(
        "--changed",
        default=None,
        metavar="REF",
        help="report only findings on lines touched since the git ref",
    )
    p_lint.add_argument(
        "--output",
        default=None,
        metavar="FILE",
        help="write the report to FILE (text summary still goes to stdout)",
    )
    p_lint.add_argument(
        "--list-rules",
        action="store_true",
        help="list every rule id with its pass and description, then exit",
    )
    p_lint.set_defaults(func=_cmd_lint)

    return parser


def _add_profile_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--profile-enum",
        action="store_true",
        help="run the command under cProfile and print the top-20 "
        "cumulative-time entries to stderr (perf-investigation aid)",
    )


def _dispatch(args: argparse.Namespace) -> int:
    """Run the selected sub-command (optionally under cProfile)."""
    if getattr(args, "profile_enum", False):
        import cProfile
        import pstats

        profiler = cProfile.Profile()
        profiler.enable()
        try:
            return args.func(args)
        finally:
            profiler.disable()
            print("\n--- cProfile: top 20 by cumulative time ---", file=sys.stderr)
            stats = pstats.Stats(profiler, stream=sys.stderr)
            stats.sort_stats("cumulative").print_stats(20)
    return args.func(args)


def _run_observed(args: argparse.Namespace, argv: Optional[List[str]]) -> int:
    """Run the sub-command with the obs recorders active, then write artifacts.

    The artifacts are written in a ``finally`` block so a command that raises
    (including ``SystemExit``) still leaves its telemetry behind for
    post-mortem inspection.
    """
    registry, recorder = obs_runtime.activate()
    start = time.perf_counter()
    try:
        with recorder.span(f"cli.{args.command}", cat="cli"):
            if args.metrics_json == "-":
                # Keep piped stdout machine-readable: the JSON document goes
                # to the real stdout below, everything else to stderr.
                with contextlib.redirect_stdout(sys.stderr):
                    return _dispatch(args)
            return _dispatch(args)
    finally:
        from .perf.env import environment_fingerprint

        registry.set_gauge("run.wall_seconds", time.perf_counter() - start)
        meta = {
            "command": args.command,
            "argv": list(argv) if argv is not None else sys.argv[1:],
            # The same fingerprint bench records carry, so a run report and
            # the benchmark ledger are attributable to the same machine.
            "env": environment_fingerprint(),
        }
        if args.trace_out:
            kind = write_trace_file(args.trace_out, recorder.records, meta)
            print(f"trace ({kind}): {args.trace_out}", file=sys.stderr)
        if args.metrics_json:
            payload = json.dumps(registry.to_dict(meta=meta), indent=2) + "\n"
            if args.metrics_json == "-":
                sys.stdout.write(payload)
            else:
                Path(args.metrics_json).write_text(payload, encoding="utf-8")
                print(f"metrics: {args.metrics_json}", file=sys.stderr)
        obs_runtime.deactivate()


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of the ``repro-enum`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "no_insearch_memo", False):
        # Both switches: the module flag covers this process, the env var
        # covers enumeration workers spawned by --jobs.
        set_insearch_enabled(False)
        os.environ[INSEARCH_ENV] = "1"
    if getattr(args, "trace_out", None) or getattr(args, "metrics_json", None):
        return _run_observed(args, argv)
    return _dispatch(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
