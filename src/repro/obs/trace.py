"""Structured run tracing: spans with start/end/attrs, process-merge, sinks.

A *span* is one named, timed region of the run — ``cli.ise`` wrapping a whole
command, ``batch.run`` wrapping a batch, ``worker.chunk`` wrapping one chunk
inside a pool worker, ``enumerate`` wrapping one block.  Spans carry:

* ``ts`` — wall-clock start in **microseconds since the Unix epoch** (so
  records from different processes on one machine line up on a shared
  timeline without clock negotiation);
* ``dur`` — duration in microseconds, measured with ``perf_counter`` (so the
  duration is monotonic even if the wall clock steps);
* ``pid``/``tid`` — recorded at *close* time, which makes traces correct in
  forked pool workers;
* ``args`` — free-form primitive attributes (graph name, cut count, ...).

Worker processes record spans into their own tracer and ship them back as
plain tuples (:meth:`Tracer.wire_records`) inside the engine's chunk results;
the parent folds them in with :meth:`Tracer.merge_wire`.  Sinks — the JSONL
file and the Chrome trace-event export — live in :mod:`repro.obs.export`.

When observability is off, instrumented code talks to :data:`NULL_TRACER`,
whose ``span()`` returns one shared do-nothing context manager.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Dict, List, Optional

#: Schema tag of the JSONL trace file (first line, ``type: "meta"``).
TRACE_SCHEMA = "repro-trace-1"

#: Structural version of the picklable wire form (worker span shipping).
TRACE_WIRE_VERSION = 1

#: JSON-safe primitive types allowed as span attribute values.
_PRIMITIVES = (str, int, float, bool, type(None))


def _clean_args(attrs: Dict[str, object]) -> Dict[str, object]:
    """Coerce attribute values to JSON-safe primitives."""
    return {
        key: (value if isinstance(value, _PRIMITIVES) else repr(value))
        for key, value in attrs.items()
    }


class Span:
    """Context manager recording one span into its tracer on exit."""

    __slots__ = ("_tracer", "name", "cat", "args", "_ts_us", "_t0")

    def __init__(self, tracer: "Tracer", name: str, cat: str, args: Dict[str, object]) -> None:
        self._tracer = tracer
        self.name = name
        self.cat = cat
        self.args = args
        self._ts_us = 0
        self._t0 = 0.0

    def note(self, **attrs: object) -> None:
        """Attach additional attributes (e.g. results known only at the end)."""
        self.args.update(attrs)

    def __enter__(self) -> "Span":
        self._ts_us = time.time_ns() // 1000
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        duration_us = int((time.perf_counter() - self._t0) * 1_000_000)
        if exc_type is not None:
            self.args.setdefault("error", f"{exc_type.__name__}: {exc}")
        self._tracer.records.append(
            {
                "type": "span",
                "name": self.name,
                "cat": self.cat,
                "ts": self._ts_us,
                "dur": duration_us,
                "pid": os.getpid(),
                "tid": threading.get_ident() & 0xFFFFFFFF,
                "args": _clean_args(self.args),
            }
        )


class Tracer:
    """In-memory span recorder for one process."""

    def __init__(self, process_label: str = "repro") -> None:
        self.process_label = process_label
        self.records: List[Dict[str, object]] = []

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #
    def span(self, name: str, cat: str = "repro", **attrs: object) -> Span:
        """Open a span; use as ``with tracer.span("batch.run", jobs=2):``."""
        return Span(self, name, cat, dict(attrs))

    def instant(self, name: str, cat: str = "repro", **attrs: object) -> None:
        """Record a zero-duration marker event."""
        self.records.append(
            {
                "type": "instant",
                "name": name,
                "cat": cat,
                "ts": time.time_ns() // 1000,
                "dur": 0,
                "pid": os.getpid(),
                "tid": threading.get_ident() & 0xFFFFFFFF,
                "args": _clean_args(dict(attrs)),
            }
        )

    # ------------------------------------------------------------------ #
    # Cross-process merging
    # ------------------------------------------------------------------ #
    def wire_records(self, reset: bool = True) -> tuple:
        """The recorded spans as a compact picklable tuple (a delta)."""
        wire = (
            "trace",
            TRACE_WIRE_VERSION,
            tuple(
                (
                    record["type"],
                    record["name"],
                    record["cat"],
                    record["ts"],
                    record["dur"],
                    record["pid"],
                    record["tid"],
                    tuple(sorted(record["args"].items())),
                )
                for record in self.records
            ),
        )
        if reset:
            self.records = []
        return wire

    def merge_wire(self, wire: tuple) -> None:
        """Fold a worker's :meth:`wire_records` into this tracer."""
        if not isinstance(wire, tuple) or len(wire) != 3 or wire[0] != "trace":
            raise ValueError(f"not a trace wire payload: {wire!r}")
        if wire[1] != TRACE_WIRE_VERSION:
            raise ValueError(
                f"trace wire version mismatch: got {wire[1]!r}, "
                f"expected {TRACE_WIRE_VERSION}"
            )
        for kind, name, cat, ts, dur, pid, tid, args in wire[2]:
            self.records.append(
                {
                    "type": kind,
                    "name": name,
                    "cat": cat,
                    "ts": ts,
                    "dur": dur,
                    "pid": pid,
                    "tid": tid,
                    "args": dict(args),
                }
            )

    def extend(self, records: List[Dict[str, object]]) -> None:
        self.records.extend(records)

    def __len__(self) -> int:
        return len(self.records)


class _NullSpan:
    """Shared do-nothing span."""

    __slots__ = ()

    def note(self, **attrs: object) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """No-op stand-in used when observability is disabled."""

    __slots__ = ()
    records: List[Dict[str, object]] = []

    def span(self, name: str, cat: str = "repro", **attrs: object) -> _NullSpan:
        return _NULL_SPAN

    def instant(self, name: str, cat: str = "repro", **attrs: object) -> None:
        pass

    def wire_records(self, reset: bool = True) -> Optional[tuple]:
        return None

    def merge_wire(self, wire: tuple) -> None:
        pass

    def extend(self, records: List[Dict[str, object]]) -> None:
        pass

    def __len__(self) -> int:
        return 0


#: Shared no-op singleton (see :mod:`repro.obs.runtime`).
NULL_TRACER = NullTracer()
