"""Process-safe metrics registry: counters, gauges and histograms with labels.

The registry is the numeric half of the observability layer (the other half
is :mod:`repro.obs.trace`).  Design constraints, in order:

* **Snapshot/merge semantics instead of shared memory.**  Every process —
  the parent and each pool worker — owns a private registry; a worker
  periodically takes a :meth:`MetricsRegistry.snapshot_wire` (which *resets*
  its registry, so snapshots are deltas) and ships it back inside the
  engine's chunk result, where the parent folds it in with
  :meth:`MetricsRegistry.merge_wire`.  No locks, no shared state, and a
  crashed worker loses at most one un-shipped delta.
* **Plain-tuple wire form.**  Snapshots are nested tuples of primitives,
  exactly like :func:`repro.dfg.serialization.graph_to_wire` — cheap to
  pickle and structurally versioned (:data:`METRICS_WIRE_VERSION`).
* **Merge rules**: counters add, gauges keep the incoming value
  (last-write-wins), histograms add bucket-wise (the bucket bounds must
  match — a mismatch raises, it is a programming error, not data).

Metric naming convention (documented in the README): ``subsystem.name``,
with counters suffixed ``_total`` (``enum.lt_calls_total``,
``pool.chunks_dispatched_total``), gauges plain (``run.wall_seconds``) and
histograms named after the measured quantity (``enum.block_seconds``).
Label keys are free-form but low-cardinality (``algorithm``, ``status``,
``rule``, ``side``).
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterable, Optional, Tuple

#: Schema tag of the JSON document form (``--metrics-json`` files).
METRICS_SCHEMA = "repro-metrics-1"

#: Structural version of the picklable wire form (worker snapshots).
METRICS_WIRE_VERSION = 1

#: Label items in canonical (sorted) order — the registry key component.
LabelItems = Tuple[Tuple[str, str], ...]

#: Default histogram bucket upper bounds, in seconds: covers everything from
#: a sub-millisecond cache hit to a multi-minute straggler block.
DEFAULT_TIME_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 300.0,
)


def label_key(labels: Dict[str, object]) -> LabelItems:
    """Canonical, hashable form of a label set (values coerced to str)."""
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Histogram:
    """Fixed-bucket histogram: counts per bucket plus sum and count.

    ``bounds`` are inclusive upper bounds; one extra overflow bucket catches
    everything above the last bound, so ``len(counts) == len(bounds) + 1``.
    """

    __slots__ = ("bounds", "counts", "total", "count")

    def __init__(self, bounds: Tuple[float, ...] = DEFAULT_TIME_BUCKETS) -> None:
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError(f"histogram bounds must be sorted and non-empty: {bounds!r}")
        self.bounds = tuple(float(b) for b in bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.total += value
        self.count += 1

    def merge(self, other: "Histogram") -> None:
        if self.bounds != other.bounds:
            raise ValueError(
                f"cannot merge histograms with different bucket bounds: "
                f"{self.bounds!r} vs {other.bounds!r}"
            )
        for index, amount in enumerate(other.counts):
            self.counts[index] += amount
        self.total += other.total
        self.count += other.count

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class MetricsRegistry:
    """Registry of labelled counters, gauges and histograms."""

    def __init__(self) -> None:
        self._counters: Dict[Tuple[str, LabelItems], float] = {}
        self._gauges: Dict[Tuple[str, LabelItems], float] = {}
        self._histograms: Dict[Tuple[str, LabelItems], Histogram] = {}
        self._histogram_bounds: Dict[str, Tuple[float, ...]] = {}

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #
    def inc(self, name: str, amount: float = 1, **labels: object) -> None:
        """Add *amount* to the counter *name* with the given label set."""
        key = (name, label_key(labels))
        self._counters[key] = self._counters.get(key, 0) + amount

    def set_gauge(self, name: str, value: float, **labels: object) -> None:
        """Set the gauge *name* (last write wins, per label set)."""
        self._gauges[(name, label_key(labels))] = float(value)

    def declare_histogram(self, name: str, bounds: Iterable[float]) -> None:
        """Fix non-default bucket bounds for histogram *name* (before use)."""
        self._histogram_bounds[name] = tuple(float(b) for b in bounds)

    def observe(self, name: str, value: float, **labels: object) -> None:
        """Record *value* into the histogram *name*."""
        key = (name, label_key(labels))
        histogram = self._histograms.get(key)
        if histogram is None:
            histogram = Histogram(
                self._histogram_bounds.get(name, DEFAULT_TIME_BUCKETS)
            )
            self._histograms[key] = histogram
        histogram.observe(value)

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #
    def counter(self, name: str, **labels: object) -> float:
        """Value of one counter series (0 when never incremented)."""
        return self._counters.get((name, label_key(labels)), 0)

    def counter_total(self, name: str) -> float:
        """Sum of the counter *name* over every label set."""
        return sum(v for (n, _), v in self._counters.items() if n == name)

    def gauge(self, name: str, **labels: object) -> Optional[float]:
        return self._gauges.get((name, label_key(labels)))

    def histogram(self, name: str, **labels: object) -> Optional[Histogram]:
        return self._histograms.get((name, label_key(labels)))

    def counter_series(self, name: str) -> Dict[LabelItems, float]:
        """Every label set of counter *name* with its value."""
        return {k[1]: v for k, v in self._counters.items() if k[0] == name}

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    def clear(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    # ------------------------------------------------------------------ #
    # Wire form (worker → parent snapshots)
    # ------------------------------------------------------------------ #
    def snapshot_wire(self, reset: bool = False) -> tuple:
        """Compact picklable snapshot; with ``reset=True`` it is a delta.

        The result contains only primitives and tuples (the
        ``graph_to_wire`` idiom), so it travels cheaply inside the engine's
        chunk payloads.
        """
        wire = (
            "metrics",
            METRICS_WIRE_VERSION,
            tuple((n, l, v) for (n, l), v in self._counters.items()),
            tuple((n, l, v) for (n, l), v in self._gauges.items()),
            tuple(
                (n, l, h.bounds, tuple(h.counts), h.total, h.count)
                for (n, l), h in self._histograms.items()
            ),
        )
        if reset:
            self.clear()
        return wire

    def merge_wire(self, wire: tuple) -> None:
        """Fold one :meth:`snapshot_wire` result into this registry."""
        if not isinstance(wire, tuple) or len(wire) != 5 or wire[0] != "metrics":
            raise ValueError(f"not a metrics wire snapshot: {wire!r}")
        if wire[1] != METRICS_WIRE_VERSION:
            raise ValueError(
                f"metrics wire version mismatch: got {wire[1]!r}, "
                f"expected {METRICS_WIRE_VERSION}"
            )
        _, _, counters, gauges, histograms = wire
        for name, labels, value in counters:
            key = (name, tuple(tuple(item) for item in labels))
            self._counters[key] = self._counters.get(key, 0) + value
        for name, labels, value in gauges:
            self._gauges[(name, tuple(tuple(item) for item in labels))] = value
        for name, labels, bounds, counts, total, count in histograms:
            key = (name, tuple(tuple(item) for item in labels))
            incoming = Histogram(bounds)
            incoming.counts = list(counts)
            incoming.total = total
            incoming.count = count
            existing = self._histograms.get(key)
            if existing is None:
                self._histograms[key] = incoming
            else:
                existing.merge(incoming)

    # ------------------------------------------------------------------ #
    # Document form (--metrics-json files)
    # ------------------------------------------------------------------ #
    def to_dict(self, meta: Optional[Dict[str, object]] = None) -> Dict[str, object]:
        """JSON-serializable document of the whole registry."""
        return {
            "schema": METRICS_SCHEMA,
            "meta": dict(meta or {}),
            "counters": [
                {"name": n, "labels": dict(l), "value": v}
                for (n, l), v in sorted(self._counters.items())
            ],
            "gauges": [
                {"name": n, "labels": dict(l), "value": v}
                for (n, l), v in sorted(self._gauges.items())
            ],
            "histograms": [
                {
                    "name": n,
                    "labels": dict(l),
                    "bounds": list(h.bounds),
                    "counts": list(h.counts),
                    "sum": h.total,
                    "count": h.count,
                }
                for (n, l), h in sorted(self._histograms.items())
            ],
        }

    @classmethod
    def from_dict(cls, document: Dict[str, object]) -> "MetricsRegistry":
        """Rebuild a registry from :meth:`to_dict` output (schema-checked)."""
        if document.get("schema") != METRICS_SCHEMA:
            raise ValueError(
                f"not a {METRICS_SCHEMA} document: schema={document.get('schema')!r}"
            )
        registry = cls()
        for entry in document.get("counters", []):
            key = (str(entry["name"]), label_key(entry.get("labels", {})))
            registry._counters[key] = registry._counters.get(key, 0) + entry["value"]
        for entry in document.get("gauges", []):
            key = (str(entry["name"]), label_key(entry.get("labels", {})))
            registry._gauges[key] = float(entry["value"])
        for entry in document.get("histograms", []):
            key = (str(entry["name"]), label_key(entry.get("labels", {})))
            histogram = Histogram(tuple(entry["bounds"]))
            histogram.counts = [int(c) for c in entry["counts"]]
            histogram.total = float(entry["sum"])
            histogram.count = int(entry["count"])
            existing = registry._histograms.get(key)
            if existing is None:
                registry._histograms[key] = histogram
            else:
                existing.merge(histogram)
        return registry


class NullMetrics:
    """No-op stand-in used when observability is disabled (zero overhead)."""

    __slots__ = ()

    def inc(self, name: str, amount: float = 1, **labels: object) -> None:
        pass

    def set_gauge(self, name: str, value: float, **labels: object) -> None:
        pass

    def declare_histogram(self, name: str, bounds: Iterable[float]) -> None:
        pass

    def observe(self, name: str, value: float, **labels: object) -> None:
        pass

    def counter(self, name: str, **labels: object) -> float:
        return 0

    def counter_total(self, name: str) -> float:
        return 0

    def gauge(self, name: str, **labels: object) -> Optional[float]:
        return None

    def histogram(self, name: str, **labels: object) -> Optional[Histogram]:
        return None


#: Shared no-op singleton (see :mod:`repro.obs.runtime`).
NULL_METRICS = NullMetrics()
