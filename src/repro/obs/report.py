"""Human-readable run reports from metrics documents and trace files.

``repro metrics run.metrics.json [--trace run.trace.json]`` renders the
quantities the paper's evaluation is about — where the wall time went, how
dominant the Lengauer–Tarjan kernel is, how often the memoization layers hit
— from the artifacts a ``--trace``/``--metrics-json`` run leaves behind.

The span-accounting section is computed without any parent/child links:
the *root* span is the ``cli``-category span (the whole command); coverage is
the interval-union of every other same-process span clipped to the root, so
nested spans never double-count and the "≥95% of wall time accounted for"
acceptance check is a one-number read-out.
"""

from __future__ import annotations

import json
import statistics
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .metrics import METRICS_SCHEMA


# --------------------------------------------------------------------------- #
# Sample statistics (shared with the repro.perf benchmark harness)
# --------------------------------------------------------------------------- #
def percentile(samples: Sequence[float], q: float) -> float:
    """The *q*-th percentile (0–100) with linear interpolation."""
    if not samples:
        raise ValueError("percentile() of an empty sample set")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile rank must be in [0, 100], got {q}")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(rank)
    frac = rank - low
    if frac == 0.0:
        return ordered[low]
    return ordered[low] * (1.0 - frac) + ordered[low + 1] * frac


def median_abs_deviation(samples: Sequence[float]) -> float:
    """Median absolute deviation — the robust spread of a timing sample set."""
    if not samples:
        raise ValueError("median_abs_deviation() of an empty sample set")
    center = statistics.median(samples)
    return statistics.median(abs(value - center) for value in samples)


def summarize_samples(samples: Sequence[float]) -> Dict[str, float]:
    """Robust summary of a sample set: min/median/p90/max/MAD."""
    return {
        "count": float(len(samples)),
        "min": min(samples),
        "median": statistics.median(samples),
        "p90": percentile(samples, 90.0),
        "max": max(samples),
        "mad": median_abs_deviation(samples),
    }


def load_metrics(path: Union[str, Path]) -> Dict[str, object]:
    """Load and schema-check a ``--metrics-json`` document."""
    document = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(document, dict) or document.get("schema") != METRICS_SCHEMA:
        raise ValueError(
            f"{path}: not a {METRICS_SCHEMA} document "
            f"(schema={document.get('schema') if isinstance(document, dict) else None!r})"
        )
    return document


def counter_totals(document: Dict[str, object]) -> Dict[str, float]:
    """Counter name → value summed over every label set."""
    totals: Dict[str, float] = {}
    for entry in document.get("counters", []):
        totals[entry["name"]] = totals.get(entry["name"], 0) + entry["value"]
    return totals


def counter_by_label(
    document: Dict[str, object], name: str, label: str
) -> Dict[str, float]:
    """Values of counter *name* grouped by one label's value."""
    grouped: Dict[str, float] = {}
    for entry in document.get("counters", []):
        if entry["name"] != name:
            continue
        key = str(entry.get("labels", {}).get(label, ""))
        grouped[key] = grouped.get(key, 0) + entry["value"]
    return grouped


def gauge_value(document: Dict[str, object], name: str) -> Optional[float]:
    """First value of gauge *name* (any label set), or ``None``."""
    for entry in document.get("gauges", []):
        if entry["name"] == name:
            return float(entry["value"])
    return None


# --------------------------------------------------------------------------- #
# Span accounting
# --------------------------------------------------------------------------- #
def find_root_span(records: List[Dict[str, object]]) -> Optional[Dict[str, object]]:
    """The whole-command span: the longest ``cli``-category span, if any."""
    roots = [r for r in records if r["type"] == "span" and r["cat"] == "cli"]
    if not roots:
        roots = [r for r in records if r["type"] == "span"]
    return max(roots, key=lambda r: r["dur"], default=None)


def _interval_union_us(intervals: List[Tuple[int, int]]) -> int:
    """Total length of the union of ``(start, end)`` microsecond intervals."""
    total = 0
    last_end: Optional[int] = None
    for start, end in sorted(intervals):
        if last_end is None or start > last_end:
            total += end - start
            last_end = end
        elif end > last_end:
            total += end - last_end
            last_end = end
    return total


def span_coverage(records: List[Dict[str, object]]) -> Optional[Dict[str, object]]:
    """How much of the root span's wall time named child spans account for.

    Considers only spans in the root's process and thread (worker spans
    overlap the parent's dispatch span in wall time and would double-count),
    clips them to the root interval and takes their union.  Returns ``None``
    when there is no root span.
    """
    root = find_root_span(records)
    if root is None or root["dur"] <= 0:
        return None
    root_start, root_end = root["ts"], root["ts"] + root["dur"]
    intervals: List[Tuple[int, int]] = []
    for record in records:
        if record is root or record["type"] != "span":
            continue
        if record["pid"] != root["pid"] or record["tid"] != root["tid"]:
            continue
        start = max(record["ts"], root_start)
        end = min(record["ts"] + record["dur"], root_end)
        if end > start:
            intervals.append((start, end))
    covered_us = _interval_union_us(intervals)
    return {
        "root": root["name"],
        "root_seconds": root["dur"] / 1e6,
        "covered_seconds": covered_us / 1e6,
        "coverage": covered_us / root["dur"],
    }


def aggregate_spans(
    records: List[Dict[str, object]]
) -> List[Tuple[str, int, float]]:
    """``(name, count, total_seconds)`` per span name, by descending time."""
    by_name: Dict[str, Tuple[int, int]] = {}
    for record in records:
        if record["type"] != "span":
            continue
        count, total = by_name.get(record["name"], (0, 0))
        by_name[record["name"]] = (count + 1, total + record["dur"])
    rows = [(name, count, total / 1e6) for name, (count, total) in by_name.items()]
    rows.sort(key=lambda row: row[2], reverse=True)
    return rows


# --------------------------------------------------------------------------- #
# The report
# --------------------------------------------------------------------------- #
def _rate(hits: float, misses: float) -> str:
    lookups = hits + misses
    if not lookups:
        return "no lookups"
    return f"{hits:.0f}/{lookups:.0f} ({hits / lookups:.1%} hit rate)"


def format_run_report(
    document: Dict[str, object],
    trace: Optional[Tuple[Dict[str, object], List[Dict[str, object]]]] = None,
) -> str:
    """Render the run report (see the module docstring)."""
    lines: List[str] = []
    meta = document.get("meta", {})
    command = meta.get("command", "?")
    wall = gauge_value(document, "run.wall_seconds")
    lines.append(f"run            : {command}")
    if meta.get("argv"):
        lines.append(f"argv           : {' '.join(str(a) for a in meta['argv'])}")
    env = meta.get("env")
    if isinstance(env, dict):
        # The environment fingerprint the CLI stamps into every metrics
        # document (see repro.perf.env) — provenance first, numbers second.
        lines.append(
            "environment    : python {python} ({implementation}), "
            "{cpu_count} cpu, {platform}".format(
                python=env.get("python", "?"),
                implementation=env.get("implementation", "?"),
                cpu_count=env.get("cpu_count", "?"),
                platform=env.get("platform", "?"),
            )
        )
        if env.get("git_sha"):
            lines.append(f"git revision   : {env['git_sha']}")
    if wall is not None:
        lines.append(f"wall time      : {wall:.3f} s")
    totals = counter_totals(document)

    # --- span accounting --------------------------------------------------- #
    if trace is not None:
        _, records = trace
        coverage = span_coverage(records)
        if coverage is not None:
            if wall is None:
                wall = coverage["root_seconds"]
            lines.append("")
            lines.append("span accounting (whole run = root span "
                         f"{coverage['root']!r}, {coverage['root_seconds']:.3f} s):")
            denominator = coverage["root_seconds"] or 1e-9
            for name, count, seconds in aggregate_spans(records)[:12]:
                lines.append(
                    f"  {name:<28s} x{count:<5d} {seconds:9.3f} s"
                    f"  ({seconds / denominator:6.1%} of wall)"
                )
            lines.append(
                f"  named-span coverage of wall time: {coverage['coverage']:.1%}"
                f" ({coverage['covered_seconds']:.3f} s"
                f" of {coverage['root_seconds']:.3f} s)"
            )

    # --- enumeration ------------------------------------------------------- #
    blocks = counter_by_label(document, "enum.blocks_total", "status")
    if blocks or totals.get("enum.cuts_found_total"):
        lines.append("")
        lines.append("enumeration:")
        if blocks:
            breakdown = ", ".join(
                f"{int(v)} {k}" for k, v in sorted(blocks.items())
            )
            lines.append(f"  blocks               : {breakdown}")
        lines.append(
            f"  cuts found           : {int(totals.get('enum.cuts_found_total', 0))}"
        )
        lt_calls = totals.get("enum.lt_calls_total", 0)
        lt_seconds = totals.get("enum.lt_seconds_total", 0.0)
        line = f"  Lengauer-Tarjan      : {int(lt_calls)} dominator-kernel run(s)"
        if lt_seconds:
            line += f", {lt_seconds:.3f} s"
            if wall:
                line += f" ({lt_seconds / wall:.1%} of wall)"
        lines.append(line)
        work = (
            lt_calls
            + totals.get("enum.candidates_checked_total", 0)
            + totals.get("enum.pick_output_calls_total", 0)
        )
        if work:
            lines.append(
                f"  LT share of work     : {lt_calls / work:.1%} of "
                f"{int(work)} work units (LT + checks + expansions)"
            )
        pruned = counter_by_label(document, "enum.pruned_total", "rule")
        if pruned:
            rules = ", ".join(f"{k}={int(v)}" for k, v in sorted(pruned.items()))
            lines.append(f"  pruned               : {rules}")

    # --- memoization ------------------------------------------------------- #
    store_lookups = totals.get("store.hits_total", 0) + totals.get(
        "store.misses_total", 0
    )
    cache_sides = counter_by_label(document, "context_cache.hits_total", "side")
    insearch_lookups = totals.get("enum.insearch_hits_total", 0) + totals.get(
        "enum.insearch_misses_total", 0
    )
    if store_lookups or cache_sides or insearch_lookups:
        lines.append("")
        lines.append("memoization:")
        if insearch_lookups:
            lines.append(
                "  in-search memo       : "
                + _rate(
                    totals.get("enum.insearch_hits_total", 0),
                    totals.get("enum.insearch_misses_total", 0),
                )
                + f", {int(totals.get('enum.insearch_evictions_total', 0))} eviction(s)"
            )
        if store_lookups:
            lines.append(
                "  result store         : "
                + _rate(totals.get("store.hits_total", 0), totals.get("store.misses_total", 0))
                + f", {int(totals.get('store.puts_total', 0))} put(s)"
                + f", {int(totals.get('store.evictions_total', 0))} LRU eviction(s)"
            )
        misses_by_side = counter_by_label(
            document, "context_cache.misses_total", "side"
        )
        for side in sorted(set(cache_sides) | set(misses_by_side)):
            lines.append(
                f"  context cache ({side:<6s}): "
                + _rate(cache_sides.get(side, 0), misses_by_side.get(side, 0))
            )

    # --- pool -------------------------------------------------------------- #
    if totals.get("pool.chunks_dispatched_total"):
        lines.append("")
        resplits = counter_by_label(document, "pool.chunk_resplits_total", "reason")
        lines.append("worker pool:")
        lines.append(
            f"  chunks dispatched    : {int(totals.get('pool.chunks_dispatched_total', 0))}"
        )
        lines.append(
            f"  graph bodies shipped : {int(totals.get('pool.graphs_shipped_total', 0))}"
            f" (+{int(totals.get('pool.graph_reships_total', 0))} re-ship(s))"
        )
        lines.append(
            f"  deadline expiries    : {int(totals.get('pool.deadline_expiries_total', 0))}"
        )
        lines.append(
            "  chunk re-splits      : "
            + (
                ", ".join(f"{k}={int(v)}" for k, v in sorted(resplits.items()))
                if resplits
                else "0"
            )
        )
        lines.append(
            f"  crash recoveries     : {int(totals.get('pool.crash_recoveries_total', 0))}"
        )

    # --- ISE --------------------------------------------------------------- #
    speedup = gauge_value(document, "ise.application_speedup")
    if speedup is not None:
        lines.append("")
        lines.append("ise:")
        lines.append(
            f"  instructions selected: "
            f"{int(totals.get('ise.instructions_selected_total', 0))}"
        )
        lines.append(f"  application speedup  : {speedup:.2f}x")

    return "\n".join(lines)
