"""Trace sinks: JSONL span logs and Chrome trace-event / Perfetto JSON.

Two on-disk representations of one trace:

* **JSONL** (``*.jsonl``): one JSON object per line — a ``meta`` header line
  (schema tag + run metadata) followed by the raw span/instant records in
  recording order.  Greppable, streamable, and the stable schema that tests
  and CI validate (:func:`validate_trace_records`).
* **Chrome trace-event JSON** (any other extension): the
  ``{"traceEvents": [...]}`` document that https://ui.perfetto.dev and
  ``chrome://tracing`` load directly.  Spans become complete (``"ph": "X"``)
  events; each participating process gets a ``process_name`` metadata event,
  so a batch run renders as one named row per pool worker with the parent's
  dispatch spans above them.

``repro <cmd> --trace FILE`` picks the representation from the extension;
:func:`read_trace_file` re-ingests either (for ``repro metrics --trace``).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from .trace import TRACE_SCHEMA

#: Required keys of one span/instant record and their types.
_RECORD_FIELDS = {
    "type": str,
    "name": str,
    "cat": str,
    "ts": int,
    "dur": int,
    "pid": int,
    "tid": int,
    "args": dict,
}

_RECORD_TYPES = ("span", "instant")


def validate_trace_records(records: List[Dict[str, object]]) -> List[str]:
    """Schema-check *records*; returns human-readable problems (empty = ok)."""
    problems: List[str] = []
    for index, record in enumerate(records):
        if not isinstance(record, dict):
            problems.append(f"record {index}: not an object ({type(record).__name__})")
            continue
        for field, expected in _RECORD_FIELDS.items():
            value = record.get(field)
            if not isinstance(value, expected) or isinstance(value, bool):
                problems.append(
                    f"record {index}: field {field!r} must be "
                    f"{expected.__name__}, got {value!r}"
                )
        kind = record.get("type")
        if isinstance(kind, str) and kind not in _RECORD_TYPES:
            problems.append(f"record {index}: unknown type {kind!r}")
        if not record.get("name"):
            problems.append(f"record {index}: empty name")
        for numeric in ("ts", "dur"):
            value = record.get(numeric)
            if isinstance(value, int) and value < 0:
                problems.append(f"record {index}: {numeric} is negative ({value})")
    return problems


# --------------------------------------------------------------------------- #
# JSONL
# --------------------------------------------------------------------------- #
def write_jsonl(
    path: Union[str, Path],
    records: List[Dict[str, object]],
    meta: Optional[Dict[str, object]] = None,
) -> None:
    """Write the meta header line plus one record per line."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as stream:
        header = {"type": "meta", "schema": TRACE_SCHEMA, "meta": dict(meta or {})}
        stream.write(json.dumps(header, sort_keys=True) + "\n")
        for record in records:
            stream.write(json.dumps(record, sort_keys=True) + "\n")


def read_jsonl(
    path: Union[str, Path]
) -> Tuple[Dict[str, object], List[Dict[str, object]]]:
    """Parse a JSONL trace; returns ``(meta, records)``; schema-checked."""
    lines = Path(path).read_text(encoding="utf-8").splitlines()
    if not lines:
        raise ValueError(f"{path}: empty trace file")
    header = json.loads(lines[0])
    if header.get("type") != "meta" or header.get("schema") != TRACE_SCHEMA:
        raise ValueError(
            f"{path}: first line is not a {TRACE_SCHEMA} meta header: "
            f"{lines[0][:120]}"
        )
    records = [json.loads(line) for line in lines[1:] if line.strip()]
    problems = validate_trace_records(records)
    if problems:
        raise ValueError(f"{path}: invalid trace records: " + "; ".join(problems[:5]))
    return dict(header.get("meta") or {}), records


# --------------------------------------------------------------------------- #
# Chrome trace-event format (Perfetto-loadable)
# --------------------------------------------------------------------------- #
def to_chrome_trace(
    records: List[Dict[str, object]],
    meta: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Convert records into a Chrome trace-event document.

    The earliest-starting process (normally the CLI parent) is labelled
    ``repro main``; every other pid becomes ``repro worker <pid>``, so the
    Perfetto timeline shows dispatch in the parent row and per-worker
    execution below it.
    """
    events: List[Dict[str, object]] = []
    first_ts_by_pid: Dict[int, int] = {}
    for record in records:
        pid = int(record["pid"])
        ts = int(record["ts"])
        if pid not in first_ts_by_pid or ts < first_ts_by_pid[pid]:
            first_ts_by_pid[pid] = ts
    main_pid = min(first_ts_by_pid, key=first_ts_by_pid.get, default=None)
    for pid in sorted(first_ts_by_pid):
        label = "repro main" if pid == main_pid else f"repro worker {pid}"
        events.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": pid,
                "tid": 0,
                "args": {"name": label},
            }
        )
    for record in records:
        if record["type"] == "span":
            events.append(
                {
                    "ph": "X",
                    "name": record["name"],
                    "cat": record["cat"],
                    "ts": record["ts"],
                    "dur": record["dur"],
                    "pid": record["pid"],
                    "tid": record["tid"],
                    "args": record["args"],
                }
            )
        else:  # instant
            events.append(
                {
                    "ph": "i",
                    "s": "t",
                    "name": record["name"],
                    "cat": record["cat"],
                    "ts": record["ts"],
                    "pid": record["pid"],
                    "tid": record["tid"],
                    "args": record["args"],
                }
            )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"schema": TRACE_SCHEMA, **dict(meta or {})},
    }


def write_trace_file(
    path: Union[str, Path],
    records: List[Dict[str, object]],
    meta: Optional[Dict[str, object]] = None,
) -> str:
    """Write *records* to *path*; the extension picks the representation.

    ``.jsonl`` writes the raw JSONL span log; anything else writes the
    Chrome trace-event document.  Returns the format written ("jsonl" or
    "chrome").
    """
    path = Path(path)
    if path.suffix == ".jsonl":
        write_jsonl(path, records, meta)
        return "jsonl"
    document = to_chrome_trace(records, meta)
    path.write_text(json.dumps(document) + "\n", encoding="utf-8")
    return "chrome"


def read_trace_file(
    path: Union[str, Path]
) -> Tuple[Dict[str, object], List[Dict[str, object]]]:
    """Re-ingest a trace written by :func:`write_trace_file` (either format)."""
    path = Path(path)
    if path.suffix == ".jsonl":
        return read_jsonl(path)
    document = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(document, dict) or "traceEvents" not in document:
        raise ValueError(f"{path}: not a Chrome trace-event document")
    records: List[Dict[str, object]] = []
    for event in document["traceEvents"]:
        phase = event.get("ph")
        if phase == "X":
            records.append(
                {
                    "type": "span",
                    "name": event["name"],
                    "cat": event.get("cat", "repro"),
                    "ts": int(event["ts"]),
                    "dur": int(event["dur"]),
                    "pid": int(event["pid"]),
                    "tid": int(event["tid"]),
                    "args": dict(event.get("args") or {}),
                }
            )
        elif phase == "i":
            records.append(
                {
                    "type": "instant",
                    "name": event["name"],
                    "cat": event.get("cat", "repro"),
                    "ts": int(event["ts"]),
                    "dur": 0,
                    "pid": int(event["pid"]),
                    "tid": int(event["tid"]),
                    "args": dict(event.get("args") or {}),
                }
            )
    meta = dict(document.get("otherData") or {})
    meta.pop("schema", None)
    return meta, records
