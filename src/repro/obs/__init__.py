"""Observability: metrics registry, span tracing, exporters, run reports.

See :mod:`repro.obs.runtime` for how instrumented code gets the active
recorders, and the README's "Observability" section for the user-facing
``--trace`` / ``--metrics-json`` workflow.
"""

from . import runtime
from .export import (
    read_jsonl,
    read_trace_file,
    to_chrome_trace,
    validate_trace_records,
    write_jsonl,
    write_trace_file,
)
from .metrics import (
    DEFAULT_TIME_BUCKETS,
    METRICS_SCHEMA,
    METRICS_WIRE_VERSION,
    NULL_METRICS,
    Histogram,
    MetricsRegistry,
    NullMetrics,
    label_key,
)
from .report import (
    aggregate_spans,
    counter_by_label,
    counter_totals,
    find_root_span,
    format_run_report,
    gauge_value,
    load_metrics,
    span_coverage,
)
from .trace import (
    NULL_TRACER,
    TRACE_SCHEMA,
    TRACE_WIRE_VERSION,
    NullTracer,
    Span,
    Tracer,
)

__all__ = [
    "DEFAULT_TIME_BUCKETS",
    "METRICS_SCHEMA",
    "METRICS_WIRE_VERSION",
    "Histogram",
    "MetricsRegistry",
    "NULL_METRICS",
    "NullMetrics",
    "label_key",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "TRACE_SCHEMA",
    "TRACE_WIRE_VERSION",
    "Tracer",
    "read_jsonl",
    "read_trace_file",
    "to_chrome_trace",
    "validate_trace_records",
    "write_jsonl",
    "write_trace_file",
    "aggregate_spans",
    "counter_by_label",
    "counter_totals",
    "find_root_span",
    "format_run_report",
    "gauge_value",
    "load_metrics",
    "span_coverage",
    "runtime",
]
