"""Process-global observability state: the active registry and tracer.

Instrumented code everywhere in the tree (engine, memo store, ISE pipeline,
frontend) asks this module for the current recorder:

    from ..obs import runtime as obs
    obs.metrics().inc("pool.chunks_dispatched_total")
    with obs.tracer().span("batch.run", jobs=2):
        ...

When nothing activated observability — the default — :func:`metrics` and
:func:`tracer` return shared no-op singletons, so the instrumentation costs
one attribute lookup and an empty call: *zero overhead when disabled* in any
sense that matters next to a graph enumeration.

Activation is explicit (:func:`activate` / :func:`deactivate`), done by the
CLI when ``--trace`` or ``--metrics-json`` is passed, by tests, and — inside
pool workers — by :func:`ensure_worker`, driven by the small config tuple the
engine ships inside each chunk payload.  Worker-side recorders are drained
per chunk (:func:`drain_worker`): snapshots are *deltas*, riding back to the
parent inside the chunk result, where the engine merges them.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple, Union

from .metrics import NULL_METRICS, MetricsRegistry, NullMetrics
from .trace import NULL_TRACER, NullTracer, Tracer

#: Version tag of the worker activation config shipped in chunk payloads.
_WORKER_CONFIG_VERSION = 1

_metrics: Optional[MetricsRegistry] = None
_tracer: Optional[Tracer] = None


def enabled() -> bool:
    """``True`` when an observability session is active in this process."""
    return _metrics is not None or _tracer is not None


def metrics() -> Union[MetricsRegistry, NullMetrics]:
    """The active metrics registry, or the shared no-op one."""
    return _metrics if _metrics is not None else NULL_METRICS


def tracer() -> Union[Tracer, NullTracer]:
    """The active tracer, or the shared no-op one."""
    return _tracer if _tracer is not None else NULL_TRACER


def activate(
    metrics_registry: Optional[MetricsRegistry] = None,
    trace_recorder: Optional[Tracer] = None,
) -> Tuple[MetricsRegistry, Tracer]:
    """Install (and return) the process-wide registry and tracer."""
    global _metrics, _tracer
    _metrics = metrics_registry if metrics_registry is not None else MetricsRegistry()
    _tracer = trace_recorder if trace_recorder is not None else Tracer()
    return _metrics, _tracer


def deactivate() -> None:
    """Remove the active recorders (instrumentation reverts to no-ops)."""
    global _metrics, _tracer
    _metrics = None
    _tracer = None


# --------------------------------------------------------------------------- #
# Worker-side lifecycle (driven by the engine's chunk payloads)
# --------------------------------------------------------------------------- #
def worker_config() -> Optional[Tuple[str, int]]:
    """The activation config to ship to pool workers (None when disabled)."""
    if not enabled():
        return None
    return ("obs", _WORKER_CONFIG_VERSION)


def ensure_worker(config: Optional[Tuple[str, int]]) -> None:
    """Apply the parent's activation *config* inside a pool worker.

    Activates a fresh worker-local registry/tracer the first time an
    observability-enabled chunk arrives, and deactivates (dropping any
    stale, never-drained records) when the parent stopped observing —
    workers are long-lived and must follow the parent's current session.
    """
    if config is None:
        if enabled():
            deactivate()
        return
    if not isinstance(config, tuple) or len(config) != 2 or config[0] != "obs":
        raise ValueError(f"not an observability worker config: {config!r}")
    if config[1] != _WORKER_CONFIG_VERSION:
        raise ValueError(
            f"observability config version mismatch: got {config[1]!r}, "
            f"expected {_WORKER_CONFIG_VERSION}"
        )
    if not enabled():
        activate()


def drain_worker() -> Dict[str, tuple]:
    """Snapshot-and-reset this process's recorders for shipping to the parent.

    Returns ``{"metrics": <wire>, "spans": <wire>}`` (either key omitted when
    its recorder holds nothing), or ``{}`` when observability is off.
    """
    payload: Dict[str, tuple] = {}
    if _metrics is not None and len(_metrics):
        payload["metrics"] = _metrics.snapshot_wire(reset=True)
    if _tracer is not None and len(_tracer):
        payload["spans"] = _tracer.wire_records(reset=True)
    return payload


def absorb_worker_payload(payload: Dict[str, object]) -> None:
    """Parent side: fold a worker's drained snapshot into the live recorders."""
    metrics_wire = payload.get("metrics")
    if metrics_wire is not None and _metrics is not None:
        _metrics.merge_wire(metrics_wire)
    spans_wire = payload.get("spans")
    if spans_wire is not None and _tracer is not None:
        _tracer.merge_wire(spans_wire)
