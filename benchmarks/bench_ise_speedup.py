"""TAB-ISE — Speedups obtained when the enumerated cuts become custom instructions.

The conclusion of the paper states that the enumeration, used inside the
authors' compiler toolchain, yields "speedups up to 6x".  This benchmark runs
the full identification pipeline (enumerate → score → select) on the
hand-written kernel workloads under several register-file port budgets and
reports the estimated per-kernel speedups, whose shape should match the
paper's claim: substantial (>1.5x) speedups on computation-dense kernels,
growing with the I/O budget, with the best kernels reaching several times the
baseline performance.
"""

from __future__ import annotations

import pytest

from repro.core import Constraints
from repro.ise import (
    BlockProfile,
    SelectionConfig,
    identify_instruction_set_extension,
)
from repro.workloads import build_kernel

IO_BUDGETS = ((2, 1), (4, 2), (6, 3))


@pytest.mark.parametrize("budget", IO_BUDGETS, ids=[f"{i}in{o}out" for i, o in IO_BUDGETS])
def test_ise_pipeline_runtime(benchmark, budget):
    nin, nout = budget
    blocks = [BlockProfile(build_kernel("crc32_step"), execution_count=1000)]
    constraints = Constraints(max_inputs=nin, max_outputs=nout)
    result = benchmark(
        lambda: identify_instruction_set_extension(
            blocks, constraints, selection=SelectionConfig(max_instructions=2)
        )
    )
    assert result.application_speedup >= 1.0


def test_ise_speedup_table(bench_harness):
    """The per-kernel speedup table — every kernel x every I/O budget, every
    kernel benefiting at some budget, several substantially (``gate_min`` on
    ``best_speedup`` and ``kernels_gaining``) — lives in
    ``repro.perf.suites.paper`` (benchmark name ``ise_speedup``); the
    pipeline micro timing above remains a pytest-benchmark test.
    """
    bench_harness("ise_speedup")
