"""TAB-ISE — Speedups obtained when the enumerated cuts become custom instructions.

The conclusion of the paper states that the enumeration, used inside the
authors' compiler toolchain, yields "speedups up to 6x".  This benchmark runs
the full identification pipeline (enumerate → score → select) on the
hand-written kernel workloads under several register-file port budgets and
reports the estimated per-kernel speedups, whose shape should match the
paper's claim: substantial (>1.5x) speedups on computation-dense kernels,
growing with the I/O budget, with the best kernels reaching several times the
baseline performance.
"""

from __future__ import annotations

import pytest

from repro.core import Constraints
from repro.ise import (
    BlockProfile,
    SelectionConfig,
    identify_instruction_set_extension,
)
from repro.workloads import build_kernel, kernel_names

IO_BUDGETS = ((2, 1), (4, 2), (6, 3))

#: Kernels used for the speedup table (all of them — they are small).
KERNELS = tuple(kernel_names())


@pytest.mark.parametrize("budget", IO_BUDGETS, ids=[f"{i}in{o}out" for i, o in IO_BUDGETS])
def test_ise_pipeline_runtime(benchmark, budget):
    nin, nout = budget
    blocks = [BlockProfile(build_kernel("crc32_step"), execution_count=1000)]
    constraints = Constraints(max_inputs=nin, max_outputs=nout)
    result = benchmark(
        lambda: identify_instruction_set_extension(
            blocks, constraints, selection=SelectionConfig(max_instructions=2)
        )
    )
    assert result.application_speedup >= 1.0


def test_ise_speedup_table(capsys):
    rows = []
    best = {}
    for name in KERNELS:
        row = {"kernel": name}
        for nin, nout in IO_BUDGETS:
            constraints = Constraints(max_inputs=nin, max_outputs=nout)
            result = identify_instruction_set_extension(
                [BlockProfile(build_kernel(name), execution_count=1000)],
                constraints,
                selection=SelectionConfig(max_instructions=2),
            )
            label = f"{nin}in/{nout}out"
            row[label] = round(result.application_speedup, 2)
            best[name] = max(best.get(name, 1.0), result.application_speedup)
        rows.append(row)

    from repro.analysis import format_table

    with capsys.disabled():
        print()
        print("=" * 72)
        print("TAB-ISE: per-kernel speedup from the identified custom instructions")
        print("=" * 72)
        print(format_table(rows))
        print(f"best speedup over all kernels/budgets: {max(best.values()):.2f}x "
              "(paper: 'speedups up to 6x' on full applications)")

    speedups = list(best.values())
    # Every kernel benefits at some budget, several benefit substantially.
    assert all(s >= 1.0 for s in speedups)
    assert sum(1 for s in speedups if s >= 1.5) >= 3
    # Note: speedup is not strictly monotone in the port budget — the greedy
    # selection may trade two small instructions for one large one whose extra
    # operand transfers eat part of the gain — so no monotonicity is asserted.
