"""BENCH-INSEARCH — In-search memoization: repetition speedup, control overhead.

Runs the batch engine memo-on and memo-off (interleaved rounds) over two
corpora: a repetition-heavy suite of tiled idiom blocks, where the in-search
memo must deliver at least a 1.3x speedup (``gate_min`` on
``repetition_speedup``), and a non-repetitive control of distinct random
blocks, where its overhead must stay under 5% (``gate_max`` on
``control_overhead``).  Both corpora assert bit-identical cut sets between
the on and off runs before any timing is recorded.

The measurement body and gates live in the unified harness
(``repro.perf.suites.insearch``, benchmark name ``insearch``); this script
is the pytest entry point.  Refresh the committed baseline with
``repro bench run insearch --write-records``.
"""

from __future__ import annotations


def test_insearch_speedup_and_overhead(bench_harness):
    bench_harness("insearch")
