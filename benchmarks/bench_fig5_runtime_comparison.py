"""FIG5 — Run-time comparison of the polynomial algorithm against the [15] baseline.

Reproduces Figure 5 of the paper: for every basic block of a MiBench-like
suite (plus the tree-shaped graphs), measure the run time of the polynomial
enumeration (X axis) and of the pruned exhaustive search (Y axis) under the
Nin=4 / Nout=2 constraint, and report the scatter.  The paper's claim is that
the polynomial algorithm is "in general better" and never explodes; the
benchmark additionally records machine-independent work counters so the shape
can be compared across platforms.

Run with ``pytest benchmarks/bench_fig5_runtime_comparison.py --benchmark-only``;
the full scatter report is printed at the end of the session.
"""

from __future__ import annotations

import pytest

from repro.baselines import enumerate_cuts_exhaustive
from repro.core import Constraints, enumerate_cuts
from repro.workloads import SuiteConfig, build_suite, size_cluster



def _suite(scale: str):
    if scale == "full":
        config = SuiteConfig(num_blocks=40, min_operations=10, max_operations=60,
                             include_kernels=True, tree_depths=(4, 5))
    else:
        # The hand-written kernels are excluded at the default scale because
        # their unrolled (x3) variants reach ~60 operations, which pushes a
        # single polynomial enumeration into the tens of seconds in pure
        # Python; `--bench-scale=full` includes them.
        config = SuiteConfig(num_blocks=10, min_operations=8, max_operations=24,
                             include_kernels=False, include_trees=True, tree_depths=(3,))
    return build_suite(config)


#: The microarchitectural constraint used throughout the paper's evaluation.
PAPER_CONSTRAINTS = Constraints(max_inputs=4, max_outputs=2)

@pytest.fixture(scope="module")
def fig5_suite(bench_scale):
    return _suite(bench_scale)


@pytest.fixture(scope="module")
def representative_blocks(fig5_suite):
    """One small, one medium and one tree block timed individually.

    The smallest member of each cluster is used so that the per-point timing
    loops of pytest-benchmark stay in the seconds range; the full-suite
    scatter (``test_fig5_full_scatter``) covers the larger blocks once each.
    """
    by_cluster = {}
    for graph in fig5_suite:
        cluster = size_cluster(graph)
        current = by_cluster.get(cluster)
        if current is None or len(graph.operation_nodes()) < len(current.operation_nodes()):
            by_cluster[cluster] = graph
    return by_cluster


# --------------------------------------------------------------------------- #
# Individual timed points (pytest-benchmark)
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("cluster", ["small", "medium", "tree"])
def test_fig5_polynomial_algorithm(benchmark, representative_blocks, cluster):
    graph = representative_blocks.get(cluster)
    if graph is None:
        pytest.skip(f"no block in cluster {cluster!r} at this scale")
    result = benchmark(lambda: enumerate_cuts(graph, PAPER_CONSTRAINTS))
    assert len(result) > 0


@pytest.mark.parametrize("cluster", ["small", "medium", "tree"])
def test_fig5_exhaustive_baseline(benchmark, representative_blocks, cluster):
    graph = representative_blocks.get(cluster)
    if graph is None:
        pytest.skip(f"no block in cluster {cluster!r} at this scale")
    result = benchmark(lambda: enumerate_cuts_exhaustive(graph, PAPER_CONSTRAINTS))
    assert len(result) > 0


# --------------------------------------------------------------------------- #
# Full scatter (one pass over the whole suite, via the unified harness)
# --------------------------------------------------------------------------- #
def test_fig5_full_scatter(bench_harness):
    """The full-suite scatter — polynomial vs pruned exhaustive per block,
    with the polynomial cut counts asserted never to exceed the baseline's —
    lives in ``repro.perf.suites.paper`` (benchmark name
    ``fig5_runtime_comparison``); the representative-block micro timings
    above remain pytest-benchmark tests.
    """
    bench_harness("fig5_runtime_comparison")
