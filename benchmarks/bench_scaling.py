"""TAB-COMPLEXITY — Polynomial growth in graph size and I/O budget.

Section 5 derives the O(n^(Nin+Nout+1)) bound and Section 6 argues that the
search space "is no longer exponential in the size of the graph".  This
benchmark measures how run time, dominator computations and the number of
valid cuts grow (a) with the number of operations at the paper's Nin=4/Nout=2
constraint and (b) with the I/O budget at a fixed graph size, and fits the
empirical growth exponent, which should stay far below exponential behaviour.
"""

from __future__ import annotations

import pytest

from repro.core import Constraints, enumerate_cuts
from repro.workloads import SyntheticBlockSpec, generate_basic_block


#: The microarchitectural constraint used throughout the paper's evaluation.
PAPER_CONSTRAINTS = Constraints(max_inputs=4, max_outputs=2)

SMALL_SIZES = (8, 12, 16, 24)

IO_BUDGETS = ((2, 1), (3, 1), (3, 2), (4, 2))


def _graph_of_size(size: int, seed: int = 11):
    spec = SyntheticBlockSpec(
        num_operations=size,
        num_external_inputs=max(2, size // 6),
        memory_fraction=0.15,
        seed=seed,
        name=f"scaling_n{size}",
    )
    return generate_basic_block(spec)


@pytest.mark.parametrize("size", SMALL_SIZES)
def test_scaling_with_block_size(benchmark, size):
    graph = _graph_of_size(size)
    result = benchmark(lambda: enumerate_cuts(graph, PAPER_CONSTRAINTS))
    assert len(result) > 0


@pytest.mark.parametrize("budget", IO_BUDGETS, ids=[f"{i}in{o}out" for i, o in IO_BUDGETS])
def test_scaling_with_io_budget(benchmark, budget):
    nin, nout = budget
    graph = _graph_of_size(14)
    constraints = Constraints(max_inputs=nin, max_outputs=nout)
    result = benchmark(lambda: enumerate_cuts(graph, constraints))
    assert len(result) > 0


def test_scaling_growth_and_io_budget(bench_harness):
    """Empirical growth-exponent fits on the machine-independent work
    counters (``gate_max`` on ``empirical_exponent`` and ``cut_exponent``,
    kept far below the paper's n^7 bound) plus I/O-budget monotonicity —
    the measurement body lives in ``repro.perf.suites.paper`` (benchmark
    name ``scaling``); the micro timings above remain pytest-benchmark
    tests.
    """
    bench_harness("scaling")
