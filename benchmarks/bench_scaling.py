"""TAB-COMPLEXITY — Polynomial growth in graph size and I/O budget.

Section 5 derives the O(n^(Nin+Nout+1)) bound and Section 6 argues that the
search space "is no longer exponential in the size of the graph".  This
benchmark measures how run time, dominator computations and the number of
valid cuts grow (a) with the number of operations at the paper's Nin=4/Nout=2
constraint and (b) with the I/O budget at a fixed graph size, and fits the
empirical growth exponent, which should stay far below exponential behaviour.
"""

from __future__ import annotations

import math

import pytest

from repro.core import Constraints, enumerate_cuts
from repro.workloads import SyntheticBlockSpec, generate_basic_block


#: The microarchitectural constraint used throughout the paper's evaluation.
PAPER_CONSTRAINTS = Constraints(max_inputs=4, max_outputs=2)

SMALL_SIZES = (8, 12, 16, 24)
FULL_SIZES = (10, 20, 30, 45, 60)

IO_BUDGETS = ((2, 1), (3, 1), (3, 2), (4, 2))


def _graph_of_size(size: int, seed: int = 11):
    spec = SyntheticBlockSpec(
        num_operations=size,
        num_external_inputs=max(2, size // 6),
        memory_fraction=0.15,
        seed=seed,
        name=f"scaling_n{size}",
    )
    return generate_basic_block(spec)


@pytest.mark.parametrize("size", SMALL_SIZES)
def test_scaling_with_block_size(benchmark, size):
    graph = _graph_of_size(size)
    result = benchmark(lambda: enumerate_cuts(graph, PAPER_CONSTRAINTS))
    assert len(result) > 0


@pytest.mark.parametrize("budget", IO_BUDGETS, ids=[f"{i}in{o}out" for i, o in IO_BUDGETS])
def test_scaling_with_io_budget(benchmark, budget):
    nin, nout = budget
    graph = _graph_of_size(14)
    constraints = Constraints(max_inputs=nin, max_outputs=nout)
    result = benchmark(lambda: enumerate_cuts(graph, constraints))
    assert len(result) > 0


def test_scaling_growth_table(bench_scale, capsys):
    sizes = FULL_SIZES if bench_scale == "full" else SMALL_SIZES
    rows = []
    for size in sizes:
        graph = _graph_of_size(size)
        result = enumerate_cuts(graph, PAPER_CONSTRAINTS)
        rows.append(
            {
                "operations": size,
                "cuts": len(result),
                "lt_calls": result.stats.lt_calls,
                "seconds": result.stats.elapsed_seconds,
            }
        )

    # Empirical growth exponent of the work counter between the smallest and
    # the largest block: work ~ n^k  =>  k = log(ratio_work) / log(ratio_n).
    first, last = rows[0], rows[-1]
    exponent = math.log(max(last["lt_calls"], 1) / max(first["lt_calls"], 1)) / math.log(
        last["operations"] / first["operations"]
    )
    for row in rows:
        row["empirical_exponent"] = round(exponent, 2)

    from repro.analysis import format_table

    with capsys.disabled():
        print()
        print("=" * 72)
        print("TAB-COMPLEXITY: growth of the polynomial enumeration with block size")
        print("=" * 72)
        print(format_table(rows))
        print(
            f"empirical growth exponent of dominator computations: n^{exponent:.2f} "
            f"(paper bound: n^(Nin+Nout+1) = n^7 with Nin=4, Nout=2)"
        )

    # Polynomial, and comfortably below the worst-case bound on these inputs.
    assert exponent < 7.0
    # The cut count itself is polynomial in n as well (the paper's key point).
    cut_exponent = math.log(max(last["cuts"], 1) / max(first["cuts"], 1)) / math.log(
        last["operations"] / first["operations"]
    )
    assert cut_exponent < 6.0


def test_io_budget_growth_table(capsys):
    graph = _graph_of_size(14)
    rows = []
    for nin, nout in IO_BUDGETS:
        constraints = Constraints(max_inputs=nin, max_outputs=nout)
        result = enumerate_cuts(graph, constraints)
        rows.append(
            {
                "Nin": nin,
                "Nout": nout,
                "cuts": len(result),
                "lt_calls": result.stats.lt_calls,
                "seconds": result.stats.elapsed_seconds,
            }
        )
    from repro.analysis import format_table

    with capsys.disabled():
        print()
        print("=" * 72)
        print("TAB-COMPLEXITY (b): growth with the I/O budget at a fixed block size")
        print("=" * 72)
        print(format_table(rows))

    cuts = [row["cuts"] for row in rows]
    assert cuts == sorted(cuts), "a larger I/O budget can only add cuts"
