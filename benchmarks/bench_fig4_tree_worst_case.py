"""FIG4 — Tree-shaped worst case for the exhaustive search.

The paper's Figure 4 introduces tree-shaped DFGs (depth 4–7) as the worst case
for the search-space-exploration algorithms [4][15]: on them the exhaustive
search degenerates towards its exponential bound (O(1.6^n) for [4]) while the
polynomial algorithm keeps its O(n^(Nin+Nout+1)) behaviour.

Wall-clock times in pure Python mix algorithmic behaviour with very different
constant factors, so this benchmark also records the machine-independent work
counters — explored search-tree nodes for the exhaustive algorithm, dominator
computations plus candidate checks for the polynomial one — and checks how
they grow from one tree depth to the next.
"""

from __future__ import annotations

import pytest

from repro.baselines import enumerate_cuts_exhaustive
from repro.core import Constraints, enumerate_cuts
from repro.workloads import tree_dfg


#: The microarchitectural constraint used throughout the paper's evaluation.
PAPER_CONSTRAINTS = Constraints(max_inputs=4, max_outputs=2)

SMALL_DEPTHS = (2, 3, 4)
FULL_DEPTHS = (2, 3, 4, 5)


def _depths(scale: str):
    return FULL_DEPTHS if scale == "full" else SMALL_DEPTHS


@pytest.mark.parametrize("depth", SMALL_DEPTHS)
def test_fig4_polynomial_on_tree(benchmark, depth):
    graph = tree_dfg(depth)
    result = benchmark(lambda: enumerate_cuts(graph, PAPER_CONSTRAINTS))
    assert len(result) > 0


@pytest.mark.parametrize("depth", SMALL_DEPTHS)
def test_fig4_exhaustive_on_tree(benchmark, depth):
    graph = tree_dfg(depth)
    result = benchmark(lambda: enumerate_cuts_exhaustive(graph, PAPER_CONSTRAINTS))
    assert len(result) > 0


def test_fig4_growth_table(bench_scale, capsys):
    """Work-counter growth across tree depths (the shape the figure demonstrates)."""
    rows = []
    previous = None
    for depth in _depths(bench_scale):
        graph = tree_dfg(depth)
        poly = enumerate_cuts(graph, PAPER_CONSTRAINTS)
        exhaustive = enumerate_cuts_exhaustive(graph, PAPER_CONSTRAINTS)
        poly_work = poly.stats.lt_calls + poly.stats.candidates_checked
        exhaustive_work = exhaustive.stats.pick_output_calls
        row = {
            "depth": depth,
            "nodes": graph.num_nodes,
            "cuts": len(exhaustive),
            "poly_work": poly_work,
            "poly_seconds": poly.stats.elapsed_seconds,
            "exhaustive_search_nodes": exhaustive_work,
            "exhaustive_seconds": exhaustive.stats.elapsed_seconds,
        }
        if previous is not None:
            row["poly_work_growth"] = round(poly_work / previous["poly_work"], 2)
            row["exhaustive_growth"] = round(
                exhaustive_work / previous["exhaustive_search_nodes"], 2
            )
        rows.append(row)
        previous = row
        # Both algorithms must agree on the tree (completeness sanity check).
        assert poly.node_sets() == exhaustive.node_sets()

    from repro.analysis import format_table

    with capsys.disabled():
        print()
        print("=" * 72)
        print("FIG4: growth on tree-shaped worst-case DFGs (Nin=4, Nout=2)")
        print("=" * 72)
        print(format_table(rows, columns=list(rows[-1].keys())))
