"""FIG4 — Tree-shaped worst case for the exhaustive search.

The paper's Figure 4 introduces tree-shaped DFGs (depth 4–7) as the worst case
for the search-space-exploration algorithms [4][15]: on them the exhaustive
search degenerates towards its exponential bound (O(1.6^n) for [4]) while the
polynomial algorithm keeps its O(n^(Nin+Nout+1)) behaviour.

Wall-clock times in pure Python mix algorithmic behaviour with very different
constant factors, so this benchmark also records the machine-independent work
counters — explored search-tree nodes for the exhaustive algorithm, dominator
computations plus candidate checks for the polynomial one — and checks how
they grow from one tree depth to the next.
"""

from __future__ import annotations

import pytest

from repro.baselines import enumerate_cuts_exhaustive
from repro.core import Constraints, enumerate_cuts
from repro.workloads import tree_dfg


#: The microarchitectural constraint used throughout the paper's evaluation.
PAPER_CONSTRAINTS = Constraints(max_inputs=4, max_outputs=2)

SMALL_DEPTHS = (2, 3, 4)


@pytest.mark.parametrize("depth", SMALL_DEPTHS)
def test_fig4_polynomial_on_tree(benchmark, depth):
    graph = tree_dfg(depth)
    result = benchmark(lambda: enumerate_cuts(graph, PAPER_CONSTRAINTS))
    assert len(result) > 0


@pytest.mark.parametrize("depth", SMALL_DEPTHS)
def test_fig4_exhaustive_on_tree(benchmark, depth):
    graph = tree_dfg(depth)
    result = benchmark(lambda: enumerate_cuts_exhaustive(graph, PAPER_CONSTRAINTS))
    assert len(result) > 0


def test_fig4_growth_table(bench_harness):
    """Work-counter growth across tree depths (the shape the figure
    demonstrates).  The measurement body — per-depth poly vs exhaustive
    enumeration with cut-set agreement asserted, growth ratios taken from
    the machine-independent work counters — lives in
    ``repro.perf.suites.paper`` (benchmark name ``fig4_tree_worst_case``).
    """
    bench_harness("fig4_tree_worst_case")
