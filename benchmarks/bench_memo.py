"""BENCH-MEMO — Canonical-form memoization: hit rate and warm-run speedup.

Real applications repeat themselves: unrolled loop bodies, inlined helpers
and recurring idioms produce many structurally identical basic blocks.  This
benchmark drives a suite full of duplicated *and permuted* blocks through the
engine three ways:

* **uncached** — the baseline sequential run;
* **cold cache** — first run against an empty :class:`repro.memo.ResultStore`
  (pays canonicalization + write-back on top of enumeration);
* **warm cache** — second run against the populated store (every block is a
  lookup + mask remap);

plus an **isomorphism-dedup** run (one enumeration per class, masks remapped
onto every member).  It asserts that every path produces cut sets
bit-identical to the uncached run, records hit rate and speedups to
``BENCH_memo.json``, and asserts the ISSUE's >= 2x warm-run bar.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

from repro.core import Constraints
from repro.engine import BatchRunner
from repro.memo import ResultStore, enumerate_deduplicated, permute_graph
from repro.workloads.kernels import build_kernel
from repro.workloads.synthetic import SyntheticBlockSpec, generate_basic_block

RESULT_PATH = Path(__file__).resolve().parent / "BENCH_memo.json"

#: The paper's experimental constraints.
CONSTRAINTS = Constraints(max_inputs=4, max_outputs=2)


def _duplicated_suite(scale: str):
    """Blocks with duplicated and permuted copies, like unrolled real code."""
    num_bases = 4 if scale == "small" else 8
    operations = 18 if scale == "small" else 28
    copies = 3 if scale == "small" else 4

    bases = [build_kernel("crc32_step"), build_kernel("bitcount")]
    bases += [
        generate_basic_block(
            SyntheticBlockSpec(num_operations=operations, seed=seed)
        )
        for seed in range(num_bases - len(bases))
    ]

    blocks = []
    for base in bases:
        blocks.append(base)
        for copy in range(copies):
            # Deterministic relabeling derived from the copy index (rotate by
            # copy+1), so the suite is reproducible run to run.
            shift = copy + 1
            permutation = [
                (v + shift) % base.num_nodes for v in range(base.num_nodes)
            ]
            blocks.append(
                permute_graph(base, permutation, name=f"{base.name}_copy{copy}")
            )
    return blocks, len(bases)


def _cut_sets(report):
    return [item.result.node_sets() for item in report.items]


def test_memo_hit_rate_and_warm_speedup(bench_scale, tmp_path, capsys):
    blocks, num_classes = _duplicated_suite(bench_scale)
    cache_dir = tmp_path / "memo-cache"

    # --- uncached baseline ------------------------------------------------ #
    start = time.perf_counter()
    uncached = BatchRunner(constraints=CONSTRAINTS).run(blocks)
    uncached_seconds = time.perf_counter() - start
    assert all(item.ok for item in uncached.items)
    reference = _cut_sets(uncached)

    # --- cold run (empty store) ------------------------------------------- #
    cold_store = ResultStore(cache_dir)
    start = time.perf_counter()
    cold = BatchRunner(constraints=CONSTRAINTS, store=cold_store).run(blocks)
    cold_seconds = time.perf_counter() - start
    assert _cut_sets(cold) == reference

    # --- warm run (populated store) --------------------------------------- #
    warm_store = ResultStore(cache_dir)
    start = time.perf_counter()
    warm = BatchRunner(constraints=CONSTRAINTS, store=warm_store).run(blocks)
    warm_seconds = time.perf_counter() - start
    assert _cut_sets(warm) == reference
    assert all(item.cached for item in warm.items)
    assert warm_store.stats.hit_rate == 1.0

    # --- isomorphism dedup (no store) ------------------------------------- #
    start = time.perf_counter()
    dedup = enumerate_deduplicated(blocks, constraints=CONSTRAINTS)
    dedup_seconds = time.perf_counter() - start
    assert [item.result.node_sets() for item in dedup.items] == reference
    assert dedup.num_classes == num_classes

    warm_speedup = uncached_seconds / max(warm_seconds, 1e-9)
    dedup_speedup = uncached_seconds / max(dedup_seconds, 1e-9)
    # The ISSUE's acceptance bar: a warm cache must beat recomputation 2x+.
    assert warm_speedup >= 2.0, (
        f"warm cache run only {warm_speedup:.2f}x faster than uncached "
        f"({warm_seconds:.3f}s vs {uncached_seconds:.3f}s)"
    )

    record = {
        "benchmark": "memo_store_and_dedup",
        "scale": bench_scale,
        "blocks": len(blocks),
        "isomorphism_classes": num_classes,
        "total_cuts": uncached.total_cuts(),
        "constraints": {"max_inputs": 4, "max_outputs": 2},
        "uncached_seconds": round(uncached_seconds, 4),
        # The cold cached run already dedups within the batch (one search
        # per isomorphism class), so it typically beats the uncached run too.
        "cold_cache_seconds": round(cold_seconds, 4),
        "cold_speedup": round(uncached_seconds / max(cold_seconds, 1e-9), 3),
        "warm_cache_seconds": round(warm_seconds, 4),
        "dedup_seconds": round(dedup_seconds, 4),
        "warm_speedup": round(warm_speedup, 3),
        "dedup_speedup": round(dedup_speedup, 3),
        "warm_hit_rate": warm_store.stats.hit_rate,
        "dedup_saved_runs": dedup.saved_runs,
        "bit_identical": True,
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python": platform.python_version(),
    }
    RESULT_PATH.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")

    with capsys.disabled():
        print()
        print("=" * 72)
        print("BENCH-MEMO: canonical-form memoization")
        print("=" * 72)
        print(
            f"{len(blocks)} blocks in {num_classes} isomorphism classes, "
            f"{record['total_cuts']} cuts"
        )
        print(
            f"uncached {uncached_seconds:.3f}s | cold cache {cold_seconds:.3f}s | "
            f"warm cache {warm_seconds:.3f}s ({warm_speedup:.1f}x) | "
            f"dedup {dedup_seconds:.3f}s ({dedup_speedup:.1f}x)"
        )
        print(f"record written to {RESULT_PATH.name}")
