"""BENCH-MEMO — Canonical-form memoization: hit rate and warm-run speedup.

Drives a suite full of duplicated *and permuted* blocks through the engine
uncached, cold-cache, warm-cache and isomorphism-dedup; every path must
produce cut sets bit-identical to the uncached run (asserted).  The warm run
must observe a 100% hit rate (``gate_min`` on ``warm_hit_rate``) and beat
the uncached run by at least 2x (``gate_min`` on ``warm_speedup`` — the
ROADMAP bar).

The measurement body and gates live in the unified harness
(``repro.perf.suites.engine``, benchmark name ``memo``); this script is the
pytest entry point.  Refresh the committed baseline with
``repro bench run memo --write-records``.
"""

from __future__ import annotations


def test_memo_hit_rate_and_warm_speedup(bench_harness):
    bench_harness("memo")
