"""BENCH-FRONTEND — Compiler frontend: corpus size, DFG throughput, ISE wall time.

Records, for the bundled reference corpus: corpus shape (a shrinking corpus
or a translation regression shows up in the artifact diff), bytecode→DFG
translation throughput, profiling overhead, and the end-to-end
``corpus → enumerate → score → select`` pipeline wall time.  The resulting
application speedup must stay above 1.0 and the pipeline must keep selecting
instructions (``gate_min`` on ``ise_application_speedup`` and
``ise_selected_instructions``).

The measurement body and gates live in the unified harness
(``repro.perf.suites.frontend``, benchmark name ``frontend``); this script
is the pytest entry point.  Refresh the committed baseline with
``repro bench run frontend --write-records``.
"""

from __future__ import annotations


def test_frontend_corpus_throughput_and_ise(bench_harness):
    bench_harness("frontend")
