"""BENCH-FRONTEND — Compiler frontend: corpus size, DFG build throughput, ISE wall time.

The frontend turns plain Python functions into enumerable basic blocks:
bytecode decode → CFG recovery → abstract-stack DFG translation → line-event
profiling.  This benchmark records, for the bundled reference corpus:

* **corpus shape** — kernels, basic blocks with operations, total operation
  vertices (so a shrinking corpus or a translation regression is visible in
  the artifact diff);
* **DFG build throughput** — repeated bytecode→DFG translations per second
  and operation vertices emitted per second (the frontend must stay far
  cheaper than the enumeration it feeds);
* **profiling overhead** — translate-only vs. translate+profile wall time;
* **end-to-end ISE wall time** — the full `corpus → enumerate → score →
  select` pipeline, plus the resulting application speedup (asserted > 1.0:
  the corpus must keep yielding profitable custom instructions).

Results land in ``BENCH_frontend.json``.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

from repro.core import Constraints
from repro.frontend import (
    CORPUS,
    build_corpus_suite,
    corpus_block_profiles,
    corpus_names,
    function_to_dfgs,
)
from repro.ise.pipeline import identify_instruction_set_extension

RESULT_PATH = Path(__file__).resolve().parent / "BENCH_frontend.json"

#: The paper's experimental constraints.
CONSTRAINTS = Constraints(max_inputs=4, max_outputs=2)


def test_frontend_corpus_throughput_and_ise(bench_scale):
    names = corpus_names()
    build_rounds = 5 if bench_scale == "small" else 25

    # --- corpus shape ------------------------------------------------------ #
    start = time.perf_counter()
    suite = build_corpus_suite(profile=True)
    profiled_build_seconds = time.perf_counter() - start
    total_ops = sum(len(g.operation_nodes()) for g in suite)
    assert len(suite) >= 10

    # --- DFG build throughput (translate-only, repeated) ------------------- #
    start = time.perf_counter()
    translations = 0
    ops_emitted = 0
    for _ in range(build_rounds):
        for name in names:
            dfgs = function_to_dfgs(CORPUS[name].fn)
            translations += len(dfgs.blocks)
            ops_emitted += sum(e.num_operations for e in dfgs.blocks)
    translate_seconds = time.perf_counter() - start
    blocks_per_second = translations / max(translate_seconds, 1e-9)
    ops_per_second = ops_emitted / max(translate_seconds, 1e-9)

    # --- end-to-end ISE over the profiled corpus --------------------------- #
    blocks = corpus_block_profiles(profile=True)
    start = time.perf_counter()
    result = identify_instruction_set_extension(
        blocks, CONSTRAINTS, application_name="frontend-corpus"
    )
    ise_seconds = time.perf_counter() - start
    selected = sum(len(block.selected) for block in result.blocks)
    assert selected >= 1, "the corpus must yield at least one custom instruction"
    assert result.application_speedup > 1.0

    record = {
        "benchmark": "frontend",
        "scale": bench_scale,
        "corpus_kernels": len(names),
        "corpus_blocks": len(suite),
        "corpus_operations": total_ops,
        "profiled_build_seconds": round(profiled_build_seconds, 4),
        "translate_rounds": build_rounds,
        "dfg_blocks_per_second": round(blocks_per_second, 1),
        "dfg_ops_per_second": round(ops_per_second, 1),
        "ise_blocks": len(blocks),
        "ise_seconds": round(ise_seconds, 4),
        "ise_selected_instructions": selected,
        "ise_application_speedup": round(result.application_speedup, 3),
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python": platform.python_version(),
    }
    RESULT_PATH.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
