"""BENCH-OBS — Observability overhead: enabled vs disabled instrumentation.

The observability layer (``repro.obs``) promises to be free when off — every
instrumentation site calls through no-op stubs — and near-free when on: the
metrics registry is dict increments and the tracer appends plain dicts, both
far cheaper than the enumeration work they wrap.  This benchmark prices that
promise on the frontend corpus:

* **disabled** — the default state; this is the number every other benchmark
  in this directory measures, so it doubles as a regression sentinel for the
  instrumentation hooks themselves;
* **enabled (sequential)** — a live registry + tracer during a ``jobs=1``
  run must cost **< 3%** over disabled.  Enforced as a hard gate here and
  re-checked from ``BENCH_obs.json`` in CI;
* **enabled (forced pool)** — the worker-side spans and the snapshot ship
  back across the chunk wire; recorded for the trend, not gated (the pool's
  own dispatch overhead dominates and is gated in BENCH-BATCH).

The enabled run's span log is also checked for schema validity and for the
run report's headline guarantee: named spans must account for ≥ 95% of the
batch root span.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

from repro.core import Constraints
from repro.engine import BatchRunner
from repro.frontend import build_corpus_suite
from repro.obs import runtime as obs_runtime, span_coverage, validate_trace_records

RESULT_PATH = Path(__file__).resolve().parent / "BENCH_obs.json"

#: The paper's experimental constraints.
CONSTRAINTS = Constraints(max_inputs=4, max_outputs=2)

#: The instrumentation-overhead gate: a live registry + tracer may cost at
#: most this fraction over the uninstrumented sequential run.
MAX_OBS_OVERHEAD = 0.03

#: Timed repetitions; the minimum is reported, as usual for micro-benchmarks.
#: Higher than the other benches: the gate is a 3% delta between two ~0.15s
#: runs, so the minima need more samples to converge under machine jitter.
REPEATS = 7


def _interleaved_best(runner: BatchRunner, graphs, repeats: int = REPEATS):
    """Minimum wall-clock of disabled and enabled runs, interleaved.

    One un-timed warm-up run first (context caches, worker-resident state),
    then each repetition times a disabled run followed by an enabled run with
    fresh recorders — interleaving cancels machine drift that would otherwise
    bias whichever configuration happens to run last.  Returns
    ``(disabled_seconds, enabled_seconds, trace_records)`` with the records
    of the fastest enabled repeat.
    """
    runner.run(graphs)
    disabled = enabled = float("inf")
    best_records = []
    for _ in range(repeats):
        start = time.perf_counter()
        runner.run(graphs)
        disabled = min(disabled, time.perf_counter() - start)

        _registry, recorder = obs_runtime.activate()
        start = time.perf_counter()
        runner.run(graphs)
        elapsed = time.perf_counter() - start
        records = recorder.records
        obs_runtime.deactivate()
        if elapsed < enabled:
            enabled, best_records = elapsed, records
    return disabled, enabled, best_records


def test_observability_overhead(bench_scale, capsys):
    corpus = list(build_corpus_suite())
    obs_runtime.deactivate()

    # --- sequential: disabled vs enabled (the <3% gate) ------------------- #
    with BatchRunner(constraints=CONSTRAINTS, jobs=1) as runner:
        disabled_seconds, enabled_seconds, records = _interleaved_best(
            runner, corpus
        )
    overhead = enabled_seconds / max(disabled_seconds, 1e-9) - 1.0
    assert overhead < MAX_OBS_OVERHEAD, (
        f"observability overhead {overhead:.1%} exceeds the "
        f"{MAX_OBS_OVERHEAD:.0%} gate (disabled {disabled_seconds:.4f}s, "
        f"enabled {enabled_seconds:.4f}s)"
    )

    # --- the enabled run's telemetry is well-formed and accounts for the - #
    # --- run: schema-valid spans covering >= 95% of the batch root ------- #
    assert validate_trace_records(records) == []
    coverage = span_coverage(records)
    assert coverage is not None
    assert coverage["coverage"] >= 0.95, (
        f"named spans cover only {coverage['coverage']:.1%} of the "
        f"{coverage['root']} root span"
    )

    # --- forced pool: worker snapshots across the wire (recorded only) --- #
    with BatchRunner(constraints=CONSTRAINTS, jobs=1, force_pool=True) as runner:
        runner.warm_pool()
        pool_disabled_seconds, pool_enabled_seconds, pool_records = (
            _interleaved_best(runner, corpus)
        )
    pool_overhead = pool_enabled_seconds / max(pool_disabled_seconds, 1e-9) - 1.0
    assert validate_trace_records(pool_records) == []
    worker_spans = sum(1 for r in pool_records if r["name"] == "worker.block")
    assert worker_spans == len(corpus)

    # --- record ----------------------------------------------------------- #
    record = {
        "benchmark": "observability_overhead",
        "scale": bench_scale,
        "corpus_blocks": len(corpus),
        "constraints": {"max_inputs": 4, "max_outputs": 2},
        "repeats": REPEATS,
        "disabled_seconds": round(disabled_seconds, 4),
        "enabled_seconds": round(enabled_seconds, 4),
        "obs_overhead": round(overhead, 4),
        "max_obs_overhead": MAX_OBS_OVERHEAD,
        "span_coverage": round(coverage["coverage"], 4),
        "pool_disabled_seconds": round(pool_disabled_seconds, 4),
        "pool_enabled_seconds": round(pool_enabled_seconds, 4),
        "pool_obs_overhead": round(pool_overhead, 4),
        "worker_spans": worker_spans,
        "cpu_count": os.cpu_count() or 1,
        "platform": platform.platform(),
        "python": platform.python_version(),
    }
    RESULT_PATH.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")

    with capsys.disabled():
        print()
        print("=" * 72)
        print("BENCH-OBS: instrumentation overhead, enabled vs disabled")
        print("=" * 72)
        print(
            f"frontend corpus ({len(corpus)} blocks), sequential: "
            f"disabled {disabled_seconds:.4f}s, enabled {enabled_seconds:.4f}s "
            f"-> overhead {overhead:+.1%} (gate <{MAX_OBS_OVERHEAD:.0%})"
        )
        print(
            f"forced pool jobs=1: disabled {pool_disabled_seconds:.4f}s, "
            f"enabled {pool_enabled_seconds:.4f}s -> overhead "
            f"{pool_overhead:+.1%} (recorded, not gated)"
        )
        print(
            f"named-span coverage of the batch root: "
            f"{coverage['coverage']:.1%} (gate >=95%)"
        )
        print(f"record written to {RESULT_PATH.name}")
