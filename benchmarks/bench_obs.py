"""BENCH-OBS — Observability overhead: enabled vs disabled instrumentation.

Prices the ``repro.obs`` promise on the frontend corpus: a live registry +
tracer during a sequential run must cost < 3% over the disabled state
(``gate_max`` on ``obs_overhead``); the forced-pool overhead (worker spans
shipped back across the chunk wire) is recorded for the trend but not gated
(the pool's own dispatch overhead dominates and is gated in BENCH-BATCH).
The enabled run's span log is schema-validated and named spans must account
for at least 95% of the batch root span (``gate_min`` on ``span_coverage``).

The measurement body and gates live in the unified harness
(``repro.perf.suites.engine``, benchmark name ``obs``); this script is the
pytest entry point.  Refresh the committed baseline with
``repro bench run obs --write-records``.
"""

from __future__ import annotations


def test_observability_overhead(bench_harness):
    bench_harness("obs")
