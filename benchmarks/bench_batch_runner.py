"""BENCH-BATCH — Multi-block batch enumeration: dispatch overhead + speedup.

The engine's :class:`~repro.engine.batch.BatchRunner` drives every basic
block of a workload through one enumeration algorithm, optionally across a
persistent worker pool with chunked dispatch.  Three properties matter:

* **determinism** — ``jobs=2`` and forced-pool runs return bit-identical
  cuts (and identical ISE selections) to the sequential run (asserted);
* **dispatch overhead** — a warmed forced-pool ``jobs=1`` run over the
  frontend corpus must cost < 15% over the sequential run (``gate_max`` on
  ``dispatch_overhead``) — the honest, single-core-measurable proxy for
  "parallelism can win";
* **throughput** — the ``jobs=2`` speedup is recorded for the trend; on
  machines with ``cpu_count >= 2`` it is asserted above 1.5x, on
  single-core containers there is no parallelism to buy, so it is skipped.

The measurement body and gates live in the unified harness
(``repro.perf.suites.engine``, benchmark name ``batch_runner``); this script
is the pytest entry point.  Refresh the committed baseline with
``repro bench run batch_runner --write-records``.
"""

from __future__ import annotations


def test_batch_runner_overhead_and_speedup(bench_harness):
    bench_harness("batch_runner")
