"""BENCH-BATCH — Multi-block batch enumeration: parallel vs. sequential.

The engine's :class:`~repro.engine.batch.BatchRunner` is the repo's path to
whole-application scale: it drives every basic block of a workload through
one enumeration algorithm, optionally across worker processes.  This
benchmark checks the two properties that matter:

* **determinism** — a ``jobs=2`` run returns bit-identical cuts (and, through
  the ISE pipeline, identical instruction selections) to the sequential run;
* **throughput** — the wall-clock speedup of the parallel run is recorded to
  ``BENCH_batch_runner.json`` next to this file, so regressions are visible
  across commits.  On a single-core container the speedup hovers around (or
  below) 1.0 because process spawning and graph shipping are pure overhead;
  the point of the record is the trend on real multi-core hardware.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

from repro.core import Constraints
from repro.engine import BatchRunner
from repro.ise import BlockProfile, SelectionConfig, identify_instruction_set_extension
from repro.workloads import SuiteConfig, build_suite

RESULT_PATH = Path(__file__).resolve().parent / "BENCH_batch_runner.json"

#: The paper's experimental constraints.
CONSTRAINTS = Constraints(max_inputs=4, max_outputs=2)


def _benchmark_suite(scale: str):
    """A deterministic suite of at least 8 blocks."""
    num_blocks = 10 if scale == "small" else 24
    max_operations = 26 if scale == "small" else 40
    suite = build_suite(
        SuiteConfig(
            num_blocks=num_blocks,
            min_operations=12,
            max_operations=max_operations,
            include_kernels=False,
            include_trees=False,
        )
    )
    assert len(suite) >= 8
    return suite


def _cut_keys(result):
    return [
        (cut.sorted_nodes(), tuple(sorted(cut.inputs)), tuple(sorted(cut.outputs)))
        for cut in result.cuts
    ]


def _timed_batch(suite, jobs: int):
    runner = BatchRunner(constraints=CONSTRAINTS, jobs=jobs)
    start = time.perf_counter()
    report = runner.run(suite)
    return report, time.perf_counter() - start


def test_parallel_batch_is_bit_identical_and_records_speedup(bench_scale, capsys):
    suite = _benchmark_suite(bench_scale)

    sequential, sequential_seconds = _timed_batch(suite, jobs=1)
    parallel, parallel_seconds = _timed_batch(suite, jobs=2)

    # --- determinism: block-for-block, bit-for-bit ----------------------- #
    assert [i.graph_name for i in parallel.items] == [i.graph_name for i in sequential.items]
    for seq_item, par_item in zip(sequential.items, parallel.items):
        assert seq_item.ok and par_item.ok
        assert _cut_keys(seq_item.result) == _cut_keys(par_item.result)

    # --- determinism through the full ISE pipeline ----------------------- #
    blocks = [BlockProfile(graph, execution_count=1000.0) for graph in suite]
    selection = SelectionConfig(max_instructions=2)
    pipe_seq = identify_instruction_set_extension(
        blocks, CONSTRAINTS, selection=selection, jobs=1
    )
    pipe_par = identify_instruction_set_extension(
        blocks, CONSTRAINTS, selection=selection, jobs=2
    )
    assert pipe_seq.application_speedup == pipe_par.application_speedup
    for seq_block, par_block in zip(pipe_seq.blocks, pipe_par.blocks):
        assert [s.cut.nodes for s in seq_block.selected] == [
            s.cut.nodes for s in par_block.selected
        ]

    # --- record the wall-clock speedup ----------------------------------- #
    record = {
        "benchmark": "batch_runner_parallel_speedup",
        "scale": bench_scale,
        "blocks": len(suite),
        "total_cuts": sequential.total_cuts(),
        "constraints": {"max_inputs": 4, "max_outputs": 2},
        "jobs": 2,
        "sequential_seconds": round(sequential_seconds, 4),
        "parallel_seconds": round(parallel_seconds, 4),
        "speedup": round(sequential_seconds / max(parallel_seconds, 1e-9), 3),
        "bit_identical": True,
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python": platform.python_version(),
    }
    RESULT_PATH.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")

    with capsys.disabled():
        print()
        print("=" * 72)
        print("BENCH-BATCH: BatchRunner jobs=2 vs sequential")
        print("=" * 72)
        print(
            f"{len(suite)} blocks, {record['total_cuts']} cuts: "
            f"sequential {sequential_seconds:.3f}s, parallel {parallel_seconds:.3f}s "
            f"-> speedup {record['speedup']:.2f}x on {record['cpu_count']} CPU(s)"
        )
        print(f"record written to {RESULT_PATH.name}")
