"""BENCH-BATCH — Multi-block batch enumeration: dispatch overhead + speedup.

The engine's :class:`~repro.engine.batch.BatchRunner` is the repo's path to
whole-application scale: it drives every basic block of a workload through
one enumeration algorithm, optionally across a persistent worker pool with
chunked dispatch.  This benchmark checks the three properties that matter:

* **determinism** — a ``jobs=2`` run (and a forced-pool ``jobs=1`` run)
  returns bit-identical cuts (and, through the ISE pipeline, identical
  instruction selections) to the sequential run;
* **dispatch overhead** — a warmed forced-pool ``jobs=1`` run over the
  frontend corpus must cost **< 15%** over the sequential run.  This is the
  honest, single-core-measurable proxy for "parallelism can win": it prices
  exactly the scheduler's per-block machinery (chunked task dispatch, wire
  serialization, worker-resident graph/context registries, result
  reassembly) with zero parallel upside.  Enforced as a hard gate here and
  re-checked from ``BENCH_batch_runner.json`` in CI;
* **throughput** — the wall-clock ``jobs=2`` speedup on the frontend corpus
  is recorded, and on machines with ``cpu_count >= 2`` must exceed **1.5x**
  (the ROADMAP target).  On a single-core container the speedup is recorded
  for the trend but not gated — there is no parallelism to buy.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

from repro.core import Constraints
from repro.engine import BatchRunner
from repro.frontend import build_corpus_suite
from repro.ise import BlockProfile, SelectionConfig, identify_instruction_set_extension
from repro.workloads import SuiteConfig, build_suite

RESULT_PATH = Path(__file__).resolve().parent / "BENCH_batch_runner.json"

#: The paper's experimental constraints.
CONSTRAINTS = Constraints(max_inputs=4, max_outputs=2)

#: The dispatch-overhead gate: warmed forced-pool jobs=1 may cost at most
#: this fraction over sequential (was ~37% before the chunked persistent
#: pool; CI re-enforces the same bound from the JSON record).
MAX_DISPATCH_OVERHEAD = 0.15

#: The ROADMAP throughput target at jobs=2, gated only when the machine
#: actually has two cores to run on.
MIN_PARALLEL_SPEEDUP = 1.5

#: Timed repetitions; the minimum is reported, as usual for micro-benchmarks.
REPEATS = 3


def _benchmark_suite(scale: str):
    """A deterministic synthetic suite of at least 8 blocks."""
    num_blocks = 10 if scale == "small" else 24
    max_operations = 26 if scale == "small" else 40
    suite = build_suite(
        SuiteConfig(
            num_blocks=num_blocks,
            min_operations=12,
            max_operations=max_operations,
            include_kernels=False,
            include_trees=False,
        )
    )
    assert len(suite) >= 8
    return suite


def _cut_keys(result):
    return [
        (cut.sorted_nodes(), tuple(sorted(cut.inputs)), tuple(sorted(cut.outputs)))
        for cut in result.cuts
    ]


def _best_run_seconds(runner: BatchRunner, graphs, repeats: int = REPEATS):
    """Minimum wall-clock of *repeats* runs; returns (report, seconds)."""
    best = float("inf")
    report = None
    for _ in range(repeats):
        start = time.perf_counter()
        report = runner.run(graphs)
        best = min(best, time.perf_counter() - start)
    return report, best


def test_batch_runner_overhead_and_speedup(bench_scale, capsys):
    suite = _benchmark_suite(bench_scale)
    corpus = list(build_corpus_suite())

    # --- determinism on the synthetic suite: block-for-block, bit-for-bit - #
    with BatchRunner(constraints=CONSTRAINTS, jobs=1) as runner:
        sequential = runner.run(suite)
    with BatchRunner(constraints=CONSTRAINTS, jobs=2) as runner:
        parallel = runner.run(suite)
    with BatchRunner(constraints=CONSTRAINTS, jobs=1, force_pool=True) as runner:
        forced = runner.run(suite)
    assert [i.graph_name for i in parallel.items] == [
        i.graph_name for i in sequential.items
    ]
    for seq_item, par_item, fp_item in zip(
        sequential.items, parallel.items, forced.items
    ):
        assert seq_item.ok and par_item.ok and fp_item.ok
        assert _cut_keys(seq_item.result) == _cut_keys(par_item.result)
        assert _cut_keys(seq_item.result) == _cut_keys(fp_item.result)

    # --- determinism through the full ISE pipeline ----------------------- #
    blocks = [BlockProfile(graph, execution_count=1000.0) for graph in suite]
    selection = SelectionConfig(max_instructions=2)
    pipe_seq = identify_instruction_set_extension(
        blocks, CONSTRAINTS, selection=selection, jobs=1
    )
    pipe_par = identify_instruction_set_extension(
        blocks, CONSTRAINTS, selection=selection, jobs=2
    )
    assert pipe_seq.application_speedup == pipe_par.application_speedup
    for seq_block, par_block in zip(pipe_seq.blocks, pipe_par.blocks):
        assert [s.cut.nodes for s in seq_block.selected] == [
            s.cut.nodes for s in par_block.selected
        ]

    # --- dispatch overhead on the frontend corpus (the <15% gate) -------- #
    with BatchRunner(constraints=CONSTRAINTS, jobs=1) as runner:
        corpus_seq, sequential_seconds = _best_run_seconds(runner, corpus)
    with BatchRunner(constraints=CONSTRAINTS, jobs=1, force_pool=True) as runner:
        runner.warm_pool()
        corpus_pool, pool_seconds = _best_run_seconds(runner, corpus)
    for seq_item, pool_item in zip(corpus_seq.items, corpus_pool.items):
        assert seq_item.ok and pool_item.ok
        assert _cut_keys(seq_item.result) == _cut_keys(pool_item.result)
    dispatch_overhead = pool_seconds / max(sequential_seconds, 1e-9) - 1.0
    assert dispatch_overhead < MAX_DISPATCH_OVERHEAD, (
        f"dispatch overhead {dispatch_overhead:.1%} at jobs=1 exceeds the "
        f"{MAX_DISPATCH_OVERHEAD:.0%} gate (sequential {sequential_seconds:.4f}s, "
        f"forced pool {pool_seconds:.4f}s)"
    )

    # --- jobs=2 throughput on the frontend corpus ------------------------ #
    with BatchRunner(constraints=CONSTRAINTS, jobs=2) as runner:
        runner.warm_pool()
        corpus_par, parallel_seconds = _best_run_seconds(runner, corpus)
    for seq_item, par_item in zip(corpus_seq.items, corpus_par.items):
        assert seq_item.ok and par_item.ok
        assert _cut_keys(seq_item.result) == _cut_keys(par_item.result)
    speedup = sequential_seconds / max(parallel_seconds, 1e-9)
    cpu_count = os.cpu_count() or 1
    if cpu_count >= 2:
        assert speedup > MIN_PARALLEL_SPEEDUP, (
            f"jobs=2 speedup {speedup:.2f}x on the frontend corpus is below "
            f"the {MIN_PARALLEL_SPEEDUP}x target on a {cpu_count}-CPU machine"
        )

    # --- record ----------------------------------------------------------- #
    record = {
        "benchmark": "batch_runner_dispatch_overhead_and_speedup",
        "scale": bench_scale,
        "suite_blocks": len(suite),
        "corpus_blocks": len(corpus),
        "corpus_cuts": corpus_seq.total_cuts(),
        "constraints": {"max_inputs": 4, "max_outputs": 2},
        "repeats": REPEATS,
        "sequential_seconds": round(sequential_seconds, 4),
        "forced_pool_seconds": round(pool_seconds, 4),
        "dispatch_overhead": round(dispatch_overhead, 4),
        "max_dispatch_overhead": MAX_DISPATCH_OVERHEAD,
        "parallel_seconds": round(parallel_seconds, 4),
        "parallel_speedup": round(speedup, 3),
        "min_parallel_speedup": MIN_PARALLEL_SPEEDUP,
        "speedup_gated": cpu_count >= 2,
        "bit_identical": True,
        "cpu_count": cpu_count,
        "platform": platform.platform(),
        "python": platform.python_version(),
    }
    RESULT_PATH.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")

    with capsys.disabled():
        print()
        print("=" * 72)
        print("BENCH-BATCH: chunked persistent-pool dispatch vs sequential")
        print("=" * 72)
        print(
            f"frontend corpus ({len(corpus)} blocks, {record['corpus_cuts']} cuts): "
            f"sequential {sequential_seconds:.4f}s, "
            f"forced pool jobs=1 {pool_seconds:.4f}s "
            f"-> dispatch overhead {dispatch_overhead:+.1%} "
            f"(gate <{MAX_DISPATCH_OVERHEAD:.0%})"
        )
        print(
            f"jobs=2: {parallel_seconds:.4f}s -> speedup {speedup:.2f}x on "
            f"{cpu_count} CPU(s)"
            + ("" if cpu_count >= 2 else " (not gated on a single core)")
        )
        print(f"record written to {RESULT_PATH.name}")
