"""TAB-DOM — The Lengauer–Tarjan kernel.

Section 5.4 reports that "at least 70% of the time is spent in" the
Lengauer–Tarjan dominator computation, which motivated the paper's low-level
engineering of that kernel.  This benchmark measures (a) the cost of a single
dominator computation as the graph grows, (b) the iterative data-flow
algorithm for comparison, and (c) the fraction of the full enumeration spent
inside dominator computations, which should be the dominant component exactly
as the paper observes.
"""

from __future__ import annotations

import pytest

from repro.dfg import augment
from repro.dominators import immediate_dominators, immediate_dominators_iterative
from repro.workloads import SyntheticBlockSpec, generate_basic_block

SIZES = (50, 150, 400)


def _augmented(size: int):
    graph = generate_basic_block(
        SyntheticBlockSpec(num_operations=size, num_external_inputs=8, seed=3)
    )
    augmented = augment(graph)
    successors = [list(augmented.graph.successors(v)) for v in augmented.graph.node_ids()]
    return augmented, successors


@pytest.mark.parametrize("size", SIZES)
def test_lengauer_tarjan_kernel(benchmark, size):
    augmented, successors = _augmented(size)
    idom = benchmark(
        lambda: immediate_dominators(
            augmented.graph.num_nodes, successors, augmented.source
        )
    )
    assert idom[augmented.source] == augmented.source


@pytest.mark.parametrize("size", SIZES)
def test_iterative_dominators_kernel(benchmark, size):
    augmented, successors = _augmented(size)
    idom = benchmark(
        lambda: immediate_dominators_iterative(
            augmented.graph.num_nodes, successors, augmented.source
        )
    )
    assert idom[augmented.source] == augmented.source


def test_dominator_kernel_costs_and_fraction(bench_harness):
    """LT vs iterative single-computation cost + the share of enumeration
    time spent in the LT kernel (the paper reports >= 70% in C; the harness
    gates a generous 30% floor for the Python constant factors).

    The measurement body lives in ``repro.perf.suites.paper`` (benchmark
    name ``dominators``); the micro-kernels above remain pytest-benchmark
    tests for per-call statistics.
    """
    bench_harness("dominators")
