"""TAB-DOM — The Lengauer–Tarjan kernel.

Section 5.4 reports that "at least 70% of the time is spent in" the
Lengauer–Tarjan dominator computation, which motivated the paper's low-level
engineering of that kernel.  This benchmark measures (a) the cost of a single
dominator computation as the graph grows, (b) the iterative data-flow
algorithm for comparison, and (c) the fraction of the full enumeration spent
inside dominator computations, which should be the dominant component exactly
as the paper observes.
"""

from __future__ import annotations

import time

import pytest

from repro.core import Constraints, enumerate_cuts
from repro.dfg import augment
from repro.dominators import immediate_dominators, immediate_dominators_iterative
from repro.workloads import SyntheticBlockSpec, generate_basic_block


#: The microarchitectural constraint used throughout the paper's evaluation.
PAPER_CONSTRAINTS = Constraints(max_inputs=4, max_outputs=2)

SIZES = (50, 150, 400)


def _augmented(size: int):
    graph = generate_basic_block(
        SyntheticBlockSpec(num_operations=size, num_external_inputs=8, seed=3)
    )
    augmented = augment(graph)
    successors = [list(augmented.graph.successors(v)) for v in augmented.graph.node_ids()]
    return augmented, successors


@pytest.mark.parametrize("size", SIZES)
def test_lengauer_tarjan_kernel(benchmark, size):
    augmented, successors = _augmented(size)
    idom = benchmark(
        lambda: immediate_dominators(
            augmented.graph.num_nodes, successors, augmented.source
        )
    )
    assert idom[augmented.source] == augmented.source


@pytest.mark.parametrize("size", SIZES)
def test_iterative_dominators_kernel(benchmark, size):
    augmented, successors = _augmented(size)
    idom = benchmark(
        lambda: immediate_dominators_iterative(
            augmented.graph.num_nodes, successors, augmented.source
        )
    )
    assert idom[augmented.source] == augmented.source


def test_fraction_of_time_in_dominators(capsys):
    """Estimate the share of enumeration time spent in the LT kernel."""
    graph = generate_basic_block(
        SyntheticBlockSpec(num_operations=20, num_external_inputs=4, seed=9)
    )
    result = enumerate_cuts(graph, PAPER_CONSTRAINTS)

    augmented = augment(graph)
    successors = [list(augmented.graph.successors(v)) for v in augmented.graph.node_ids()]
    start = time.perf_counter()
    repetitions = max(1, result.stats.lt_calls)
    for _ in range(repetitions):
        immediate_dominators(augmented.graph.num_nodes, successors, augmented.source)
    lt_time = time.perf_counter() - start

    fraction = lt_time / max(result.stats.elapsed_seconds, 1e-9)
    with capsys.disabled():
        print()
        print("=" * 72)
        print("TAB-DOM: share of enumeration time spent in dominator computations")
        print("=" * 72)
        print(
            f"enumeration: {result.stats.elapsed_seconds:.3f}s, "
            f"{result.stats.lt_calls} LT calls; replaying the same number of LT "
            f"calls alone takes {lt_time:.3f}s -> fraction ~ {fraction:.0%} "
            f"(paper reports >= 70% in its C implementation)"
        )
    # The kernel must be a major component (the paper says >= 70%; the Python
    # constant factors differ, so assert a generous lower bound).
    assert fraction > 0.3
